//! Compact wire encoding for low-level deltas.
//!
//! The paper's reference \[2\] ("Transmitting RDF graph deltas for a cheaper
//! semantic Web") motivates shipping deltas rather than snapshots between
//! replicas. This module provides that wire format: triples are sorted,
//! subject-delta-encoded, and LEB128-varint packed, which compresses the
//! long runs of shared subjects typical of RDF deltas.
//!
//! Format (`EVD1`):
//! ```text
//! magic  b"EVD1"
//! added:   varint count, then per triple: varint Δs, varint p, varint o
//! removed: varint count, same layout
//! ```
//! where `Δs` is the difference to the previous subject id (first triple:
//! the raw id), exploiting SPO sort order.

use crate::delta::LowLevelDelta;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use evorec_kb::{TermId, Triple};
use std::fmt;

const MAGIC: &[u8; 4] = b"EVD1";

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input does not start with the `EVD1` magic.
    BadMagic,
    /// Input ended mid-structure.
    UnexpectedEof,
    /// A varint exceeded the 32-bit identifier space.
    Overflow,
    /// Trailing bytes after a complete delta.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad magic: expected EVD1"),
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::Overflow => write!(f, "varint overflows u32"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after delta"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode a delta into its wire representation.
pub fn encode_delta(delta: &LowLevelDelta) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + delta.size() * 6);
    buf.put_slice(MAGIC);
    encode_side(&mut buf, delta.added.iter());
    encode_side(&mut buf, delta.removed.iter());
    buf.freeze()
}

/// Decode a wire representation produced by [`encode_delta`].
pub fn decode_delta(bytes: &[u8]) -> Result<LowLevelDelta, CodecError> {
    let mut buf = bytes;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    buf.advance(4);
    let added = decode_side(&mut buf)?;
    let removed = decode_side(&mut buf)?;
    if buf.has_remaining() {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    Ok(LowLevelDelta::from_parts(added, removed))
}

fn encode_side(buf: &mut BytesMut, triples: impl Iterator<Item = Triple>) {
    let sorted: Vec<Triple> = triples.collect(); // store iterates in SPO order
    put_varint(buf, sorted.len() as u64);
    let mut prev_s = 0u32;
    for t in &sorted {
        let s = t.s.as_u32();
        put_varint(buf, u64::from(s.wrapping_sub(prev_s)));
        put_varint(buf, u64::from(t.p.as_u32()));
        put_varint(buf, u64::from(t.o.as_u32()));
        prev_s = s;
    }
}

fn decode_side(buf: &mut &[u8]) -> Result<Vec<Triple>, CodecError> {
    let count = get_varint(buf)?;
    let count = usize::try_from(count).map_err(|_| CodecError::Overflow)?;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    let mut prev_s = 0u32;
    for _ in 0..count {
        let ds = get_varint_u32(buf)?;
        let s = prev_s.wrapping_add(ds);
        let p = get_varint_u32(buf)?;
        let o = get_varint_u32(buf)?;
        out.push(Triple::new(
            TermId::from_u32(s),
            TermId::from_u32(p),
            TermId::from_u32(o),
        ));
        prev_s = s;
    }
    Ok(out)
}

fn put_varint(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(CodecError::Overflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn get_varint_u32(buf: &mut &[u8]) -> Result<u32, CodecError> {
    let v = get_varint(buf)?;
    u32::try_from(v).map_err(|_| CodecError::Overflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    fn tr(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(t(s), t(p), t(o))
    }

    #[test]
    fn roundtrip_empty() {
        let d = LowLevelDelta::new();
        let wire = encode_delta(&d);
        assert_eq!(decode_delta(&wire).unwrap(), d);
    }

    #[test]
    fn roundtrip_mixed_delta() {
        let d = LowLevelDelta::from_parts(
            [tr(10, 1, 2), tr(10, 1, 3), tr(11, 2, 2), tr(500_000, 7, 8)],
            [tr(9, 1, 2), tr(4_000_000_000, 1, 1)],
        );
        let wire = encode_delta(&d);
        assert_eq!(decode_delta(&wire).unwrap(), d);
    }

    #[test]
    fn subject_delta_encoding_compresses_runs() {
        // 100 triples sharing one subject: the Δs of 99 of them is zero,
        // so the payload should be well under 3 raw u32s per triple.
        let triples: Vec<Triple> = (0..100).map(|i| tr(1000, 1, i)).collect();
        let d = LowLevelDelta::from_parts(triples, []);
        let wire = encode_delta(&d);
        assert!(
            wire.len() < 100 * 12 / 2,
            "wire {} bytes, raw would be 1200",
            wire.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_delta(b"NOPE"), Err(CodecError::BadMagic));
        assert_eq!(decode_delta(b""), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let d = LowLevelDelta::from_parts([tr(1, 2, 3)], []);
        let wire = encode_delta(&d);
        for cut in 4..wire.len() {
            assert!(
                decode_delta(&wire[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let d = LowLevelDelta::new();
        let mut wire = encode_delta(&d).to_vec();
        wire.push(0);
        assert_eq!(decode_delta(&wire), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = BytesMut::new();
        for v in [0u64, 127, 128, 16_383, 16_384, u32::MAX as u64] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn error_display() {
        assert!(CodecError::BadMagic.to_string().contains("EVD1"));
        assert!(CodecError::TrailingBytes(3).to_string().contains('3'));
    }
}
