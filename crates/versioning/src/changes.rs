//! High-level change detection over low-level deltas.
//!
//! Low-level deltas list raw triple additions/removals; following the
//! change-language approach of Roussakis et al. (ISWC 2015) — reference
//! [11] of the paper — this module groups them into semantically
//! meaningful [`Change`]s (class/property lifecycle, subsumption edits,
//! domain/range retargeting, instance churn, relabelling). High-level
//! changes feed the recommender's explanations and the E1 statistics.

use crate::delta::LowLevelDelta;
use evorec_kb::{FxHashMap, SchemaView, TermId, TermInterner, Triple, Vocab};
use serde::{Deserialize, Serialize};

/// The category of a high-level change (for aggregation and stats).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ChangeKind {
    /// A class came into existence.
    AddClass,
    /// A class disappeared.
    DeleteClass,
    /// A property came into existence.
    AddProperty,
    /// A property disappeared.
    DeleteProperty,
    /// A subsumption edge was added.
    AddSubclass,
    /// A subsumption edge was removed.
    DeleteSubclass,
    /// A class moved to a different parent (paired delete+add).
    MoveClass,
    /// A property's `rdfs:domain` changed.
    ChangeDomain,
    /// A property's `rdfs:range` changed.
    ChangeRange,
    /// A sub-property edge was added or removed.
    SubpropertyEdit,
    /// An instance gained a type.
    AddTypeInstance,
    /// An instance lost a type.
    DeleteTypeInstance,
    /// An instance-level property statement was added.
    AddPropertyInstance,
    /// An instance-level property statement was removed.
    DeletePropertyInstance,
    /// An `rdfs:label` changed.
    Relabel,
    /// An `rdfs:comment` changed.
    ChangeComment,
    /// A raw change not matching any pattern above.
    Generic,
}

impl ChangeKind {
    /// All kinds, for exhaustive reporting.
    pub const ALL: [ChangeKind; 17] = [
        ChangeKind::AddClass,
        ChangeKind::DeleteClass,
        ChangeKind::AddProperty,
        ChangeKind::DeleteProperty,
        ChangeKind::AddSubclass,
        ChangeKind::DeleteSubclass,
        ChangeKind::MoveClass,
        ChangeKind::ChangeDomain,
        ChangeKind::ChangeRange,
        ChangeKind::SubpropertyEdit,
        ChangeKind::AddTypeInstance,
        ChangeKind::DeleteTypeInstance,
        ChangeKind::AddPropertyInstance,
        ChangeKind::DeletePropertyInstance,
        ChangeKind::Relabel,
        ChangeKind::ChangeComment,
        ChangeKind::Generic,
    ];

    /// `true` for kinds that edit the schema (vs instance data).
    pub fn is_schema_level(self) -> bool {
        matches!(
            self,
            ChangeKind::AddClass
                | ChangeKind::DeleteClass
                | ChangeKind::AddProperty
                | ChangeKind::DeleteProperty
                | ChangeKind::AddSubclass
                | ChangeKind::DeleteSubclass
                | ChangeKind::MoveClass
                | ChangeKind::ChangeDomain
                | ChangeKind::ChangeRange
                | ChangeKind::SubpropertyEdit
        )
    }
}

/// One semantically grouped change between two versions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Change {
    /// Class `0` came into existence.
    AddClass(TermId),
    /// Class `0` disappeared.
    DeleteClass(TermId),
    /// Property `0` came into existence.
    AddProperty(TermId),
    /// Property `0` disappeared.
    DeleteProperty(TermId),
    /// `child rdfs:subClassOf parent` was asserted.
    AddSubclass {
        /// The subclass.
        child: TermId,
        /// The superclass.
        parent: TermId,
    },
    /// `child rdfs:subClassOf parent` was retracted.
    DeleteSubclass {
        /// The subclass.
        child: TermId,
        /// The superclass.
        parent: TermId,
    },
    /// `class` was re-parented `from` → `to` (paired retract+assert).
    MoveClass {
        /// The re-parented class.
        class: TermId,
        /// Previous parent.
        from: TermId,
        /// New parent.
        to: TermId,
    },
    /// `property`'s domain changed.
    ChangeDomain {
        /// The property whose domain changed.
        property: TermId,
        /// Previous domain (if any was retracted).
        from: Option<TermId>,
        /// New domain (if any was asserted).
        to: Option<TermId>,
    },
    /// `property`'s range changed.
    ChangeRange {
        /// The property whose range changed.
        property: TermId,
        /// Previous range (if any was retracted).
        from: Option<TermId>,
        /// New range (if any was asserted).
        to: Option<TermId>,
    },
    /// A sub-property edge was asserted (`added = true`) or retracted.
    SubpropertyEdit {
        /// The subproperty.
        child: TermId,
        /// The superproperty.
        parent: TermId,
        /// `true` if the edge was asserted.
        added: bool,
    },
    /// `instance rdf:type class` was asserted.
    AddTypeInstance {
        /// The typed instance.
        instance: TermId,
        /// The asserted class.
        class: TermId,
    },
    /// `instance rdf:type class` was retracted.
    DeleteTypeInstance {
        /// The untyped instance.
        instance: TermId,
        /// The retracted class.
        class: TermId,
    },
    /// An instance-level statement was asserted.
    AddPropertyInstance(Triple),
    /// An instance-level statement was retracted.
    DeletePropertyInstance(Triple),
    /// `term`'s `rdfs:label` changed.
    Relabel {
        /// The relabelled term.
        term: TermId,
        /// Previous label literal (if retracted).
        from: Option<TermId>,
        /// New label literal (if asserted).
        to: Option<TermId>,
    },
    /// `term`'s `rdfs:comment` changed.
    ChangeComment {
        /// The term whose comment changed.
        term: TermId,
        /// Previous comment literal (if retracted).
        from: Option<TermId>,
        /// New comment literal (if asserted).
        to: Option<TermId>,
    },
    /// Unclassified raw change.
    Generic {
        /// The raw triple.
        triple: Triple,
        /// `true` if asserted, `false` if retracted.
        added: bool,
    },
}

impl Change {
    /// The category of this change.
    pub fn kind(&self) -> ChangeKind {
        match self {
            Change::AddClass(_) => ChangeKind::AddClass,
            Change::DeleteClass(_) => ChangeKind::DeleteClass,
            Change::AddProperty(_) => ChangeKind::AddProperty,
            Change::DeleteProperty(_) => ChangeKind::DeleteProperty,
            Change::AddSubclass { .. } => ChangeKind::AddSubclass,
            Change::DeleteSubclass { .. } => ChangeKind::DeleteSubclass,
            Change::MoveClass { .. } => ChangeKind::MoveClass,
            Change::ChangeDomain { .. } => ChangeKind::ChangeDomain,
            Change::ChangeRange { .. } => ChangeKind::ChangeRange,
            Change::SubpropertyEdit { .. } => ChangeKind::SubpropertyEdit,
            Change::AddTypeInstance { .. } => ChangeKind::AddTypeInstance,
            Change::DeleteTypeInstance { .. } => ChangeKind::DeleteTypeInstance,
            Change::AddPropertyInstance(_) => ChangeKind::AddPropertyInstance,
            Change::DeletePropertyInstance(_) => ChangeKind::DeletePropertyInstance,
            Change::Relabel { .. } => ChangeKind::Relabel,
            Change::ChangeComment { .. } => ChangeKind::ChangeComment,
            Change::Generic { .. } => ChangeKind::Generic,
        }
    }

    /// The schema element this change is primarily *about* — the term a
    /// curator would attribute it to.
    pub fn primary_term(&self) -> TermId {
        match *self {
            Change::AddClass(c) | Change::DeleteClass(c) => c,
            Change::AddProperty(p) | Change::DeleteProperty(p) => p,
            Change::AddSubclass { child, .. } | Change::DeleteSubclass { child, .. } => child,
            Change::MoveClass { class, .. } => class,
            Change::ChangeDomain { property, .. } | Change::ChangeRange { property, .. } => {
                property
            }
            Change::SubpropertyEdit { child, .. } => child,
            Change::AddTypeInstance { class, .. } | Change::DeleteTypeInstance { class, .. } => {
                class
            }
            Change::AddPropertyInstance(t) | Change::DeletePropertyInstance(t) => t.p,
            Change::Relabel { term, .. } | Change::ChangeComment { term, .. } => term,
            Change::Generic { triple, .. } => triple.s,
        }
    }

    /// Render a one-line human-readable description.
    pub fn describe(&self, interner: &TermInterner) -> String {
        let name = |id: TermId| interner.label(id);
        let opt = |id: Option<TermId>| id.map_or_else(|| "∅".to_string(), name);
        match *self {
            Change::AddClass(c) => format!("class {} added", name(c)),
            Change::DeleteClass(c) => format!("class {} deleted", name(c)),
            Change::AddProperty(p) => format!("property {} added", name(p)),
            Change::DeleteProperty(p) => format!("property {} deleted", name(p)),
            Change::AddSubclass { child, parent } => {
                format!("{} ⊑ {} asserted", name(child), name(parent))
            }
            Change::DeleteSubclass { child, parent } => {
                format!("{} ⊑ {} retracted", name(child), name(parent))
            }
            Change::MoveClass { class, from, to } => format!(
                "class {} moved from {} to {}",
                name(class),
                name(from),
                name(to)
            ),
            Change::ChangeDomain { property, from, to } => format!(
                "domain of {} changed {} → {}",
                name(property),
                opt(from),
                opt(to)
            ),
            Change::ChangeRange { property, from, to } => format!(
                "range of {} changed {} → {}",
                name(property),
                opt(from),
                opt(to)
            ),
            Change::SubpropertyEdit {
                child,
                parent,
                added,
            } => format!(
                "{} ⊑ₚ {} {}",
                name(child),
                name(parent),
                if added { "asserted" } else { "retracted" }
            ),
            Change::AddTypeInstance { instance, class } => {
                format!("{} typed as {}", name(instance), name(class))
            }
            Change::DeleteTypeInstance { instance, class } => {
                format!("{} no longer typed as {}", name(instance), name(class))
            }
            Change::AddPropertyInstance(t) => format!(
                "statement ({} {} {}) asserted",
                name(t.s),
                name(t.p),
                name(t.o)
            ),
            Change::DeletePropertyInstance(t) => format!(
                "statement ({} {} {}) retracted",
                name(t.s),
                name(t.p),
                name(t.o)
            ),
            Change::Relabel { term, from, to } => {
                format!("label of {} changed {} → {}", name(term), opt(from), opt(to))
            }
            Change::ChangeComment { term, .. } => format!("comment of {} changed", name(term)),
            Change::Generic { triple, added } => format!(
                "raw {} of ({} {} {})",
                if added { "assertion" } else { "retraction" },
                name(triple.s),
                name(triple.p),
                name(triple.o)
            ),
        }
    }
}

/// The detected high-level changes of one evolution step.
#[derive(Clone, Debug, Default)]
pub struct ChangeSet {
    changes: Vec<Change>,
}

impl ChangeSet {
    /// Detect high-level changes from a low-level delta and the schema
    /// views of both endpoint versions.
    pub fn detect(
        delta: &LowLevelDelta,
        before: &SchemaView,
        after: &SchemaView,
        vocab: &Vocab,
    ) -> ChangeSet {
        let mut changes = Vec::new();

        // Class / property lifecycle from the schema-view set difference.
        for &c in after.classes() {
            if !before.is_class(c) {
                changes.push(Change::AddClass(c));
            }
        }
        for &c in before.classes() {
            if !after.is_class(c) {
                changes.push(Change::DeleteClass(c));
            }
        }
        for &p in after.properties() {
            if !before.is_property(p) {
                changes.push(Change::AddProperty(p));
            }
        }
        for &p in before.properties() {
            if !after.is_property(p) {
                changes.push(Change::DeleteProperty(p));
            }
        }

        // Subsumption edits, pairing single retract+assert into MoveClass.
        let added_sub: Vec<Triple> = delta.added.with_predicate(vocab.rdfs_subclassof).collect();
        let removed_sub: Vec<Triple> = delta
            .removed
            .with_predicate(vocab.rdfs_subclassof)
            .collect();
        let mut added_by_child: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        for t in &added_sub {
            added_by_child.entry(t.s).or_default().push(t.o);
        }
        let mut removed_by_child: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        for t in &removed_sub {
            removed_by_child.entry(t.s).or_default().push(t.o);
        }
        let mut moved: Vec<TermId> = Vec::new();
        for (&child, removed_parents) in &removed_by_child {
            if let Some(added_parents) = added_by_child.get(&child) {
                if removed_parents.len() == 1 && added_parents.len() == 1 {
                    changes.push(Change::MoveClass {
                        class: child,
                        from: removed_parents[0],
                        to: added_parents[0],
                    });
                    moved.push(child);
                }
            }
        }
        for t in &added_sub {
            if !moved.contains(&t.s) {
                changes.push(Change::AddSubclass {
                    child: t.s,
                    parent: t.o,
                });
            }
        }
        for t in &removed_sub {
            if !moved.contains(&t.s) {
                changes.push(Change::DeleteSubclass {
                    child: t.s,
                    parent: t.o,
                });
            }
        }

        // Domain / range retargeting.
        for (pred, make) in [
            (
                vocab.rdfs_domain,
                (|property, from, to| Change::ChangeDomain { property, from, to })
                    as fn(TermId, Option<TermId>, Option<TermId>) -> Change,
            ),
            (vocab.rdfs_range, |property, from, to| Change::ChangeRange {
                property,
                from,
                to,
            }),
        ] {
            let mut by_prop: FxHashMap<TermId, (Option<TermId>, Option<TermId>)> =
                FxHashMap::default();
            for t in delta.removed.with_predicate(pred) {
                by_prop.entry(t.s).or_default().0 = Some(t.o);
            }
            for t in delta.added.with_predicate(pred) {
                by_prop.entry(t.s).or_default().1 = Some(t.o);
            }
            let mut props: Vec<_> = by_prop.into_iter().collect();
            props.sort_unstable_by_key(|(p, _)| *p);
            for (property, (from, to)) in props {
                changes.push(make(property, from, to));
            }
        }

        // Label / comment edits.
        for (pred, is_label) in [(vocab.rdfs_label, true), (vocab.rdfs_comment, false)] {
            let mut by_term: FxHashMap<TermId, (Option<TermId>, Option<TermId>)> =
                FxHashMap::default();
            for t in delta.removed.with_predicate(pred) {
                by_term.entry(t.s).or_default().0 = Some(t.o);
            }
            for t in delta.added.with_predicate(pred) {
                by_term.entry(t.s).or_default().1 = Some(t.o);
            }
            let mut terms: Vec<_> = by_term.into_iter().collect();
            terms.sort_unstable_by_key(|(t, _)| *t);
            for (term, (from, to)) in terms {
                changes.push(if is_label {
                    Change::Relabel { term, from, to }
                } else {
                    Change::ChangeComment { term, from, to }
                });
            }
        }

        // Sub-property edits.
        for t in delta.added.with_predicate(vocab.rdfs_subpropertyof) {
            changes.push(Change::SubpropertyEdit {
                child: t.s,
                parent: t.o,
                added: true,
            });
        }
        for t in delta.removed.with_predicate(vocab.rdfs_subpropertyof) {
            changes.push(Change::SubpropertyEdit {
                child: t.s,
                parent: t.o,
                added: false,
            });
        }

        // Typing and instance-level statements; anything with a schema
        // predicate already handled above is skipped here.
        for (store, added) in [(&delta.added, true), (&delta.removed, false)] {
            for t in store.iter() {
                if t.p == vocab.rdf_type {
                    if vocab.is_class_type(t.o) || vocab.is_property_type(t.o) {
                        // Declaration-level typing is reflected in the
                        // class/property lifecycle changes already.
                        continue;
                    }
                    changes.push(if added {
                        Change::AddTypeInstance {
                            instance: t.s,
                            class: t.o,
                        }
                    } else {
                        Change::DeleteTypeInstance {
                            instance: t.s,
                            class: t.o,
                        }
                    });
                } else if !vocab.is_schema_predicate(t.p) {
                    let is_instance_stmt = before.is_property(t.p) || after.is_property(t.p);
                    changes.push(if is_instance_stmt {
                        if added {
                            Change::AddPropertyInstance(t)
                        } else {
                            Change::DeletePropertyInstance(t)
                        }
                    } else {
                        Change::Generic { triple: t, added }
                    });
                }
            }
        }

        ChangeSet { changes }
    }

    /// The detected changes.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// Number of high-level changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// `true` if no changes were detected.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Histogram of change kinds.
    pub fn counts_by_kind(&self) -> FxHashMap<ChangeKind, usize> {
        let mut out = FxHashMap::default();
        for c in &self.changes {
            *out.entry(c.kind()).or_insert(0) += 1;
        }
        out
    }

    /// Number of schema-level changes (see [`ChangeKind::is_schema_level`]).
    pub fn schema_change_count(&self) -> usize {
        self.changes
            .iter()
            .filter(|c| c.kind().is_schema_level())
            .count()
    }

    /// Changes attributed to `term` (primary term match).
    pub fn changes_about(&self, term: TermId) -> impl Iterator<Item = &Change> {
        self.changes.iter().filter(move |c| c.primary_term() == term)
    }
}

/// Convenience: render every change in a set.
pub fn describe_all(set: &ChangeSet, interner: &TermInterner) -> Vec<String> {
    set.changes().iter().map(|c| c.describe(interner)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::{Graph, SchemaView, Term};

    struct World {
        g1: Graph,
        g2: Graph,
    }

    impl World {
        /// Two versions of a tiny KB built over a *shared* interner: the
        /// second graph is a clone of the first, mutated.
        fn new() -> (World, Ids) {
            let mut g1 = Graph::new();
            let person = g1.iri("http://x/Person");
            let student = g1.iri("http://x/Student");
            let staff = g1.iri("http://x/Staff");
            let dept = g1.iri("http://x/Department");
            let works_in = g1.iri("http://x/worksIn");
            let alice = g1.iri("http://x/alice");
            let d1 = g1.iri("http://x/cs");
            let v = *g1.vocab();

            let class = v.rdfs_class;
            for c in [person, student, staff, dept] {
                g1.insert(Triple::new(c, v.rdf_type, class));
            }
            g1.insert(Triple::new(student, v.rdfs_subclassof, person));
            g1.insert(Triple::new(staff, v.rdfs_subclassof, person));
            g1.insert(Triple::new(works_in, v.rdf_type, v.owl_object_property));
            g1.insert(Triple::new(works_in, v.rdfs_domain, staff));
            g1.insert(Triple::new(works_in, v.rdfs_range, dept));
            g1.insert(Triple::new(alice, v.rdf_type, staff));
            g1.insert(Triple::new(d1, v.rdf_type, dept));
            g1.insert(Triple::new(alice, works_in, d1));

            let g2 = g1.clone();
            (
                World { g1, g2 },
                Ids {
                    person,
                    student,
                    staff,
                    dept,
                    works_in,
                    alice,
                    d1,
                },
            )
        }

        fn detect(&self) -> ChangeSet {
            let v = self.g1.vocab();
            let before = SchemaView::extract(self.g1.store(), v);
            let after = SchemaView::extract(self.g2.store(), v);
            let delta = LowLevelDelta::compute(self.g1.store(), self.g2.store());
            ChangeSet::detect(&delta, &before, &after, v)
        }
    }

    struct Ids {
        person: TermId,
        student: TermId,
        staff: TermId,
        dept: TermId,
        works_in: TermId,
        alice: TermId,
        d1: TermId,
    }

    #[test]
    fn no_change_no_output() {
        let (w, _) = World::new();
        let set = w.detect();
        assert!(set.is_empty());
    }

    #[test]
    fn add_class_detected() {
        let (mut w, _) = World::new();
        let course = w.g2.iri("http://x/Course");
        let v = *w.g2.vocab();
        w.g2.insert(Triple::new(course, v.rdf_type, v.rdfs_class));
        let set = w.detect();
        assert!(set.changes().contains(&Change::AddClass(course)));
        assert_eq!(set.counts_by_kind()[&ChangeKind::AddClass], 1);
        assert_eq!(set.schema_change_count(), 1);
    }

    #[test]
    fn delete_class_detected() {
        let (mut w, ids) = World::new();
        let v = *w.g2.vocab();
        // Remove every triple mentioning Student.
        let doomed = w.g2.store().mentioning(ids.student);
        for t in doomed {
            w.g2.store_mut().remove(&t);
        }
        let _ = v;
        let set = w.detect();
        assert!(set.changes().contains(&Change::DeleteClass(ids.student)));
    }

    #[test]
    fn move_class_pairs_retract_and_assert() {
        let (mut w, ids) = World::new();
        let v = *w.g2.vocab();
        w.g2
            .store_mut()
            .remove(&Triple::new(ids.student, v.rdfs_subclassof, ids.person));
        w.g2
            .insert(Triple::new(ids.student, v.rdfs_subclassof, ids.staff));
        let set = w.detect();
        assert!(set.changes().contains(&Change::MoveClass {
            class: ids.student,
            from: ids.person,
            to: ids.staff,
        }));
        // The paired edits must not also surface individually.
        assert_eq!(set.counts_by_kind().get(&ChangeKind::AddSubclass), None);
        assert_eq!(set.counts_by_kind().get(&ChangeKind::DeleteSubclass), None);
    }

    #[test]
    fn plain_subclass_add_not_promoted_to_move() {
        let (mut w, ids) = World::new();
        let v = *w.g2.vocab();
        w.g2
            .insert(Triple::new(ids.dept, v.rdfs_subclassof, ids.person));
        let set = w.detect();
        assert!(set.changes().contains(&Change::AddSubclass {
            child: ids.dept,
            parent: ids.person,
        }));
    }

    #[test]
    fn domain_change_detected_with_both_sides() {
        let (mut w, ids) = World::new();
        let v = *w.g2.vocab();
        w.g2
            .store_mut()
            .remove(&Triple::new(ids.works_in, v.rdfs_domain, ids.staff));
        w.g2
            .insert(Triple::new(ids.works_in, v.rdfs_domain, ids.person));
        let set = w.detect();
        assert!(set.changes().contains(&Change::ChangeDomain {
            property: ids.works_in,
            from: Some(ids.staff),
            to: Some(ids.person),
        }));
    }

    #[test]
    fn range_only_added_has_empty_from() {
        let (mut w, ids) = World::new();
        let v = *w.g2.vocab();
        let extra = w.g2.iri("http://x/Org");
        w.g2.insert(Triple::new(extra, v.rdf_type, v.rdfs_class));
        w.g2.insert(Triple::new(ids.works_in, v.rdfs_range, extra));
        let set = w.detect();
        assert!(set.changes().contains(&Change::ChangeRange {
            property: ids.works_in,
            from: None,
            to: Some(extra),
        }));
    }

    #[test]
    fn instance_churn_detected() {
        let (mut w, ids) = World::new();
        let v = *w.g2.vocab();
        let bob = w.g2.iri("http://x/bob");
        w.g2.insert(Triple::new(bob, v.rdf_type, ids.student));
        w.g2
            .store_mut()
            .remove(&Triple::new(ids.alice, ids.works_in, ids.d1));
        let set = w.detect();
        assert!(set.changes().contains(&Change::AddTypeInstance {
            instance: bob,
            class: ids.student,
        }));
        assert!(set
            .changes()
            .contains(&Change::DeletePropertyInstance(Triple::new(
                ids.alice,
                ids.works_in,
                ids.d1
            ))));
        assert_eq!(set.schema_change_count(), 0);
    }

    #[test]
    fn relabel_detected() {
        let (mut w, ids) = World::new();
        let v = *w.g2.vocab();
        // Intern both literals into the *shared* id space before cloning
        // the version, so both graphs agree on identifiers.
        let old = w.g1.interner_mut().intern(Term::literal("Staff"));
        let new = w.g1.interner_mut().intern(Term::literal("Employees"));
        w.g1.insert(Triple::new(ids.staff, v.rdfs_label, old));
        w.g2 = w.g1.clone();
        w.g2
            .store_mut()
            .remove(&Triple::new(ids.staff, v.rdfs_label, old));
        w.g2.insert(Triple::new(ids.staff, v.rdfs_label, new));
        let set = w.detect();
        assert!(set.changes().contains(&Change::Relabel {
            term: ids.staff,
            from: Some(old),
            to: Some(new),
        }));
    }

    #[test]
    fn changes_about_filters_by_primary_term() {
        let (mut w, ids) = World::new();
        let v = *w.g2.vocab();
        let bob = w.g2.iri("http://x/bob");
        w.g2.insert(Triple::new(bob, v.rdf_type, ids.student));
        let set = w.detect();
        assert_eq!(set.changes_about(ids.student).count(), 1);
        assert_eq!(set.changes_about(ids.dept).count(), 0);
    }

    #[test]
    fn describe_is_humane() {
        let (mut w, ids) = World::new();
        let v = *w.g2.vocab();
        w.g2
            .store_mut()
            .remove(&Triple::new(ids.student, v.rdfs_subclassof, ids.person));
        w.g2
            .insert(Triple::new(ids.student, v.rdfs_subclassof, ids.staff));
        let set = w.detect();
        let lines = describe_all(&set, w.g1.interner());
        assert!(lines.iter().any(|l| l.contains("Student") && l.contains("moved")));
    }
}
