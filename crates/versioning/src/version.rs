//! Version identifiers and metadata.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one version (snapshot) in a linear history.
///
/// Versions are numbered densely from zero in commit order, so a
/// `VersionId` doubles as an index into the history.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VersionId(u32);

impl VersionId {
    /// Construct from a raw index.
    #[inline]
    pub const fn from_u32(raw: u32) -> Self {
        VersionId(raw)
    }

    /// The raw index.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// As a `usize` index into history storage.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The immediately preceding version, if any.
    pub fn predecessor(self) -> Option<VersionId> {
        self.0.checked_sub(1).map(VersionId)
    }
}

impl fmt::Debug for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// Metadata describing one committed version.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VersionInfo {
    /// The version's identifier.
    pub id: VersionId,
    /// Human-readable label (e.g. `"2016-04 release"`).
    pub label: String,
    /// Logical commit timestamp (monotonically increasing).
    pub timestamp: u64,
    /// The version this one evolved from (`None` for the initial commit).
    pub parent: Option<VersionId>,
    /// Number of triples in the snapshot at commit time.
    pub triple_count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_by_commit_index() {
        assert!(VersionId::from_u32(0) < VersionId::from_u32(1));
        assert_eq!(VersionId::from_u32(4).index(), 4);
        assert_eq!(VersionId::from_u32(4).as_u32(), 4);
    }

    #[test]
    fn predecessor_walks_back_to_none() {
        assert_eq!(
            VersionId::from_u32(2).predecessor(),
            Some(VersionId::from_u32(1))
        );
        assert_eq!(VersionId::from_u32(0).predecessor(), None);
    }

    #[test]
    fn display_is_v_prefixed() {
        assert_eq!(VersionId::from_u32(3).to_string(), "V3");
        assert_eq!(format!("{:?}", VersionId::from_u32(3)), "V3");
    }
}
