//! Archiving policies for version histories.
//!
//! Realises the archiving-policy design space of Stefanidis et al.
//! (ER 2014) — reference [13] of the paper — which the paper cites as the
//! substrate for "accessing previous versions of a dataset to support
//! historical or cross-snapshot queries". Three policies trade storage
//! for reconstruction cost:
//!
//! - [`ArchivePolicy::FullSnapshots`] stores every version materialised:
//!   maximal storage, zero reconstruction work.
//! - [`ArchivePolicy::DeltaChain`] stores the first version plus deltas:
//!   minimal storage, reconstruction replays the chain.
//! - [`ArchivePolicy::Hybrid`] checkpoints a full snapshot every `k`
//!   versions: bounded replay length.

use crate::delta::LowLevelDelta;
use crate::store::VersionedStore;
use crate::version::VersionId;
use evorec_kb::TripleStore;

/// How a version history is persisted.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ArchivePolicy {
    /// Materialise every version.
    FullSnapshots,
    /// Materialise the first version; store deltas for the rest.
    DeltaChain,
    /// Materialise every `full_every`-th version; deltas in between.
    Hybrid {
        /// Checkpoint period (must be ≥ 1).
        full_every: usize,
    },
}

impl ArchivePolicy {
    /// Short policy name for report tables.
    pub fn name(self) -> String {
        match self {
            ArchivePolicy::FullSnapshots => "full".into(),
            ArchivePolicy::DeltaChain => "delta".into(),
            ArchivePolicy::Hybrid { full_every } => format!("hybrid({full_every})"),
        }
    }
}

enum Entry {
    Snapshot(TripleStore),
    Delta(LowLevelDelta),
}

/// A version history persisted under a given [`ArchivePolicy`], with cost
/// accounting.
pub struct Archive {
    policy: ArchivePolicy,
    entries: Vec<Entry>,
}

/// Storage/retrieval cost summary of an [`Archive`].
#[derive(Clone, Debug, PartialEq)]
pub struct ArchiveStats {
    /// The policy the archive was built under.
    pub policy_name: String,
    /// Total triples stored across snapshots.
    pub snapshot_triples: usize,
    /// Total triples stored across deltas (added + removed).
    pub delta_triples: usize,
    /// Number of materialised snapshots.
    pub snapshots: usize,
    /// Number of stored deltas.
    pub deltas: usize,
    /// Mean number of delta applications to materialise a version,
    /// averaged over all versions.
    pub mean_reconstruction_steps: f64,
}

impl ArchiveStats {
    /// Total stored triples (snapshot + delta payloads) — the storage-cost
    /// axis of the E9 ablation.
    pub fn total_stored_triples(&self) -> usize {
        self.snapshot_triples + self.delta_triples
    }
}

impl Archive {
    /// Persist the full history of `store` under `policy`.
    ///
    /// # Panics
    /// Panics if `policy` is `Hybrid { full_every: 0 }`.
    pub fn build(store: &VersionedStore, policy: ArchivePolicy) -> Archive {
        if let ArchivePolicy::Hybrid { full_every } = policy {
            assert!(full_every >= 1, "hybrid checkpoint period must be >= 1");
        }
        let mut entries = Vec::with_capacity(store.version_count());
        for v in store.versions() {
            let ix = v.id.index();
            let materialise = match policy {
                ArchivePolicy::FullSnapshots => true,
                ArchivePolicy::DeltaChain => ix == 0,
                ArchivePolicy::Hybrid { full_every } => ix % full_every == 0,
            };
            if materialise {
                entries.push(Entry::Snapshot(store.snapshot(v.id).clone()));
            } else {
                let prev = VersionId::from_u32(v.id.as_u32() - 1);
                entries.push(Entry::Delta(store.delta(prev, v.id).as_ref().clone()));
            }
        }
        Archive { policy, entries }
    }

    /// The policy this archive was built under.
    pub fn policy(&self) -> ArchivePolicy {
        self.policy
    }

    /// Number of archived versions.
    pub fn version_count(&self) -> usize {
        self.entries.len()
    }

    /// Reconstruct the snapshot of `version`, replaying deltas from the
    /// nearest earlier checkpoint. Returns the snapshot and the number of
    /// delta applications performed.
    pub fn materialize(&self, version: VersionId) -> Option<(TripleStore, usize)> {
        let target = version.index();
        if target >= self.entries.len() {
            return None;
        }
        // Find nearest checkpoint at or before target.
        let base = (0..=target).rev().find(|&ix| matches!(self.entries[ix], Entry::Snapshot(_)))?;
        let mut current = match &self.entries[base] {
            Entry::Snapshot(s) => s.clone(),
            Entry::Delta(_) => unreachable!("base index points at a snapshot"),
        };
        let mut steps = 0;
        for entry in &self.entries[base + 1..=target] {
            match entry {
                Entry::Delta(d) => {
                    current = d.apply(&current);
                    steps += 1;
                }
                Entry::Snapshot(s) => {
                    current = s.clone();
                }
            }
        }
        Some((current, steps))
    }

    /// Cost summary over the whole archive.
    pub fn stats(&self) -> ArchiveStats {
        let mut snapshot_triples = 0;
        let mut delta_triples = 0;
        let mut snapshots = 0;
        let mut deltas = 0;
        for e in &self.entries {
            match e {
                Entry::Snapshot(s) => {
                    snapshot_triples += s.len();
                    snapshots += 1;
                }
                Entry::Delta(d) => {
                    delta_triples += d.size();
                    deltas += 1;
                }
            }
        }
        let total_steps: usize = (0..self.entries.len())
            .map(|ix| {
                let base = (0..=ix)
                    .rev()
                    .find(|&j| matches!(self.entries[j], Entry::Snapshot(_)))
                    .unwrap_or(0);
                ix - base
            })
            .sum();
        let mean_reconstruction_steps = if self.entries.is_empty() {
            0.0
        } else {
            total_steps as f64 / self.entries.len() as f64
        };
        ArchiveStats {
            policy_name: self.policy.name(),
            snapshot_triples,
            delta_triples,
            snapshots,
            deltas,
            mean_reconstruction_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VersionedStore;
    use evorec_kb::{Term, Triple};

    /// A five-version history where each version adds one instance triple
    /// and version 3 also retracts one.
    fn history() -> VersionedStore {
        let mut vs = VersionedStore::new();
        let p = vs.intern(Term::iri("http://x/p"));
        let mut triples = Vec::new();
        for i in 0..5u32 {
            let s = vs.intern(Term::iri(format!("http://x/s{i}")));
            let o = vs.intern(Term::iri(format!("http://x/o{i}")));
            triples.push(Triple::new(s, p, o));
            let mut snap: Vec<Triple> = triples.clone();
            if i >= 3 {
                snap.remove(0);
            }
            vs.commit_snapshot(format!("v{i}"), snap.into_iter().collect());
        }
        vs
    }

    #[test]
    fn all_policies_materialise_identically() {
        let vs = history();
        for policy in [
            ArchivePolicy::FullSnapshots,
            ArchivePolicy::DeltaChain,
            ArchivePolicy::Hybrid { full_every: 2 },
        ] {
            let archive = Archive::build(&vs, policy);
            for v in vs.versions() {
                let (got, _) = archive.materialize(v.id).unwrap();
                assert_eq!(
                    &got,
                    vs.snapshot(v.id),
                    "{} at {}",
                    policy.name(),
                    v.id
                );
            }
        }
    }

    #[test]
    fn full_snapshots_need_no_replay() {
        let vs = history();
        let archive = Archive::build(&vs, ArchivePolicy::FullSnapshots);
        for v in vs.versions() {
            let (_, steps) = archive.materialize(v.id).unwrap();
            assert_eq!(steps, 0);
        }
        let stats = archive.stats();
        assert_eq!(stats.deltas, 0);
        assert_eq!(stats.snapshots, 5);
        assert_eq!(stats.mean_reconstruction_steps, 0.0);
    }

    #[test]
    fn delta_chain_replays_proportionally() {
        let vs = history();
        let archive = Archive::build(&vs, ArchivePolicy::DeltaChain);
        let (_, steps) = archive.materialize(VersionId::from_u32(4)).unwrap();
        assert_eq!(steps, 4);
        let stats = archive.stats();
        assert_eq!(stats.snapshots, 1);
        assert_eq!(stats.deltas, 4);
        // Storage strictly below full snapshots for this growing history.
        let full = Archive::build(&vs, ArchivePolicy::FullSnapshots).stats();
        assert!(stats.total_stored_triples() < full.total_stored_triples());
    }

    #[test]
    fn hybrid_bounds_replay_length() {
        let vs = history();
        let archive = Archive::build(&vs, ArchivePolicy::Hybrid { full_every: 2 });
        for v in vs.versions() {
            let (_, steps) = archive.materialize(v.id).unwrap();
            assert!(steps < 2, "{:?} took {steps} steps", v.id);
        }
    }

    #[test]
    fn materialize_out_of_range_is_none() {
        let vs = history();
        let archive = Archive::build(&vs, ArchivePolicy::DeltaChain);
        assert!(archive.materialize(VersionId::from_u32(99)).is_none());
    }

    #[test]
    #[should_panic(expected = "checkpoint period")]
    fn hybrid_zero_rejected() {
        let vs = history();
        let _ = Archive::build(&vs, ArchivePolicy::Hybrid { full_every: 0 });
    }

    #[test]
    fn policy_names() {
        assert_eq!(ArchivePolicy::FullSnapshots.name(), "full");
        assert_eq!(ArchivePolicy::DeltaChain.name(), "delta");
        assert_eq!(ArchivePolicy::Hybrid { full_every: 3 }.name(), "hybrid(3)");
    }
}
