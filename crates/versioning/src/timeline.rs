//! Change timelines across whole version histories.
//!
//! The paper's introduction promises to help humans "observe changes
//! trends and identify the most changed parts of a knowledge base". A
//! [`Timeline`] digests a full history into per-term change series (one
//! δ(n) value per consecutive evolution step) and classifies their
//! [`Trend`]s, so "what keeps changing?" and "what suddenly spiked?"
//! become O(1) lookups.

use crate::store::VersionedStore;
use evorec_kb::{FxHashMap, TermId};
use serde::{Deserialize, Serialize};

/// How a per-term change series behaves over time.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Trend {
    /// Change activity grows step over step.
    Rising,
    /// Change activity shrinks step over step.
    Falling,
    /// Activity is roughly flat (including all-zero).
    Stable,
    /// Activity is concentrated in isolated spikes.
    Bursty,
}

impl Trend {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Trend::Rising => "rising",
            Trend::Falling => "falling",
            Trend::Stable => "stable",
            Trend::Bursty => "bursty",
        }
    }
}

/// Classify a change series. Uses the least-squares slope (normalised by
/// the series mean) for direction and the coefficient of variation for
/// burstiness:
///
/// - CV > 1.5 → [`Trend::Bursty`] (mass concentrated in spikes);
/// - normalised slope > +0.15 → [`Trend::Rising`];
/// - normalised slope < −0.15 → [`Trend::Falling`];
/// - otherwise [`Trend::Stable`].
pub fn classify_trend(series: &[usize]) -> Trend {
    let n = series.len();
    if n < 2 {
        return Trend::Stable;
    }
    let nf = n as f64;
    let mean = series.iter().sum::<usize>() as f64 / nf;
    if mean == 0.0 {
        return Trend::Stable;
    }
    let variance = series
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / nf;
    let cv = variance.sqrt() / mean;
    if cv > 1.5 {
        return Trend::Bursty;
    }
    // Least-squares slope over x = 0..n.
    let x_mean = (nf - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    for (x, &y) in series.iter().enumerate() {
        let dx = x as f64 - x_mean;
        cov += dx * (y as f64 - mean);
        var_x += dx * dx;
    }
    let slope = if var_x > 0.0 { cov / var_x } else { 0.0 };
    let normalised = slope / mean;
    if normalised > 0.15 {
        Trend::Rising
    } else if normalised < -0.15 {
        Trend::Falling
    } else {
        Trend::Stable
    }
}

/// Per-term change series over a full history.
#[derive(Clone, Debug)]
pub struct Timeline {
    steps: usize,
    step_sizes: Vec<usize>,
    series: FxHashMap<TermId, Vec<usize>>,
}

impl Timeline {
    /// Digest every consecutive evolution step of `store`. Only terms
    /// that changed at least once get a series (absent terms are
    /// implicitly all-zero).
    pub fn build(store: &VersionedStore) -> Timeline {
        let versions = store.versions();
        let steps = versions.len().saturating_sub(1);
        let mut step_sizes = Vec::with_capacity(steps);
        let mut series: FxHashMap<TermId, Vec<usize>> = FxHashMap::default();
        for step in 0..steps {
            let from = versions[step].id;
            let to = versions[step + 1].id;
            let delta = store.delta(from, to);
            step_sizes.push(delta.size());
            let mut touched: Vec<TermId> = Vec::new();
            for t in delta.added.iter().chain(delta.removed.iter()) {
                touched.push(t.s);
                touched.push(t.p);
                touched.push(t.o);
            }
            touched.sort_unstable();
            touched.dedup();
            for term in touched {
                let entry = series.entry(term).or_insert_with(|| vec![0; steps]);
                entry[step] = delta.changes_for_term(term);
            }
        }
        Timeline {
            steps,
            step_sizes,
            series,
        }
    }

    /// Number of evolution steps digested.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// |δ| of each step, oldest first.
    pub fn step_sizes(&self) -> &[usize] {
        &self.step_sizes
    }

    /// The per-step change series of `term` (all zeros if never touched).
    pub fn series_of(&self, term: TermId) -> Vec<usize> {
        self.series
            .get(&term)
            .cloned()
            .unwrap_or_else(|| vec![0; self.steps])
    }

    /// Total changes of `term` across the history.
    pub fn total_of(&self, term: TermId) -> usize {
        self.series.get(&term).map_or(0, |s| s.iter().sum())
    }

    /// The trend classification of `term`.
    pub fn trend_of(&self, term: TermId) -> Trend {
        match self.series.get(&term) {
            Some(series) => classify_trend(series),
            None => Trend::Stable,
        }
    }

    /// The `k` most-changed terms across the whole history ("the most
    /// changed parts of a knowledge base"), descending total, ties by
    /// ascending term id.
    pub fn most_changed(&self, k: usize) -> Vec<(TermId, usize)> {
        let mut totals: Vec<(TermId, usize)> = self
            .series
            .iter()
            .map(|(&term, series)| (term, series.iter().sum()))
            .collect();
        totals.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        totals.truncate(k);
        totals
    }

    /// Terms whose series classifies as `trend`, ascending id.
    pub fn terms_with_trend(&self, trend: Trend) -> Vec<TermId> {
        let mut out: Vec<TermId> = self
            .series
            .iter()
            .filter(|(_, series)| classify_trend(series) == trend)
            .map(|(&term, _)| term)
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of distinct terms touched at least once.
    pub fn touched_terms(&self) -> usize {
        self.series.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::{Triple, TripleStore};

    #[test]
    fn classify_trends() {
        assert_eq!(classify_trend(&[]), Trend::Stable);
        assert_eq!(classify_trend(&[5]), Trend::Stable);
        assert_eq!(classify_trend(&[0, 0, 0, 0]), Trend::Stable);
        assert_eq!(classify_trend(&[3, 3, 3, 3]), Trend::Stable);
        assert_eq!(classify_trend(&[1, 2, 4, 6, 8]), Trend::Rising);
        assert_eq!(classify_trend(&[8, 6, 4, 2, 1]), Trend::Falling);
        assert_eq!(classify_trend(&[0, 0, 30, 0, 0, 0]), Trend::Bursty);
    }

    fn history() -> (VersionedStore, TermId, TermId) {
        let mut vs = VersionedStore::new();
        let p = vs.intern_iri("http://x/p");
        let hot = vs.intern_iri("http://x/hot");
        let cold = vs.intern_iri("http://x/cold");
        let mut snapshot = TripleStore::new();
        vs.commit_snapshot("v0", snapshot.clone());
        // hot gains i triples at step i; cold changes only in step 0.
        let mut ix = 0u32;
        for step in 0..4u32 {
            for _ in 0..=step {
                let o = vs.intern_iri(format!("http://x/o{ix}"));
                ix += 1;
                snapshot.insert(Triple::new(hot, p, o));
            }
            if step == 0 {
                let o = vs.intern_iri("http://x/c0");
                snapshot.insert(Triple::new(cold, p, o));
            }
            vs.commit_snapshot(format!("v{}", step + 1), snapshot.clone());
        }
        (vs, hot, cold)
    }

    #[test]
    fn timeline_series_match_deltas() {
        let (vs, hot, cold) = history();
        let timeline = Timeline::build(&vs);
        assert_eq!(timeline.steps(), 4);
        assert_eq!(timeline.series_of(hot), vec![1, 2, 3, 4]);
        assert_eq!(timeline.series_of(cold), vec![1, 0, 0, 0]);
        assert_eq!(timeline.total_of(hot), 10);
        assert_eq!(timeline.total_of(cold), 1);
        // step sizes include the cold change in step 0.
        assert_eq!(timeline.step_sizes(), &[2, 2, 3, 4]);
    }

    #[test]
    fn trends_detected_per_term() {
        let (vs, hot, cold) = history();
        let timeline = Timeline::build(&vs);
        assert_eq!(timeline.trend_of(hot), Trend::Rising);
        // cold: single spike then silence → bursty.
        assert_eq!(timeline.trend_of(cold), Trend::Bursty);
        let never = TermId::from_u32(9999);
        assert_eq!(timeline.trend_of(never), Trend::Stable);
        assert_eq!(timeline.series_of(never), vec![0, 0, 0, 0]);
    }

    #[test]
    fn most_changed_ranks_by_total() {
        let (vs, hot, _) = history();
        let timeline = Timeline::build(&vs);
        // The shared predicate p appears in every changed triple (hot's
        // ten plus cold's one), so it tops the list at 11; `hot` follows
        // with its own 10.
        let top = timeline.most_changed(2);
        assert_eq!(top[0].1, 11, "predicate total: {top:?}");
        assert!(top.contains(&(hot, 10)));
        assert!(timeline.touched_terms() >= 2);
    }

    #[test]
    fn terms_with_trend_filters() {
        let (vs, hot, cold) = history();
        let timeline = Timeline::build(&vs);
        assert!(timeline.terms_with_trend(Trend::Rising).contains(&hot));
        assert!(timeline.terms_with_trend(Trend::Bursty).contains(&cold));
        assert!(!timeline.terms_with_trend(Trend::Rising).contains(&cold));
    }

    #[test]
    fn empty_and_single_version_histories() {
        let vs = VersionedStore::new();
        let t = Timeline::build(&vs);
        assert_eq!(t.steps(), 0);
        assert_eq!(t.touched_terms(), 0);

        let mut vs = VersionedStore::new();
        vs.commit_snapshot("only", TripleStore::new());
        let t = Timeline::build(&vs);
        assert_eq!(t.steps(), 0);
        assert!(t.most_changed(5).is_empty());
    }
}
