//! Low-level deltas: the added / removed triple sets between two versions.
//!
//! Implements the δ of ICDE'17 §II(a): for an evolution V1 → V2,
//! `added` is δ⁺(V1,V2), `removed` is δ⁻(V1,V2), the delta size is
//! |δ| = |δ⁺| + |δ⁻|, and [`LowLevelDelta::changes_for_term`] is the
//! per-class/property restriction δ(n).

use evorec_kb::{TermId, Triple, TripleStore};

/// The added/removed triple sets of one evolution step.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct LowLevelDelta {
    /// Triples present in V2 but not V1 (δ⁺).
    pub added: TripleStore,
    /// Triples present in V1 but not V2 (δ⁻).
    pub removed: TripleStore,
}

impl LowLevelDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute the delta between two snapshots (`v1` → `v2`).
    pub fn compute(v1: &TripleStore, v2: &TripleStore) -> LowLevelDelta {
        LowLevelDelta {
            added: v2.difference(v1).collect(),
            removed: v1.difference(v2).collect(),
        }
    }

    /// Build from explicit added/removed collections.
    pub fn from_parts(
        added: impl IntoIterator<Item = Triple>,
        removed: impl IntoIterator<Item = Triple>,
    ) -> LowLevelDelta {
        LowLevelDelta {
            added: added.into_iter().collect(),
            removed: removed.into_iter().collect(),
        }
    }

    /// |δ| = |δ⁺| + |δ⁻|.
    pub fn size(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// |δ⁺|.
    pub fn added_count(&self) -> usize {
        self.added.len()
    }

    /// |δ⁻|.
    pub fn removed_count(&self) -> usize {
        self.removed.len()
    }

    /// `true` if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// δ(n): the number of changed triples in which `term` appears
    /// (in any position, added or removed).
    pub fn changes_for_term(&self, term: TermId) -> usize {
        self.added.mention_count(term) + self.removed.mention_count(term)
    }

    /// The changed triples mentioning `term`, tagged with whether each was
    /// added (`true`) or removed (`false`).
    pub fn triples_for_term(&self, term: TermId) -> Vec<(Triple, bool)> {
        let mut out: Vec<(Triple, bool)> = self
            .added
            .mentioning(term)
            .into_iter()
            .map(|t| (t, true))
            .chain(self.removed.mentioning(term).into_iter().map(|t| (t, false)))
            .collect();
        out.sort_unstable();
        out
    }

    /// Apply this delta to `base`, producing the successor snapshot.
    ///
    /// Removals are applied before additions so a triple present in both
    /// sets ends up present (matching set semantics of `compute`, which
    /// never produces overlapping sets).
    pub fn apply(&self, base: &TripleStore) -> TripleStore {
        let mut next = base.clone();
        for t in self.removed.iter() {
            next.remove(&t);
        }
        next.extend(self.added.iter());
        next
    }

    /// The inverse delta (swapped added/removed): applying `d.invert()`
    /// after `d` restores the original snapshot.
    pub fn invert(&self) -> LowLevelDelta {
        LowLevelDelta {
            added: self.removed.clone(),
            removed: self.added.clone(),
        }
    }

    /// A copy with every entry that is a no-op relative to `base`
    /// dropped: additions already present in `base`, removals absent
    /// from it.
    ///
    /// [`compose`](LowLevelDelta::compose) keeps its two sides disjoint
    /// but can carry base-relative no-ops — a triple removed by one
    /// epoch and re-added by a later one survives composition as an
    /// addition even though the span's endpoints both contain it. For a
    /// chain of per-step deltas `base → … → head`, normalising the
    /// composition against the `base` snapshot recovers *exactly*
    /// [`LowLevelDelta::compute`]`(base, head)` — which is what lets a
    /// sliding serving window advance by delta algebra yet fingerprint
    /// identically to a batch-built context.
    pub fn normalise_against(&self, base: &TripleStore) -> LowLevelDelta {
        LowLevelDelta {
            added: self.added.iter().filter(|t| !base.contains(t)).collect(),
            removed: self.removed.iter().filter(|t| base.contains(t)).collect(),
        }
    }

    /// Sequentially compose two deltas: `self` then `later`. The result
    /// applied to a base equals applying both in order.
    pub fn compose(&self, later: &LowLevelDelta) -> LowLevelDelta {
        // added = (self.added \ later.removed) ∪ later.added
        // removed = (self.removed \ later.added) ∪ later.removed
        // then normalised so the two sets are disjoint.
        let mut added: TripleStore = self
            .added
            .difference(&later.removed)
            .chain(later.added.iter())
            .collect();
        let mut removed: TripleStore = self
            .removed
            .difference(&later.added)
            .chain(later.removed.iter())
            .collect();
        let dup: Vec<Triple> = added.iter().filter(|t| removed.contains(t)).collect();
        for t in &dup {
            added.remove(t);
            removed.remove(t);
        }
        LowLevelDelta { added, removed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::TermId;

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    fn tr(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(t(s), t(p), t(o))
    }

    fn snapshots() -> (TripleStore, TripleStore) {
        let v1 = TripleStore::from_triples([tr(1, 10, 2), tr(2, 10, 3), tr(3, 11, 4)]);
        let v2 = TripleStore::from_triples([tr(1, 10, 2), tr(2, 10, 5), tr(6, 12, 7)]);
        (v1, v2)
    }

    #[test]
    fn compute_splits_added_and_removed() {
        let (v1, v2) = snapshots();
        let d = LowLevelDelta::compute(&v1, &v2);
        assert_eq!(d.added_count(), 2);
        assert_eq!(d.removed_count(), 2);
        assert_eq!(d.size(), 4);
        assert!(d.added.contains(&tr(2, 10, 5)));
        assert!(d.added.contains(&tr(6, 12, 7)));
        assert!(d.removed.contains(&tr(2, 10, 3)));
        assert!(d.removed.contains(&tr(3, 11, 4)));
    }

    #[test]
    fn identical_snapshots_give_empty_delta() {
        let (v1, _) = snapshots();
        let d = LowLevelDelta::compute(&v1, &v1);
        assert!(d.is_empty());
        assert_eq!(d.size(), 0);
    }

    #[test]
    fn apply_reconstructs_successor() {
        let (v1, v2) = snapshots();
        let d = LowLevelDelta::compute(&v1, &v2);
        assert_eq!(d.apply(&v1), v2);
    }

    #[test]
    fn invert_roundtrips() {
        let (v1, v2) = snapshots();
        let d = LowLevelDelta::compute(&v1, &v2);
        assert_eq!(d.invert().apply(&v2), v1);
        assert_eq!(d.invert().invert(), d);
    }

    #[test]
    fn changes_for_term_counts_mentions_on_both_sides() {
        let (v1, v2) = snapshots();
        let d = LowLevelDelta::compute(&v1, &v2);
        // term 2: removed (2,10,3), added (2,10,5) → 2 changes.
        assert_eq!(d.changes_for_term(t(2)), 2);
        // term 10 (predicate): same two triples.
        assert_eq!(d.changes_for_term(t(10)), 2);
        // untouched term 1: (1,10,2) unchanged → 0.
        assert_eq!(d.changes_for_term(t(1)), 0);
        // term never present.
        assert_eq!(d.changes_for_term(t(99)), 0);
    }

    #[test]
    fn triples_for_term_tags_direction() {
        let (v1, v2) = snapshots();
        let d = LowLevelDelta::compute(&v1, &v2);
        let got = d.triples_for_term(t(2));
        assert_eq!(got, vec![(tr(2, 10, 3), false), (tr(2, 10, 5), true)]);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let (v1, v2) = snapshots();
        let v3 = TripleStore::from_triples([tr(1, 10, 2), tr(6, 12, 7), tr(8, 13, 9)]);
        let d12 = LowLevelDelta::compute(&v1, &v2);
        let d23 = LowLevelDelta::compute(&v2, &v3);
        let composed = d12.compose(&d23);
        assert_eq!(composed.apply(&v1), v3);
        // Composition normalises: added/removed are disjoint.
        for triple in composed.added.iter() {
            assert!(!composed.removed.contains(&triple));
        }
    }

    #[test]
    fn compose_add_then_remove_nets_to_removal() {
        // (add t, then remove t) must behave like "ensure t absent": a
        // no-op on bases without t, a removal on bases with it.
        let add = LowLevelDelta::from_parts([tr(1, 2, 3)], []);
        let remove = LowLevelDelta::from_parts([], [tr(1, 2, 3)]);
        let net = add.compose(&remove);
        assert!(net.added.is_empty());
        assert!(net.removed.contains(&tr(1, 2, 3)));
        let empty = TripleStore::new();
        assert_eq!(net.apply(&empty), empty);
        let with_t = TripleStore::from_triples([tr(1, 2, 3)]);
        assert!(net.apply(&with_t).is_empty());
    }

    #[test]
    fn normalised_composition_equals_direct_compute() {
        // S0 → S1 removes (1,2,3); S1 → S2 re-adds it. The raw
        // composition carries the re-add as an addition; normalising
        // against S0 recovers the direct diff exactly.
        let s0 = TripleStore::from_triples([tr(1, 2, 3), tr(4, 5, 6)]);
        let s1 = TripleStore::from_triples([tr(4, 5, 6)]);
        let s2 = TripleStore::from_triples([tr(1, 2, 3), tr(7, 8, 9)]);
        let d01 = LowLevelDelta::compute(&s0, &s1);
        let d12 = LowLevelDelta::compute(&s1, &s2);
        let composed = d01.compose(&d12);
        assert!(
            composed.added.contains(&tr(1, 2, 3)),
            "raw composition carries the base-relative no-op"
        );
        let normalised = composed.normalise_against(&s0);
        assert_eq!(normalised, LowLevelDelta::compute(&s0, &s2));
        // Normalising a directly computed delta is the identity.
        let direct = LowLevelDelta::compute(&s0, &s2);
        assert_eq!(direct.normalise_against(&s0), direct);
    }

    #[test]
    fn inverted_prefix_strips_cleanly_for_sliding_windows() {
        // The sliding-window advance: given d02 = d01 ∘ d12, stripping
        // the evicted epoch as d01⁻¹ ∘ d02 and normalising against S1
        // yields exactly compute(S1, S2).
        let s0 = TripleStore::from_triples([tr(1, 2, 3), tr(4, 5, 6)]);
        let s1 = TripleStore::from_triples([tr(4, 5, 6), tr(7, 8, 9)]);
        let s2 = TripleStore::from_triples([tr(1, 2, 3), tr(7, 8, 9)]);
        let d01 = LowLevelDelta::compute(&s0, &s1);
        let d12 = LowLevelDelta::compute(&s1, &s2);
        let d02 = d01.compose(&d12);
        let stripped = d01.invert().compose(&d02).normalise_against(&s1);
        assert_eq!(stripped, LowLevelDelta::compute(&s1, &s2));
    }

    #[test]
    fn from_parts_collapses_duplicates() {
        let d = LowLevelDelta::from_parts([tr(1, 2, 3), tr(1, 2, 3)], []);
        assert_eq!(d.added_count(), 1);
    }
}
