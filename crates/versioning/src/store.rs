//! The versioned knowledge-base store.

use crate::delta::LowLevelDelta;
use crate::version::{VersionId, VersionInfo};
use evorec_kb::{FxHashMap, SchemaView, Term, TermId, TermInterner, TripleStore, Vocab};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A linear history of knowledge-base snapshots sharing one interner.
///
/// All versions share a single [`TermInterner`], so [`TermId`]s are stable
/// across the whole history — deltas, schema views, and measure reports
/// from different version pairs are directly comparable. Pairwise deltas
/// and per-version schema views are memoised behind [`RwLock`]s
/// (`parking_lot`) so repeated measure evaluations of the same evolution
/// step share the work.
pub struct VersionedStore {
    interner: TermInterner,
    vocab: Vocab,
    versions: Vec<VersionInfo>,
    snapshots: Vec<TripleStore>,
    clock: u64,
    delta_cache: RwLock<FxHashMap<(VersionId, VersionId), Arc<LowLevelDelta>>>,
    schema_cache: RwLock<FxHashMap<VersionId, Arc<SchemaView>>>,
    delta_computations: AtomicU64,
}

impl Default for VersionedStore {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionedStore {
    /// An empty history with the core vocabulary pre-interned.
    pub fn new() -> VersionedStore {
        let mut interner = TermInterner::new();
        let vocab = Vocab::install(&mut interner);
        VersionedStore {
            interner,
            vocab,
            versions: Vec::new(),
            snapshots: Vec::new(),
            clock: 0,
            delta_cache: RwLock::new(FxHashMap::default()),
            schema_cache: RwLock::new(FxHashMap::default()),
            delta_computations: AtomicU64::new(0),
        }
    }

    /// Intern a term into the shared dictionary.
    pub fn intern(&mut self, term: Term) -> TermId {
        self.interner.intern(term)
    }

    /// Intern an IRI into the shared dictionary.
    pub fn intern_iri(&mut self, iri: impl Into<String>) -> TermId {
        self.interner.intern_iri(iri)
    }

    /// The shared interner.
    pub fn interner(&self) -> &TermInterner {
        &self.interner
    }

    /// Mutable access to the shared interner.
    pub fn interner_mut(&mut self) -> &mut TermInterner {
        &mut self.interner
    }

    /// The pre-interned vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Advance the logical commit clock by `ticks` without committing —
    /// modelling idle wall-clock time a quiet stream spends between
    /// epochs. The next commit's timestamp lands after the gap, so
    /// time-anchored consumers (`Since`, wall-clock sliding bands) see
    /// history age even while no version lands.
    pub fn advance_clock(&mut self, ticks: u64) {
        self.clock = self.clock.saturating_add(ticks);
    }

    /// The logical commit clock (the timestamp the *next* commit will
    /// exceed).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Commit a full snapshot as the next version; returns its id.
    pub fn commit_snapshot(
        &mut self,
        label: impl Into<String>,
        snapshot: TripleStore,
    ) -> VersionId {
        let id = VersionId::from_u32(self.versions.len() as u32);
        self.clock += 1;
        self.versions.push(VersionInfo {
            id,
            label: label.into(),
            timestamp: self.clock,
            parent: id.predecessor(),
            triple_count: snapshot.len(),
        });
        self.snapshots.push(snapshot);
        id
    }

    /// Commit the next version by applying `delta` to the current head
    /// (an empty base if the history is empty); returns the new id.
    pub fn commit_delta(&mut self, label: impl Into<String>, delta: &LowLevelDelta) -> VersionId {
        let base = match self.head() {
            Some(head) => self.snapshots[head.index()].clone(),
            None => TripleStore::new(),
        };
        let next = delta.apply(&base);
        let id = self.commit_snapshot(label, next);
        // Seed the cache: the delta between head-1 and head is known.
        if let Some(prev) = id.predecessor() {
            self.delta_cache
                .write()
                .insert((prev, id), Arc::new(delta.clone()));
        }
        id
    }

    /// The most recently committed version.
    pub fn head(&self) -> Option<VersionId> {
        self.versions.last().map(|v| v.id)
    }

    /// All version metadata, oldest first.
    pub fn versions(&self) -> &[VersionInfo] {
        &self.versions
    }

    /// Number of committed versions.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// The snapshot of `version`.
    ///
    /// # Panics
    /// Panics if `version` was not committed to this store.
    pub fn snapshot(&self, version: VersionId) -> &TripleStore {
        &self.snapshots[version.index()]
    }

    /// The snapshot of `version`, or `None` if unknown.
    pub fn try_snapshot(&self, version: VersionId) -> Option<&TripleStore> {
        self.snapshots.get(version.index())
    }

    /// The low-level delta for the evolution `from` → `to` (memoised).
    ///
    /// # Panics
    /// Panics if either version is unknown.
    pub fn delta(&self, from: VersionId, to: VersionId) -> Arc<LowLevelDelta> {
        if let Some(hit) = self.delta_cache.read().get(&(from, to)) {
            return Arc::clone(hit);
        }
        self.delta_computations.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(LowLevelDelta::compute(
            self.snapshot(from),
            self.snapshot(to),
        ));
        self.delta_cache
            .write()
            .insert((from, to), Arc::clone(&computed));
        computed
    }

    /// Seed the delta cache for `from → to` with a delta the caller has
    /// derived some other way — e.g. a serving window's composition of
    /// per-epoch deltas (normalised against the `from` snapshot, so it
    /// equals what [`LowLevelDelta::compute`] would return). A later
    /// [`delta`](VersionedStore::delta) call for the pair then hits the
    /// cache instead of re-diffing two whole snapshots. An already
    /// cached pair is left untouched.
    ///
    /// # Panics
    /// Panics if either version is unknown to this store.
    pub fn seed_delta(&self, from: VersionId, to: VersionId, delta: Arc<LowLevelDelta>) {
        assert!(
            self.try_snapshot(from).is_some() && self.try_snapshot(to).is_some(),
            "seed_delta needs committed versions, got {from} → {to}"
        );
        self.delta_cache.write().entry((from, to)).or_insert(delta);
    }

    /// How many deltas have been computed by diffing two snapshots (the
    /// O(|V1| + |V2|) path), as opposed to served from the cache or
    /// seeded by [`seed_delta`](VersionedStore::seed_delta). The
    /// multi-window serving tests and benches watch this counter to
    /// prove that advancing windows composes epoch deltas instead of
    /// re-diffing.
    pub fn delta_computations(&self) -> u64 {
        self.delta_computations.load(Ordering::Relaxed)
    }

    /// The schema view of `version` (memoised).
    ///
    /// # Panics
    /// Panics if `version` is unknown.
    pub fn schema_view(&self, version: VersionId) -> Arc<SchemaView> {
        if let Some(hit) = self.schema_cache.read().get(&version) {
            return Arc::clone(hit);
        }
        let computed = Arc::new(SchemaView::extract(self.snapshot(version), &self.vocab));
        self.schema_cache
            .write()
            .insert(version, Arc::clone(&computed));
        computed
    }

    /// Total triples across all snapshots (storage accounting).
    pub fn total_stored_triples(&self) -> usize {
        self.snapshots.iter().map(TripleStore::len).sum()
    }
}

impl std::fmt::Debug for VersionedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedStore")
            .field("versions", &self.versions.len())
            .field("terms", &self.interner.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::Triple;

    fn fixture() -> (VersionedStore, TermId, TermId, TermId) {
        let mut vs = VersionedStore::new();
        let a = vs.intern_iri("http://x/a");
        let p = vs.intern_iri("http://x/p");
        let b = vs.intern_iri("http://x/b");
        (vs, a, p, b)
    }

    #[test]
    fn commit_snapshot_assigns_dense_ids() {
        let (mut vs, a, p, b) = fixture();
        let v0 = vs.commit_snapshot("empty", TripleStore::new());
        let v1 = vs.commit_snapshot("one", TripleStore::from_triples([Triple::new(a, p, b)]));
        assert_eq!(v0.index(), 0);
        assert_eq!(v1.index(), 1);
        assert_eq!(vs.head(), Some(v1));
        assert_eq!(vs.version_count(), 2);
        assert_eq!(vs.versions()[1].parent, Some(v0));
        assert_eq!(vs.versions()[1].triple_count, 1);
        assert!(vs.versions()[0].timestamp < vs.versions()[1].timestamp);
    }

    #[test]
    fn commit_delta_applies_to_head() {
        let (mut vs, a, p, b) = fixture();
        vs.commit_snapshot("empty", TripleStore::new());
        let d = LowLevelDelta::from_parts([Triple::new(a, p, b)], []);
        let v1 = vs.commit_delta("add one", &d);
        assert_eq!(vs.snapshot(v1).len(), 1);
        assert!(vs.snapshot(v1).contains(&Triple::new(a, p, b)));
    }

    #[test]
    fn commit_delta_on_empty_history_starts_from_nothing() {
        let (mut vs, a, p, b) = fixture();
        let d = LowLevelDelta::from_parts([Triple::new(a, p, b)], []);
        let v0 = vs.commit_delta("genesis", &d);
        assert_eq!(v0.index(), 0);
        assert_eq!(vs.snapshot(v0).len(), 1);
    }

    #[test]
    fn delta_is_memoised_and_correct() {
        let (mut vs, a, p, b) = fixture();
        let v0 = vs.commit_snapshot("empty", TripleStore::new());
        let v1 = vs.commit_snapshot("one", TripleStore::from_triples([Triple::new(a, p, b)]));
        let d1 = vs.delta(v0, v1);
        let d2 = vs.delta(v0, v1);
        assert!(Arc::ptr_eq(&d1, &d2), "second call must hit the cache");
        assert_eq!(d1.added_count(), 1);
        assert_eq!(d1.removed_count(), 0);
        // Reverse direction computed independently.
        let back = vs.delta(v1, v0);
        assert_eq!(back.removed_count(), 1);
    }

    #[test]
    fn commit_delta_seeds_cache() {
        let (mut vs, a, p, b) = fixture();
        let v0 = vs.commit_snapshot("empty", TripleStore::new());
        let d = LowLevelDelta::from_parts([Triple::new(a, p, b)], []);
        let v1 = vs.commit_delta("add", &d);
        let cached = vs.delta(v0, v1);
        assert_eq!(cached.as_ref(), &d);
    }

    #[test]
    fn seeded_delta_is_served_without_a_diff() {
        let (mut vs, a, p, b) = fixture();
        let v0 = vs.commit_snapshot("empty", TripleStore::new());
        let v1 = vs.commit_snapshot("one", TripleStore::from_triples([Triple::new(a, p, b)]));
        let v2 = vs.commit_snapshot(
            "two",
            TripleStore::from_triples([Triple::new(a, p, b), Triple::new(b, p, a)]),
        );
        assert_eq!(vs.delta_computations(), 0);
        // Seed the long span from the composition of the short ones.
        let d01 = vs.delta(v0, v1);
        let d12 = vs.delta(v1, v2);
        assert_eq!(vs.delta_computations(), 2);
        let composed = Arc::new(d01.compose(&d12).normalise_against(vs.snapshot(v0)));
        vs.seed_delta(v0, v2, Arc::clone(&composed));
        let served = vs.delta(v0, v2);
        assert!(Arc::ptr_eq(&served, &composed), "seeded entry served");
        assert_eq!(vs.delta_computations(), 2, "no snapshot diff for v0→v2");
        // Seeding an already cached pair leaves the original in place.
        vs.seed_delta(v0, v1, Arc::new(LowLevelDelta::new()));
        assert!(Arc::ptr_eq(&vs.delta(v0, v1), &d01));
    }

    #[test]
    #[should_panic(expected = "committed versions")]
    fn seed_delta_rejects_unknown_versions() {
        let (vs, ..) = fixture();
        vs.seed_delta(
            VersionId::from_u32(0),
            VersionId::from_u32(1),
            Arc::new(LowLevelDelta::new()),
        );
    }

    #[test]
    fn schema_view_is_memoised() {
        let (mut vs, a, _p, b) = fixture();
        let vocab = *vs.vocab();
        let mut snap = TripleStore::new();
        snap.insert(Triple::new(a, vocab.rdfs_subclassof, b));
        let v0 = vs.commit_snapshot("schema", snap);
        let s1 = vs.schema_view(v0);
        let s2 = vs.schema_view(v0);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert!(s1.is_class(a));
        assert!(s1.is_class(b));
    }

    #[test]
    fn try_snapshot_handles_unknown() {
        let (vs, ..) = fixture();
        assert!(vs.try_snapshot(VersionId::from_u32(0)).is_none());
    }

    #[test]
    fn total_stored_triples_sums_snapshots() {
        let (mut vs, a, p, b) = fixture();
        vs.commit_snapshot("one", TripleStore::from_triples([Triple::new(a, p, b)]));
        vs.commit_snapshot(
            "two",
            TripleStore::from_triples([Triple::new(a, p, b), Triple::new(b, p, a)]),
        );
        assert_eq!(vs.total_stored_triples(), 3);
    }
}
