//! Provenance capture for the transparency perspective (ICDE'17 §III(b)).
//!
//! Every commit is documented by a [`ProvenanceRecord`] answering the
//! paper's transparency questions — *who created this data item and when,
//! by whom was it modified, what process was used* — together with the
//! paper's three justification sources (*observation, inference, belief
//! adoption*). The [`ProvenanceLedger`] indexes records by version, actor,
//! and touched term so explanations can cite them in O(1) lookups.

use crate::delta::LowLevelDelta;
use crate::version::VersionId;
use evorec_kb::{FxHashMap, TermId};
use serde::{Deserialize, Serialize};

/// Why a change is believed correct — the paper's three sources for
/// assessing correctness and reliability of provenance data.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Justification {
    /// Direct observation (e.g. new experimental evidence).
    Observation,
    /// Derived by inference from other data.
    Inference,
    /// Adopted from a trusted third party.
    BeliefAdoption,
}

impl std::fmt::Display for Justification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Justification::Observation => "observation",
            Justification::Inference => "inference",
            Justification::BeliefAdoption => "belief adoption",
        };
        f.write_str(s)
    }
}

/// Identifier of one provenance record within its ledger.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RecordId(pub u64);

/// One documented change activity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Ledger-local identifier.
    pub id: RecordId,
    /// Who performed the activity (curator, pipeline, sensor feed…).
    pub actor: String,
    /// What kind of activity it was (e.g. `"commit"`, `"import"`).
    pub activity: String,
    /// Logical timestamp (monotone per ledger).
    pub timestamp: u64,
    /// The version this activity generated.
    pub generated_version: VersionId,
    /// The version the activity consumed (its parent), if any.
    pub used_version: Option<VersionId>,
    /// How many triples the activity asserted.
    pub added_count: usize,
    /// How many triples the activity retracted.
    pub removed_count: usize,
    /// Why the change is believed correct.
    pub justification: Justification,
    /// Free-text note.
    pub note: String,
}

/// Append-only, indexed store of provenance records.
#[derive(Default, Clone, Debug)]
pub struct ProvenanceLedger {
    records: Vec<ProvenanceRecord>,
    by_version: FxHashMap<VersionId, Vec<usize>>,
    by_actor: FxHashMap<String, Vec<usize>>,
    by_term: FxHashMap<TermId, Vec<usize>>,
    clock: u64,
}

impl ProvenanceLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a commit: `actor` performed `activity`, consuming
    /// `used_version` and generating `generated_version` with the given
    /// `delta`. Terms mentioned by the delta are indexed so
    /// [`ProvenanceLedger::history_of_term`] can answer "who changed X?".
    #[allow(clippy::too_many_arguments)]
    pub fn record_commit(
        &mut self,
        actor: impl Into<String>,
        activity: impl Into<String>,
        used_version: Option<VersionId>,
        generated_version: VersionId,
        delta: &LowLevelDelta,
        justification: Justification,
        note: impl Into<String>,
    ) -> RecordId {
        let id = RecordId(self.records.len() as u64);
        self.clock += 1;
        let record = ProvenanceRecord {
            id,
            actor: actor.into(),
            activity: activity.into(),
            timestamp: self.clock,
            generated_version,
            used_version,
            added_count: delta.added_count(),
            removed_count: delta.removed_count(),
            justification,
            note: note.into(),
        };
        let ix = self.records.len();
        self.by_version
            .entry(generated_version)
            .or_default()
            .push(ix);
        self.by_actor
            .entry(record.actor.clone())
            .or_default()
            .push(ix);
        let mut touched: Vec<TermId> = Vec::new();
        for t in delta.added.iter().chain(delta.removed.iter()) {
            touched.push(t.s);
            touched.push(t.p);
            touched.push(t.o);
        }
        touched.sort_unstable();
        touched.dedup();
        for term in touched {
            self.by_term.entry(term).or_default().push(ix);
        }
        self.records.push(record);
        id
    }

    /// Fetch a record by id.
    pub fn record(&self, id: RecordId) -> Option<&ProvenanceRecord> {
        self.records.get(id.0 as usize)
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[ProvenanceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no records exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records that generated `version`.
    pub fn history_of_version(&self, version: VersionId) -> Vec<&ProvenanceRecord> {
        self.lookup(&self.by_version, &version)
    }

    /// Records authored by `actor`.
    pub fn history_of_actor(&self, actor: &str) -> Vec<&ProvenanceRecord> {
        self.by_actor
            .get(actor)
            .map(|ixs| ixs.iter().map(|&ix| &self.records[ix]).collect())
            .unwrap_or_default()
    }

    /// Records whose delta touched `term`, oldest first — the paper's
    /// "by whom was the data item modified and when".
    pub fn history_of_term(&self, term: TermId) -> Vec<&ProvenanceRecord> {
        self.lookup(&self.by_term, &term)
    }

    /// The most recent record touching `term`, if any.
    pub fn last_touch(&self, term: TermId) -> Option<&ProvenanceRecord> {
        self.history_of_term(term).into_iter().next_back()
    }

    /// Histogram of justifications across all records.
    pub fn justification_histogram(&self) -> FxHashMap<Justification, usize> {
        let mut out = FxHashMap::default();
        for r in &self.records {
            *out.entry(r.justification).or_insert(0) += 1;
        }
        out
    }

    /// Approximate in-memory footprint of the ledger payload in bytes
    /// (records + index entries); used by the E9 overhead accounting.
    pub fn approx_bytes(&self) -> usize {
        let record_bytes: usize = self
            .records
            .iter()
            .map(|r| std::mem::size_of::<ProvenanceRecord>() + r.actor.len() + r.activity.len() + r.note.len())
            .sum();
        let index_entries: usize = self.by_version.values().map(Vec::len).sum::<usize>()
            + self.by_actor.values().map(Vec::len).sum::<usize>()
            + self.by_term.values().map(Vec::len).sum::<usize>();
        record_bytes + index_entries * std::mem::size_of::<usize>()
    }

    fn lookup<K: std::hash::Hash + Eq>(
        &self,
        index: &FxHashMap<K, Vec<usize>>,
        key: &K,
    ) -> Vec<&ProvenanceRecord> {
        index
            .get(key)
            .map(|ixs| ixs.iter().map(|&ix| &self.records[ix]).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::{TermId, Triple};

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    fn tr(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(t(s), t(p), t(o))
    }

    fn ledger_with_two_commits() -> ProvenanceLedger {
        let mut ledger = ProvenanceLedger::new();
        let d1 = LowLevelDelta::from_parts([tr(1, 2, 3)], []);
        let d2 = LowLevelDelta::from_parts([tr(4, 5, 6)], [tr(1, 2, 3)]);
        ledger.record_commit(
            "alice",
            "import",
            None,
            VersionId::from_u32(0),
            &d1,
            Justification::Observation,
            "initial load",
        );
        ledger.record_commit(
            "bob",
            "curation",
            Some(VersionId::from_u32(0)),
            VersionId::from_u32(1),
            &d2,
            Justification::Inference,
            "cleanup",
        );
        ledger
    }

    #[test]
    fn records_are_timestamped_monotonically() {
        let ledger = ledger_with_two_commits();
        assert_eq!(ledger.len(), 2);
        assert!(ledger.records()[0].timestamp < ledger.records()[1].timestamp);
    }

    #[test]
    fn version_history_answers_who_and_when() {
        let ledger = ledger_with_two_commits();
        let h = ledger.history_of_version(VersionId::from_u32(1));
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].actor, "bob");
        assert_eq!(h[0].used_version, Some(VersionId::from_u32(0)));
        assert_eq!(h[0].added_count, 1);
        assert_eq!(h[0].removed_count, 1);
    }

    #[test]
    fn actor_history_filters() {
        let ledger = ledger_with_two_commits();
        assert_eq!(ledger.history_of_actor("alice").len(), 1);
        assert_eq!(ledger.history_of_actor("bob").len(), 1);
        assert!(ledger.history_of_actor("mallory").is_empty());
    }

    #[test]
    fn term_history_tracks_touches_in_order() {
        let ledger = ledger_with_two_commits();
        // Term 1 touched by both commits (added then removed).
        let h = ledger.history_of_term(t(1));
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].actor, "alice");
        assert_eq!(h[1].actor, "bob");
        assert_eq!(ledger.last_touch(t(1)).unwrap().actor, "bob");
        // Term 4 only in the second commit.
        assert_eq!(ledger.history_of_term(t(4)).len(), 1);
        // Untouched term.
        assert!(ledger.history_of_term(t(99)).is_empty());
        assert!(ledger.last_touch(t(99)).is_none());
    }

    #[test]
    fn justification_histogram_counts() {
        let ledger = ledger_with_two_commits();
        let h = ledger.justification_histogram();
        assert_eq!(h[&Justification::Observation], 1);
        assert_eq!(h[&Justification::Inference], 1);
        assert_eq!(h.get(&Justification::BeliefAdoption), None);
    }

    #[test]
    fn record_lookup_by_id() {
        let ledger = ledger_with_two_commits();
        let r = ledger.record(RecordId(0)).unwrap();
        assert_eq!(r.activity, "import");
        assert!(ledger.record(RecordId(9)).is_none());
    }

    #[test]
    fn approx_bytes_grows_with_records() {
        let empty = ProvenanceLedger::new();
        let full = ledger_with_two_commits();
        assert!(full.approx_bytes() > empty.approx_bytes());
    }

    #[test]
    fn justification_display() {
        assert_eq!(Justification::Observation.to_string(), "observation");
        assert_eq!(Justification::BeliefAdoption.to_string(), "belief adoption");
    }
}
