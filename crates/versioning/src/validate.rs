//! Snapshot validation: the curator-facing quality gate.
//!
//! The paper's §I motivates evolution partly by "the correction of
//! erroneous conceptualizations" — which presupposes a way to *find*
//! them. [`validate_snapshot`] audits one version for the structural
//! defects curators fix: subsumption cycles, malformed statements
//! (literal subjects/predicates), undeclared properties in use, and
//! properties lacking domain/range declarations. Comparing issue counts
//! across versions turns the validator into a quality-drift signal.

use evorec_kb::{FxHashMap, FxHashSet, SchemaView, TermId, TermInterner, Triple, TripleStore, Vocab};
use serde::{Deserialize, Serialize};

/// One defect found in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationIssue {
    /// The subsumption hierarchy contains a cycle through these classes
    /// (in traversal order, first repeated class omitted).
    SubsumptionCycle(Vec<TermId>),
    /// A literal term appears in subject position.
    LiteralSubject(Triple),
    /// A literal term appears in predicate position.
    LiteralPredicate(Triple),
    /// A predicate is used in statements but never declared as a
    /// property (and has no domain/range).
    UndeclaredProperty(TermId),
    /// A declared property has no `rdfs:domain`.
    MissingDomain(TermId),
    /// A declared property has no `rdfs:range`.
    MissingRange(TermId),
    /// A class subsumes itself directly (`c ⊑ c`).
    ReflexiveSubclass(TermId),
}

impl ValidationIssue {
    /// Render a one-line description.
    pub fn describe(&self, interner: &TermInterner) -> String {
        let name = |id: TermId| interner.label(id);
        match self {
            ValidationIssue::SubsumptionCycle(cycle) => format!(
                "subsumption cycle: {}",
                cycle
                    .iter()
                    .map(|&c| name(c))
                    .collect::<Vec<_>>()
                    .join(" ⊑ ")
            ),
            ValidationIssue::LiteralSubject(t) => {
                format!("literal used as subject in ({} {} {})", name(t.s), name(t.p), name(t.o))
            }
            ValidationIssue::LiteralPredicate(t) => {
                format!("literal used as predicate in ({} {} {})", name(t.s), name(t.p), name(t.o))
            }
            ValidationIssue::UndeclaredProperty(p) => {
                format!("predicate {} used but never declared", name(*p))
            }
            ValidationIssue::MissingDomain(p) => format!("property {} has no domain", name(*p)),
            ValidationIssue::MissingRange(p) => format!("property {} has no range", name(*p)),
            ValidationIssue::ReflexiveSubclass(c) => {
                format!("class {} subsumes itself", name(*c))
            }
        }
    }

    /// Coarse severity: cycles and malformed statements are errors,
    /// missing declarations are warnings.
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            ValidationIssue::SubsumptionCycle(_)
                | ValidationIssue::LiteralSubject(_)
                | ValidationIssue::LiteralPredicate(_)
                | ValidationIssue::ReflexiveSubclass(_)
        )
    }
}

/// Audit one snapshot. Deterministic: issues are sorted by kind then
/// term order.
pub fn validate_snapshot(
    store: &TripleStore,
    view: &SchemaView,
    vocab: &Vocab,
    interner: &TermInterner,
) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();

    // Malformed statements: literals in subject/predicate position.
    for triple in store.iter() {
        if interner
            .try_resolve(triple.s)
            .is_some_and(evorec_kb::Term::is_literal)
        {
            issues.push(ValidationIssue::LiteralSubject(triple));
        }
        if interner
            .try_resolve(triple.p)
            .is_some_and(evorec_kb::Term::is_literal)
        {
            issues.push(ValidationIssue::LiteralPredicate(triple));
        }
    }

    // Reflexive subsumption and cycles.
    let mut children_of: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
    for &(child, parent) in view.subclass_edges() {
        if child == parent {
            issues.push(ValidationIssue::ReflexiveSubclass(child));
        } else {
            children_of.entry(parent).or_default().push(child);
        }
    }
    issues.extend(find_cycles(view));

    // Property declarations.
    let mut props: Vec<TermId> = view.properties().iter().copied().collect();
    props.sort_unstable();
    for p in props {
        let declared = store
            .match_pattern(evorec_kb::TriplePattern::new(
                Some(p),
                Some(vocab.rdf_type),
                None,
            ))
            .next()
            .is_some()
            || !view.domains_of(p).is_empty()
            || !view.ranges_of(p).is_empty();
        if !declared {
            issues.push(ValidationIssue::UndeclaredProperty(p));
            continue;
        }
        if view.domains_of(p).is_empty() {
            issues.push(ValidationIssue::MissingDomain(p));
        }
        if view.ranges_of(p).is_empty() {
            issues.push(ValidationIssue::MissingRange(p));
        }
    }

    issues
}

/// Cycle detection over the subsumption graph (child → parent edges),
/// iterative colouring DFS.
fn find_cycles(view: &SchemaView) -> Vec<ValidationIssue> {
    #[derive(Copy, Clone, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut classes: Vec<TermId> = view.classes().iter().copied().collect();
    classes.sort_unstable();
    let mut colour: FxHashMap<TermId, Colour> =
        classes.iter().map(|&c| (c, Colour::White)).collect();
    let mut issues = Vec::new();
    let mut reported: FxHashSet<TermId> = FxHashSet::default();

    for &start in &classes {
        if colour[&start] != Colour::White {
            continue;
        }
        // Iterative DFS along parent edges with an explicit path stack.
        let mut path: Vec<(TermId, usize)> = vec![(start, 0)];
        *colour.get_mut(&start).expect("known class") = Colour::Grey;
        while let Some(&mut (node, ref mut next_ix)) = path.last_mut() {
            let parents = view.parents_of(node);
            if *next_ix >= parents.len() {
                *colour.get_mut(&node).expect("known class") = Colour::Black;
                path.pop();
                continue;
            }
            let parent = parents[*next_ix];
            *next_ix += 1;
            if parent == node {
                continue; // reported as ReflexiveSubclass elsewhere
            }
            match colour.get(&parent).copied().unwrap_or(Colour::Black) {
                Colour::White => {
                    *colour.get_mut(&parent).expect("known class") = Colour::Grey;
                    path.push((parent, 0));
                }
                Colour::Grey => {
                    // Found a back edge: extract the cycle from the path.
                    let pos = path
                        .iter()
                        .position(|&(n, _)| n == parent)
                        .expect("grey node is on the path");
                    let cycle: Vec<TermId> = path[pos..].iter().map(|&(n, _)| n).collect();
                    if reported.insert(cycle[0]) {
                        issues.push(ValidationIssue::SubsumptionCycle(cycle));
                    }
                }
                Colour::Black => {}
            }
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::{Graph, Term};

    fn clean_graph() -> Graph {
        let mut g = Graph::new();
        let a = g.iri("http://x/A");
        let b = g.iri("http://x/B");
        let p = g.iri("http://x/p");
        let v = *g.vocab();
        g.insert(Triple::new(a, v.rdfs_subclassof, b));
        g.insert(Triple::new(p, v.rdf_type, v.owl_object_property));
        g.insert(Triple::new(p, v.rdfs_domain, a));
        g.insert(Triple::new(p, v.rdfs_range, b));
        g
    }

    fn validate(g: &Graph) -> Vec<ValidationIssue> {
        validate_snapshot(g.store(), &g.schema(), g.vocab(), g.interner())
    }

    #[test]
    fn clean_snapshot_has_no_issues() {
        let g = clean_graph();
        assert!(validate(&g).is_empty(), "{:?}", validate(&g));
    }

    #[test]
    fn detects_subsumption_cycle() {
        let mut g = clean_graph();
        let a = g.iri("http://x/A");
        let b = g.iri("http://x/B");
        let c = g.iri("http://x/C");
        let v = *g.vocab();
        g.insert(Triple::new(b, v.rdfs_subclassof, c));
        g.insert(Triple::new(c, v.rdfs_subclassof, a));
        let issues = validate(&g);
        let cycle = issues
            .iter()
            .find(|i| matches!(i, ValidationIssue::SubsumptionCycle(_)))
            .expect("cycle found");
        assert!(cycle.is_error());
        if let ValidationIssue::SubsumptionCycle(nodes) = cycle {
            assert_eq!(nodes.len(), 3);
        }
        assert!(cycle.describe(g.interner()).contains('⊑'));
    }

    #[test]
    fn detects_reflexive_subclass() {
        let mut g = clean_graph();
        let a = g.iri("http://x/A");
        let v = *g.vocab();
        g.insert(Triple::new(a, v.rdfs_subclassof, a));
        let issues = validate(&g);
        assert!(issues.contains(&ValidationIssue::ReflexiveSubclass(a)));
        // The reflexive edge must not be double-reported as a cycle.
        assert!(
            !issues
                .iter()
                .any(|i| matches!(i, ValidationIssue::SubsumptionCycle(_))),
            "{issues:?}"
        );
    }

    #[test]
    fn detects_literal_misuse() {
        let mut g = clean_graph();
        let lit = g.interner_mut().intern(Term::literal("oops"));
        let a = g.iri("http://x/A");
        let p = g.iri("http://x/p");
        g.insert(Triple::new(lit, p, a));
        g.insert(Triple::new(a, lit, a));
        let issues = validate(&g);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::LiteralSubject(_))));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::LiteralPredicate(_))));
    }

    #[test]
    fn detects_missing_domain_and_range() {
        let mut g = clean_graph();
        let q = g.iri("http://x/q");
        let v = *g.vocab();
        g.insert(Triple::new(q, v.rdf_type, v.owl_object_property));
        let issues = validate(&g);
        assert!(issues.contains(&ValidationIssue::MissingDomain(q)));
        assert!(issues.contains(&ValidationIssue::MissingRange(q)));
        assert!(!ValidationIssue::MissingDomain(q).is_error(), "warning only");
    }

    #[test]
    fn detects_undeclared_property_in_use() {
        let mut g = clean_graph();
        let a = g.iri("http://x/A");
        let b = g.iri("http://x/B");
        let v = *g.vocab();
        // Type two instances and connect them with an undeclared
        // predicate; SchemaView adopts it, the validator flags it.
        let x = g.iri("http://x/x");
        let y = g.iri("http://x/y");
        g.insert(Triple::new(x, v.rdf_type, a));
        g.insert(Triple::new(y, v.rdf_type, b));
        let mystery = g.iri("http://x/mystery");
        g.insert(Triple::new(x, mystery, y));
        let issues = validate(&g);
        assert!(issues.contains(&ValidationIssue::UndeclaredProperty(mystery)));
    }

    #[test]
    fn quality_drift_is_measurable_across_versions() {
        // The curator story: count issues before and after a bad edit.
        let g0 = clean_graph();
        let mut g1 = g0.clone();
        let a = g1.iri("http://x/A");
        let b = g1.iri("http://x/B");
        let v = *g1.vocab();
        g1.insert(Triple::new(b, v.rdfs_subclassof, a)); // A ⊑ B ⊑ A cycle
        let before = validate(&g0).len();
        let after = validate(&g1).len();
        assert!(after > before, "bad edit must raise the issue count");
    }

    #[test]
    fn descriptions_render_for_all_kinds() {
        let g = clean_graph();
        let a = g.interner().lookup_iri("http://x/A").unwrap();
        for issue in [
            ValidationIssue::SubsumptionCycle(vec![a]),
            ValidationIssue::UndeclaredProperty(a),
            ValidationIssue::MissingDomain(a),
            ValidationIssue::MissingRange(a),
            ValidationIssue::ReflexiveSubclass(a),
        ] {
            assert!(!issue.describe(g.interner()).is_empty());
        }
    }
}
