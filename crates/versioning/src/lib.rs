//! # evorec-versioning — versioned knowledge bases, deltas, provenance
//!
//! The dynamicity substrate under the evolution-measure recommender
//! (ICDE'17 reproduction). Provides:
//!
//! - [`VersionedStore`] — a linear snapshot history over one shared
//!   interner, with memoised pairwise deltas and schema views;
//! - [`LowLevelDelta`] — δ⁺/δ⁻ triple sets with apply/invert/compose and
//!   the per-term restriction δ(n) of the paper's §II(a);
//! - [`ChangeSet`] / [`Change`] — high-level change detection after
//!   Roussakis et al. (ISWC 2015), the paper's reference \[11\];
//! - [`ProvenanceLedger`] — who/when/why capture for the transparency
//!   perspective (§III(b));
//! - [`Archive`] / [`ArchivePolicy`] — archiving policies after
//!   Stefanidis et al. (ER 2014), the paper's reference \[13\];
//! - [`EpochRing`] / [`EpochEntry`] — a bounded ring of per-epoch
//!   deltas, the composition substrate serving windows advance over
//!   instead of re-diffing snapshots;
//! - [`Timeline`] / [`Trend`] — per-term change series over whole
//!   histories ("observe changes trends", §I);
//! - [`codec`] — a compact delta wire format after Cloran & Irwin,
//!   the paper's reference \[2\].

#![warn(missing_docs)]

mod archive;
mod changes;
pub mod codec;
mod delta;
mod provenance;
mod ring;
mod store;
mod timeline;
mod validate;
mod version;

pub use archive::{Archive, ArchivePolicy, ArchiveStats};
pub use changes::{describe_all, Change, ChangeKind, ChangeSet};
pub use codec::{decode_delta, encode_delta, CodecError};
pub use delta::LowLevelDelta;
pub use provenance::{Justification, ProvenanceLedger, ProvenanceRecord, RecordId};
pub use ring::{EpochEntry, EpochRing};
pub use store::VersionedStore;
pub use timeline::{classify_trend, Timeline, Trend};
pub use validate::{validate_snapshot, ValidationIssue};
pub use version::{VersionId, VersionInfo};
