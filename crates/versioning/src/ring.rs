//! A bounded ring of per-epoch deltas — the composition substrate for
//! sliding serving windows.
//!
//! The streaming layer commits one normalised [`LowLevelDelta`] per
//! epoch. A serving window spanning several epochs never needs to
//! re-diff snapshots: its delta is the *composition* of the per-epoch
//! deltas it covers, advanced in O(|evicted ε| + |new ε|) by composing
//! the newest epoch onto the tail and stripping the oldest epoch off
//! the head ([`LowLevelDelta::invert`] then compose). The ring keeps
//! the recent epochs those advances draw from, bounded so an unbounded
//! stream cannot grow it without limit.

use crate::delta::LowLevelDelta;
use crate::version::VersionId;
use std::collections::VecDeque;
use std::sync::Arc;

/// One committed epoch: the step `from → to` and its normalised delta,
/// stamped with the store's logical commit timestamp.
#[derive(Clone, Debug)]
pub struct EpochEntry {
    /// The head before the epoch committed.
    pub from: VersionId,
    /// The version the epoch committed.
    pub to: VersionId,
    /// The epoch's delta — exactly `compute(snapshot(from), snapshot(to))`.
    pub delta: Arc<LowLevelDelta>,
    /// The store's logical timestamp of `to`.
    pub timestamp: u64,
}

/// A bounded FIFO of consecutive [`EpochEntry`]s, oldest first.
#[derive(Debug)]
pub struct EpochRing {
    entries: VecDeque<EpochEntry>,
    capacity: usize,
}

impl EpochRing {
    /// A ring retaining at most `capacity` epochs (clamped to ≥ 1).
    pub fn new(capacity: usize) -> EpochRing {
        EpochRing {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Append the next epoch, evicting the oldest once over capacity.
    /// Returns the evicted entry, if any.
    ///
    /// # Panics
    /// Panics if `entry` does not extend the newest retained epoch
    /// (`entry.from` must equal the newest entry's `to`): the ring
    /// models one linear epoch stream, and composing across a gap
    /// would silently produce a wrong window delta.
    pub fn push(&mut self, entry: EpochEntry) -> Option<EpochEntry> {
        if let Some(newest) = self.entries.back() {
            assert_eq!(
                newest.to, entry.from,
                "epoch {} → {} does not extend the ring head {}",
                entry.from, entry.to, newest.to
            );
        }
        self.entries.push_back(entry);
        if self.entries.len() > self.capacity {
            self.entries.pop_front()
        } else {
            None
        }
    }

    /// Number of retained epochs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no epoch is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained epochs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &EpochEntry> {
        self.entries.iter()
    }

    /// The oldest retained epoch.
    pub fn oldest(&self) -> Option<&EpochEntry> {
        self.entries.front()
    }

    /// The newest retained epoch.
    pub fn newest(&self) -> Option<&EpochEntry> {
        self.entries.back()
    }

    /// The retained epoch that begins at `from`, if any. A sliding
    /// window strips its evicted oldest epoch through this lookup
    /// (`entry.delta.invert()` composed onto the window's delta).
    pub fn entry_starting_at(&self, from: VersionId) -> Option<&EpochEntry> {
        // Entries are consecutive: binary-search by start version.
        let ix = self
            .entries
            .binary_search_by(|e| e.from.cmp(&from))
            .ok()?;
        Some(&self.entries[ix])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::{TermId, Triple};

    fn tr(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(
            TermId::from_u32(s),
            TermId::from_u32(p),
            TermId::from_u32(o),
        )
    }

    fn v(n: u32) -> VersionId {
        VersionId::from_u32(n)
    }

    /// A chain of single-triple epochs V0 → V1 → …, each adding one
    /// fresh triple.
    fn chain(epochs: u32) -> EpochRing {
        let mut ring = EpochRing::new(usize::MAX >> 1);
        for i in 0..epochs {
            ring.push(EpochEntry {
                from: v(i),
                to: v(i + 1),
                delta: Arc::new(LowLevelDelta::from_parts([tr(i, 100, i + 1)], [])),
                timestamp: u64::from(i) + 1,
            });
        }
        ring
    }

    #[test]
    fn push_evicts_fifo_at_capacity() {
        let mut ring = EpochRing::new(2);
        let mk = |i: u32| EpochEntry {
            from: v(i),
            to: v(i + 1),
            delta: Arc::new(LowLevelDelta::new()),
            timestamp: u64::from(i),
        };
        assert!(ring.push(mk(0)).is_none());
        assert!(ring.push(mk(1)).is_none());
        let evicted = ring.push(mk(2)).expect("over capacity");
        assert_eq!(evicted.from, v(0));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.oldest().unwrap().from, v(1));
        assert_eq!(ring.newest().unwrap().to, v(3));
        assert!(!ring.is_empty());
        assert_eq!(ring.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "does not extend")]
    fn push_rejects_gaps() {
        let mut ring = EpochRing::new(4);
        let mk = |from: u32, to: u32| EpochEntry {
            from: v(from),
            to: v(to),
            delta: Arc::new(LowLevelDelta::new()),
            timestamp: 0,
        };
        ring.push(mk(0, 1));
        ring.push(mk(2, 3));
    }

    #[test]
    fn entry_lookup_by_start() {
        let ring = chain(4);
        assert_eq!(ring.entry_starting_at(v(2)).unwrap().to, v(3));
        assert!(ring.entry_starting_at(v(9)).is_none());
        assert_eq!(ring.iter().count(), 4);
        assert_eq!(ring.oldest().unwrap().from, v(0));
        assert_eq!(ring.newest().unwrap().to, v(4));
    }
}
