//! The bounded in-memory ring TSDB with multi-resolution
//! downsampling.
//!
//! Every series keeps a **raw ring** of recent `(t, value)` points
//! plus one **rollup ring** per configured resolution. A rollup
//! bucket covers the half-open time window
//! `[start, start + width)` and aggregates *every* raw point that
//! fell in it — including points the raw ring has since evicted, so
//! coarse history outlives fine history (the classic RRD shape).
//! Buckets are built incrementally: the point stream folds into the
//! level's one *open* bucket, which seals into the ring the moment a
//! point at or past the bucket's end arrives. Aggregation is pure
//! integer/float fold over the point stream, so with a deterministic
//! clock the whole store — raw rings, rollups, eviction counters —
//! is bit-identical across replays.
//!
//! Memory is fixed by construction: `raw_capacity` points and
//! `capacity` buckets per level per series, and at most
//! `max_series` series per store (late arrivals are counted, not
//! admitted).

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One raw observation.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct RawPoint {
    /// Clock reading when the point was recorded.
    pub t_nanos: u64,
    /// The observed value.
    pub value: f64,
}

/// One downsampled bucket: the order-free aggregates of every raw
/// point in `[start_nanos, start_nanos + width_nanos)`, plus the
/// order-dependent `first`/`last` (well-defined because points arrive
/// in clock order).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Rollup {
    /// Window start (inclusive), aligned to a multiple of the width.
    pub start_nanos: u64,
    /// Window width.
    pub width_nanos: u64,
    /// Raw points absorbed.
    pub count: u64,
    /// Sum of absorbed values.
    pub sum: f64,
    /// Smallest absorbed value.
    pub min: f64,
    /// Largest absorbed value.
    pub max: f64,
    /// First absorbed value (oldest).
    pub first: f64,
    /// Last absorbed value (newest).
    pub last: f64,
}

impl Rollup {
    fn open(start_nanos: u64, width_nanos: u64, value: f64) -> Rollup {
        Rollup {
            start_nanos,
            width_nanos,
            count: 1,
            sum: value,
            min: value,
            max: value,
            first: value,
            last: value,
        }
    }

    fn absorb(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
    }

    /// Window end (exclusive).
    pub fn end_nanos(&self) -> u64 {
        self.start_nanos.saturating_add(self.width_nanos)
    }

    /// Mean of the absorbed values (zero for an impossible empty
    /// bucket — buckets open on their first point).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One rollup resolution: `width_nanos`-wide buckets, at most
/// `capacity` retained.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RollupSpec {
    /// Bucket width. Zero-width specs are clamped to 1ns at use.
    pub width_nanos: u64,
    /// Sealed buckets retained per series.
    pub capacity: usize,
}

/// Retention shape shared by every series in a store.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TsdbConfig {
    /// Raw points retained per series.
    pub raw_capacity: usize,
    /// Downsampling levels, typically coarsening left to right.
    pub rollups: Vec<RollupSpec>,
    /// Hard cap on distinct series; late arrivals are dropped and
    /// counted.
    pub max_series: usize,
}

impl TsdbConfig {
    /// A retention shape proportioned to a scrape cadence: 240 raw
    /// points, an 8-scrape mid ring and a 64-scrape coarse ring of
    /// 120 buckets each — with a 1s cadence that is 4 minutes raw,
    /// 16 minutes mid, 2 hours coarse, all in fixed memory.
    pub fn for_cadence(cadence_nanos: u64) -> TsdbConfig {
        let cadence = cadence_nanos.max(1);
        TsdbConfig {
            raw_capacity: 240,
            rollups: vec![
                RollupSpec {
                    width_nanos: cadence.saturating_mul(8),
                    capacity: 120,
                },
                RollupSpec {
                    width_nanos: cadence.saturating_mul(64),
                    capacity: 120,
                },
            ],
            max_series: 512,
        }
    }
}

impl Default for TsdbConfig {
    fn default() -> TsdbConfig {
        TsdbConfig::for_cadence(1_000_000_000)
    }
}

/// One rollup ring: the sealed buckets plus the open one.
#[derive(Clone, Debug)]
struct LevelBuf {
    width_nanos: u64,
    capacity: usize,
    sealed: VecDeque<Rollup>,
    open: Option<Rollup>,
    evicted: u64,
}

impl LevelBuf {
    fn new(spec: RollupSpec) -> LevelBuf {
        LevelBuf {
            width_nanos: spec.width_nanos.max(1),
            capacity: spec.capacity.max(1),
            sealed: VecDeque::new(),
            open: None,
            evicted: 0,
        }
    }

    fn record(&mut self, t_nanos: u64, value: f64) {
        let start = t_nanos - t_nanos % self.width_nanos;
        match &mut self.open {
            Some(bucket) if start <= bucket.start_nanos => {
                // Same window (or a same-scrape point landing at the
                // boundary reading): fold in.
                bucket.absorb(value);
            }
            Some(_) => {
                // The point opened a newer window: seal and reopen.
                let Some(done) = self.open.take() else { return };
                if self.sealed.len() == self.capacity {
                    self.sealed.pop_front();
                    self.evicted += 1;
                }
                self.sealed.push_back(done);
                self.open = Some(Rollup::open(start, self.width_nanos, value));
            }
            None => {
                self.open = Some(Rollup::open(start, self.width_nanos, value));
            }
        }
    }

    /// Sealed buckets oldest first, then the open bucket.
    fn rollups(&self) -> Vec<Rollup> {
        let mut out: Vec<Rollup> = self.sealed.iter().copied().collect();
        if let Some(open) = self.open {
            out.push(open);
        }
        out
    }
}

/// One series: raw ring plus rollup rings.
#[derive(Clone, Debug)]
pub struct SeriesBuf {
    raw: VecDeque<RawPoint>,
    raw_capacity: usize,
    raw_evicted: u64,
    levels: Vec<LevelBuf>,
}

impl SeriesBuf {
    /// An empty series shaped by `config`.
    pub fn new(config: &TsdbConfig) -> SeriesBuf {
        SeriesBuf {
            raw: VecDeque::new(),
            raw_capacity: config.raw_capacity.max(1),
            raw_evicted: 0,
            levels: config.rollups.iter().map(|s| LevelBuf::new(*s)).collect(),
        }
    }

    /// Record one point. Points must arrive in non-decreasing clock
    /// order (the collector guarantees it; an out-of-order point folds
    /// into the open bucket rather than reopening a sealed one).
    pub fn record(&mut self, t_nanos: u64, value: f64) {
        if self.raw.len() == self.raw_capacity {
            self.raw.pop_front();
            self.raw_evicted += 1;
        }
        self.raw.push_back(RawPoint { t_nanos, value });
        for level in &mut self.levels {
            level.record(t_nanos, value);
        }
    }

    /// The retained raw points, oldest first.
    pub fn raw_points(&self) -> Vec<RawPoint> {
        self.raw.iter().copied().collect()
    }

    /// The newest raw point.
    pub fn latest(&self) -> Option<RawPoint> {
        self.raw.back().copied()
    }

    /// Raw points evicted from the ring so far.
    pub fn raw_evicted(&self) -> u64 {
        self.raw_evicted
    }

    /// Number of rollup levels (mirrors the config).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The buckets of rollup level `level`, oldest first, open bucket
    /// last. Empty for an unknown level.
    pub fn rollups(&self, level: usize) -> Vec<Rollup> {
        self.levels.get(level).map(LevelBuf::rollups).unwrap_or_default()
    }

    /// Buckets evicted from rollup level `level` so far.
    pub fn rollups_evicted(&self, level: usize) -> u64 {
        self.levels.get(level).map(|l| l.evicted).unwrap_or(0)
    }

    /// Raw points with `t_nanos` in `[from, to]`, oldest first.
    pub fn points_between(&self, from: u64, to: u64) -> Vec<RawPoint> {
        self.raw
            .iter()
            .filter(|p| p.t_nanos >= from && p.t_nanos <= to)
            .copied()
            .collect()
    }
}

/// The store: a deterministic map of series key → [`SeriesBuf`],
/// bounded at `max_series`.
#[derive(Clone, Debug)]
pub struct SeriesStore {
    config: TsdbConfig,
    series: BTreeMap<String, SeriesBuf>,
    dropped_series: u64,
}

impl SeriesStore {
    /// An empty store shaped by `config`.
    pub fn new(config: TsdbConfig) -> SeriesStore {
        SeriesStore {
            config,
            series: BTreeMap::new(),
            dropped_series: 0,
        }
    }

    /// The store's retention shape.
    pub fn config(&self) -> &TsdbConfig {
        &self.config
    }

    /// Record one point under `key`, creating the series on first
    /// touch. A new key past the `max_series` budget is dropped and
    /// counted instead of admitted — the memory bound is hard.
    pub fn record(&mut self, key: &str, t_nanos: u64, value: f64) {
        if !self.series.contains_key(key) {
            if self.series.len() >= self.config.max_series {
                self.dropped_series += 1;
                return;
            }
            self.series
                .insert(key.to_string(), SeriesBuf::new(&self.config));
        }
        if let Some(buf) = self.series.get_mut(key) {
            buf.record(t_nanos, value);
        }
    }

    /// The series stored under `key`.
    pub fn get(&self, key: &str) -> Option<&SeriesBuf> {
        self.series.get(key)
    }

    /// All series keys, sorted.
    pub fn keys(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Iterate `(key, series)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SeriesBuf)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of admitted series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series has been admitted.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Record attempts refused by the `max_series` budget.
    pub fn dropped_series(&self) -> u64 {
        self.dropped_series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TsdbConfig {
        TsdbConfig {
            raw_capacity: 4,
            rollups: vec![RollupSpec {
                width_nanos: 10,
                capacity: 3,
            }],
            max_series: 2,
        }
    }

    #[test]
    fn raw_ring_wraps_and_counts_evictions() {
        let mut buf = SeriesBuf::new(&tiny());
        for t in 0..6u64 {
            buf.record(t, t as f64);
        }
        let points = buf.raw_points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].t_nanos, 2, "oldest two evicted");
        assert_eq!(buf.raw_evicted(), 2);
        assert_eq!(buf.latest().map(|p| p.t_nanos), Some(5));
    }

    #[test]
    fn rollups_seal_on_window_boundaries() {
        let mut buf = SeriesBuf::new(&tiny());
        buf.record(0, 1.0);
        buf.record(9, 3.0);
        // Still in [0, 10): one open bucket, nothing sealed.
        let r = buf.rollups(0);
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].count, r[0].sum), (2, 4.0));
        // t = 10 opens [10, 20) and seals [0, 10).
        buf.record(10, 5.0);
        let r = buf.rollups(0);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].start_nanos, 0);
        assert_eq!((r[0].first, r[0].last, r[0].min, r[0].max), (1.0, 3.0, 1.0, 3.0));
        assert_eq!(r[1].start_nanos, 10);
        assert_eq!(r[1].count, 1);
    }

    #[test]
    fn rollup_ring_evicts_oldest_sealed_bucket() {
        let mut buf = SeriesBuf::new(&tiny());
        // Five windows at width 10, capacity 3 sealed.
        for w in 0..5u64 {
            buf.record(w * 10, w as f64);
        }
        let r = buf.rollups(0);
        // Windows 0 and 10 evicted; 20, 30 sealed; 40 open.
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].start_nanos, 10, "window 0 evicted");
        assert_eq!(buf.rollups_evicted(0), 1);
        buf.record(50, 9.0);
        assert_eq!(buf.rollups_evicted(0), 2);
    }

    #[test]
    fn store_enforces_the_series_budget() {
        let mut store = SeriesStore::new(tiny());
        store.record("a", 0, 1.0);
        store.record("b", 0, 2.0);
        store.record("c", 0, 3.0);
        assert_eq!(store.len(), 2);
        assert_eq!(store.dropped_series(), 1);
        assert!(store.get("c").is_none());
        // Existing series keep recording under a full budget.
        store.record("a", 1, 4.0);
        assert_eq!(store.get("a").map(|b| b.raw_points().len()), Some(2));
        assert_eq!(store.keys(), vec!["a", "b"]);
    }

    #[test]
    fn points_between_is_inclusive() {
        let mut buf = SeriesBuf::new(&TsdbConfig::default());
        for t in [5u64, 10, 15, 20] {
            buf.record(t, t as f64);
        }
        let picked = buf.points_between(10, 15);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].t_nanos, 10);
        assert_eq!(picked[1].t_nanos, 15);
    }
}
