//! The background telemetry collector and its driver thread.
//!
//! [`TelemetryCollector::scrape_once`] is one pull of the whole obs
//! plane: snapshot the registry, diff against the previous scrape,
//! retain every series (plus derived `rate(…)` series for monotonic
//! counters) in the ring TSDB, evaluate the SLO health engine, and
//! append the interesting moments — scrape marks, counter
//! regressions, watermark advances, health transitions, fresh span
//! trees — to the flight recorder.
//!
//! Time comes from the pluggable obs [`Clock`], never from the OS
//! directly: drive a collector from a `LogicalClock` and the whole
//! pipeline — bucket boundaries, burn-rate windows, flight timeline —
//! replays bit-identically.
//!
//! # Locking
//!
//! The collector is itself a [`MetricsSource`] (it exposes
//! `evorec_telemetry_*` meta-metrics), and collecting those needs the
//! state lock. `scrape_once` therefore reads the clock and takes the
//! registry snapshot *before* locking state — taking them under the
//! lock would self-deadlock the moment the collector is registered on
//! the registry it scrapes. Flight events are staged in a local
//! buffer and appended after the state lock drops, so the collector
//! never holds two locks at once.

use crate::health::{HealthEngine, HealthReport, HealthTransition, SloRule};
use crate::recorder::{escaped, FlightEvent, FlightRecorder};
use crate::tsdb::{RawPoint, Rollup, SeriesStore, TsdbConfig};
use evorec_obs::{Clock, MetricsRegistry, MetricsSnapshot, MetricsSource, Sample, Tracer};
use sched::sync::{Condvar, Mutex};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// How a collector scrapes and what it retains.
#[derive(Clone, Debug)]
pub struct CollectorConfig {
    /// Intended scrape cadence (informs default retention shape and
    /// SLO windows; the driver converts it to a wall timeout).
    pub cadence_nanos: u64,
    /// Retention shape for the ring TSDB.
    pub tsdb: TsdbConfig,
    /// SLO rules evaluated after every scrape.
    pub rules: Vec<SloRule>,
    /// Capture the tracer's most recent span tree each scrape.
    pub record_traces: bool,
}

impl CollectorConfig {
    /// A config scraping every `cadence_nanos` with matching
    /// retention, no rules, and trace capture on.
    pub fn for_cadence(cadence_nanos: u64) -> CollectorConfig {
        CollectorConfig {
            cadence_nanos: cadence_nanos.max(1),
            tsdb: TsdbConfig::for_cadence(cadence_nanos),
            rules: Vec::new(),
            record_traces: true,
        }
    }

    /// Replace the rule set.
    pub fn with_rules(mut self, rules: Vec<SloRule>) -> CollectorConfig {
        self.rules = rules;
        self
    }
}

impl Default for CollectorConfig {
    /// One-second cadence, default retention, no rules.
    fn default() -> CollectorConfig {
        CollectorConfig::for_cadence(1_000_000_000)
    }
}

/// What one scrape observed, returned by
/// [`TelemetryCollector::scrape_once`].
#[derive(Clone, Debug)]
pub struct ScrapeOutcome {
    /// Clock reading of the scrape.
    pub at_nanos: u64,
    /// Samples in the registry snapshot.
    pub samples: usize,
    /// Counter regressions flagged by the snapshot diff.
    pub regressions: usize,
    /// The health report of this evaluation.
    pub report: HealthReport,
    /// Status changes relative to the previous evaluation.
    pub transitions: Vec<HealthTransition>,
}

struct CollectorState {
    store: SeriesStore,
    engine: HealthEngine,
    previous: Option<MetricsSnapshot>,
    last_scrape_nanos: Option<u64>,
    last_report: Option<HealthReport>,
    last_epochs: Option<u64>,
    last_trace_root: Option<u64>,
    scrapes: u64,
    regressions_total: u64,
}

/// The periodic scraper: registry snapshots in, ring TSDB + health
/// reports + flight events out. Share it by `Arc`; scraping and all
/// accessors take `&self`.
pub struct TelemetryCollector {
    registry: Arc<MetricsRegistry>,
    clock: Arc<dyn Clock>,
    tracer: Option<Arc<Tracer>>,
    recorder: Arc<FlightRecorder>,
    config: CollectorConfig,
    state: Mutex<CollectorState>,
}

impl TelemetryCollector {
    /// A collector scraping `registry` on `clock` with `config`.
    pub fn new(
        registry: Arc<MetricsRegistry>,
        clock: Arc<dyn Clock>,
        config: CollectorConfig,
    ) -> TelemetryCollector {
        let store = SeriesStore::new(config.tsdb.clone());
        let engine = HealthEngine::new(config.rules.clone());
        TelemetryCollector {
            registry,
            clock,
            tracer: None,
            recorder: Arc::new(FlightRecorder::new()),
            config,
            state: Mutex::new(CollectorState {
                store,
                engine,
                previous: None,
                last_scrape_nanos: None,
                last_report: None,
                last_epochs: None,
                last_trace_root: None,
                scrapes: 0,
                regressions_total: 0,
            }),
        }
    }

    /// Capture span trees from `tracer` on each scrape.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> TelemetryCollector {
        self.tracer = Some(tracer);
        self
    }

    /// Use `recorder` instead of a private one (to share a ring, or
    /// to install the panic hook on it before attaching).
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> TelemetryCollector {
        self.recorder = recorder;
        self
    }

    /// The collector's configuration.
    pub fn config(&self) -> &CollectorConfig {
        &self.config
    }

    /// The flight recorder this collector appends to.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Scrape now: snapshot → diff → retain → evaluate → record.
    pub fn scrape_once(&self) -> ScrapeOutcome {
        // Clock, snapshot, and trace are read BEFORE the state lock —
        // see the module docs on locking.
        let now = self.clock.now_nanos();
        let snapshot = self.registry.snapshot();
        let trace = match (&self.tracer, self.config.record_traces) {
            (Some(tracer), true) => tracer.last_trace(),
            _ => Vec::new(),
        };

        let mut events: Vec<FlightEvent> = Vec::new();
        let mut trace_to_keep: Option<Vec<evorec_obs::FinishedSpan>> = None;

        let mut state = self.state.lock();
        let dt_nanos = state.last_scrape_nanos.map(|prev| now.saturating_sub(prev));

        // Diff against the previous scrape: derived rate() series for
        // monotonic counters, regression flags for the rest.
        let mut regressions = 0usize;
        if let Some(previous) = &state.previous {
            let diff = snapshot.diff(previous);
            regressions = diff.regressions.len();
            let mut rates: Vec<(String, f64)> = Vec::new();
            if let Some(dt) = dt_nanos {
                if dt > 0 {
                    for delta in &diff.deltas {
                        if delta.monotonic {
                            let per_second = delta.delta() * 1e9 / dt as f64;
                            rates.push((format!("rate({})", delta.key), per_second));
                        }
                    }
                }
            }
            for (key, value) in rates {
                state.store.record(&key, now, value);
            }
            for regression in &diff.regressions {
                events.push(FlightEvent::Regression {
                    at_nanos: now,
                    key: regression.key.clone(),
                    previous: regression.previous,
                    current: regression.current,
                });
            }
        }

        // Retain every scraped series under its series key.
        for sample in &snapshot.samples {
            let key = sample.series_key();
            let value = sample.value.as_f64();
            state.store.record(&key, now, value);
        }

        // Ingest watermark: the stream plane's committed-epoch
        // frontier (window-manager epochs as a fallback when no
        // pipeline is attached), noted only when it advances.
        let epochs = snapshot
            .value(crate::defaults::STREAM_EPOCHS_SERIES)
            .or_else(|| snapshot.value(crate::defaults::WINDOWS_EPOCHS_SERIES));
        if let Some(epochs) = epochs {
            if state.last_epochs != Some(epochs) {
                let head_version = snapshot
                    .value(crate::defaults::STREAM_HEAD_SERIES)
                    .unwrap_or(0);
                events.push(FlightEvent::Watermark {
                    at_nanos: now,
                    epochs,
                    head_version,
                });
                state.last_epochs = Some(epochs);
            }
        }

        // Evaluate health over the freshly-extended store.
        let CollectorState { store, engine, .. } = &mut *state;
        let (report, transitions) = engine.evaluate(store, now);
        for transition in &transitions {
            events.push(FlightEvent::Transition {
                at_nanos: transition.at_nanos,
                component: transition.component.clone(),
                from: transition.from,
                to: transition.to,
                reasons: transition.reasons.clone(),
            });
        }

        // A fresh span tree (root id unseen) is worth retaining.
        if !trace.is_empty() {
            let root_id = trace
                .iter()
                .find(|s| s.parent == 0)
                .map(|s| s.id)
                .or_else(|| trace.first().map(|s| s.id));
            if root_id.is_some() && state.last_trace_root != root_id {
                state.last_trace_root = root_id;
                trace_to_keep = Some(trace);
            }
        }

        events.insert(
            0,
            FlightEvent::Scrape {
                at_nanos: now,
                samples: snapshot.samples.len() as u64,
                series: state.store.len() as u64,
                regressions: regressions as u64,
            },
        );

        state.scrapes += 1;
        state.regressions_total += regressions as u64;
        state.previous = Some(snapshot);
        state.last_scrape_nanos = Some(now);
        state.last_report = Some(report.clone());
        let samples = state
            .previous
            .as_ref()
            .map(|s| s.samples.len())
            .unwrap_or(0);
        drop(state);

        // Recorder appends happen outside the state lock.
        self.recorder.extend(events);
        if let Some(trace) = trace_to_keep {
            self.recorder.record_trace(trace);
        }

        ScrapeOutcome {
            at_nanos: now,
            samples,
            regressions,
            report,
            transitions,
        }
    }

    /// Scrapes performed so far.
    pub fn scrapes(&self) -> u64 {
        self.state.lock().scrapes
    }

    /// The retained series keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.state
            .lock()
            .store
            .keys()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// The raw retained points of `key`, oldest first.
    pub fn raw_points(&self, key: &str) -> Vec<RawPoint> {
        self.state
            .lock()
            .store
            .get(key)
            .map(|buf| buf.raw_points())
            .unwrap_or_default()
    }

    /// The rollups of `key` at resolution `level`, oldest first
    /// (sealed buckets then the open one).
    pub fn rollups(&self, key: &str, level: usize) -> Vec<Rollup> {
        self.state
            .lock()
            .store
            .get(key)
            .map(|buf| buf.rollups(level))
            .unwrap_or_default()
    }

    /// The newest retained point of `key`.
    pub fn latest(&self, key: &str) -> Option<RawPoint> {
        self.state.lock().store.get(key).and_then(|buf| buf.latest())
    }

    /// The health report of the most recent scrape.
    pub fn last_report(&self) -> Option<HealthReport> {
        self.state.lock().last_report.clone()
    }

    /// The full diagnostic bundle as one JSON object: generation
    /// time, per-component health, every retained series (latest
    /// value + raw points), and the flight-recorder dump.
    pub fn dump_json(&self) -> String {
        let state = self.state.lock();
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"generated_at\":{},\"scrapes\":{}",
            state.last_scrape_nanos.unwrap_or(0),
            state.scrapes,
        );
        out.push_str(",\"health\":");
        match &state.last_report {
            Some(report) => out.push_str(&report.render_json()),
            None => out.push_str("{\"overall\":\"ok\",\"components\":{}}"),
        }
        out.push_str(",\"series\":{");
        for (i, (key, buf)) in state.store.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":[", escaped(key));
            for (j, point) in buf.raw_points().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", point.t_nanos, point.value);
            }
            out.push(']');
        }
        out.push('}');
        drop(state);
        let _ = write!(out, ",\"flight\":{}}}", self.recorder.dump_json());
        out
    }
}

impl MetricsSource for TelemetryCollector {
    /// The collector's own meta-metrics (`evorec_telemetry_*`).
    fn collect(&self, out: &mut Vec<Sample>) {
        let state = self.state.lock();
        out.push(Sample::counter(
            "evorec_telemetry_scrapes_total",
            state.scrapes,
        ));
        out.push(Sample::gauge(
            "evorec_telemetry_series",
            state.store.len() as u64,
        ));
        out.push(Sample::counter(
            "evorec_telemetry_counter_regressions_total",
            state.regressions_total,
        ));
        out.push(Sample::counter(
            "evorec_telemetry_dropped_series_total",
            state.store.dropped_series(),
        ));
        if let Some(report) = &state.last_report {
            for (component, health) in &report.components {
                out.push(
                    Sample::gauge("evorec_telemetry_health_status", health.status.severity())
                        .with_label("component", component),
                );
            }
        }
    }
}

struct DriverShared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// A background thread scraping a collector on a fixed wall cadence.
/// Stop it with [`shutdown`](TelemetryDriver::shutdown); dropping it
/// stops it too.
pub struct TelemetryDriver {
    shared: Arc<DriverShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryDriver {
    /// Start scraping `collector` every `interval` (first scrape one
    /// interval in). The wait is a condvar timeout, not a sleep, so
    /// shutdown never blocks for a full interval.
    pub fn start(collector: Arc<TelemetryCollector>, interval: Duration) -> TelemetryDriver {
        let shared = Arc::new(DriverShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || loop {
            let mut stopped = thread_shared.stop.lock();
            loop {
                if *stopped {
                    return;
                }
                let (guard, timed_out) = thread_shared.wake.wait_timeout(stopped, interval);
                stopped = guard;
                if timed_out {
                    break;
                }
            }
            if *stopped {
                return;
            }
            drop(stopped);
            let _ = collector.scrape_once();
        });
        TelemetryDriver {
            shared,
            handle: Some(handle),
        }
    }

    /// Stop the scrape loop and join the thread.
    pub fn shutdown(&mut self) {
        *self.shared.stop.lock() = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}
