//! The workspace-standard SLO rule set.
//!
//! Each serving subsystem publishes its own objective constants in a
//! `slo` module next to the code that exports the series
//! (`evorec_stream::slo`, `evorec_core::slo`, `evorec_windows::slo`,
//! `evorec_adapt::slo`) — thresholds live with the subsystem that
//! owns the invariant, and this module merely assembles them into
//! [`SloRule`]s for a given scrape cadence. Attach them with
//! `CollectorConfig::for_cadence(c).with_rules(standard_rules(c))`.

use crate::health::{HealthStatus, Predicate, SeriesExpr, SloRule};

/// The stream pipeline's committed-epoch counter (watermark source).
pub const STREAM_EPOCHS_SERIES: &str = evorec_stream::slo::EPOCHS_SERIES;

/// The live head-version gauge (watermark detail).
pub const STREAM_HEAD_SERIES: &str = "evorec_stream_live_head_version";

/// The window manager's advanced-epoch counter (watermark fallback
/// and the downstream side of the epoch-lag objective).
pub const WINDOWS_EPOCHS_SERIES: &str = evorec_windows::slo::EPOCHS_SERIES;

/// The component names the standard rules roll up into.
pub const COMPONENTS: [&str; 4] = ["stream", "cache", "windows", "serving"];

/// The full default rule set for a collector scraping every
/// `cadence_nanos`:
///
/// * **stream** — `log_depth / log_capacity` saturation ceilings
///   (degraded, critical; thresholds from `evorec_stream::slo`);
/// * **cache** — recent hit-*rate* floor over the derived
///   `rate(evorec_cache_hits_total)` / `rate(evorec_cache_misses_total)`
///   series, so lifetime totals cannot mask a cold regression
///   (floor from `evorec_core::slo`);
/// * **windows** — epoch lag `stream_epochs − windows_epochs`
///   staleness ceilings (from `evorec_windows::slo`);
/// * **serving** — serve-stage p99 latency ceilings (from
///   `evorec_adapt::slo`, needs a registered `Tracer`).
///
/// Rules whose operand series are absent never trip (no data — no
/// alarm), so the set is safe to attach to a partially-instrumented
/// process.
pub fn standard_rules(cadence_nanos: u64) -> Vec<SloRule> {
    let saturation = || SeriesExpr::Ratio {
        left: evorec_stream::slo::QUEUE_DEPTH_SERIES.to_string(),
        right: evorec_stream::slo::QUEUE_CAPACITY_SERIES.to_string(),
    };
    let epoch_lag = || SeriesExpr::Diff {
        left: STREAM_EPOCHS_SERIES.to_string(),
        right: WINDOWS_EPOCHS_SERIES.to_string(),
    };
    let serve_p99 = || SeriesExpr::Series(evorec_adapt::slo::SERVE_P99_SERIES.to_string());
    vec![
        SloRule::standard(
            "queue-saturation",
            "stream",
            saturation(),
            Predicate::Above(evorec_stream::slo::SATURATION_DEGRADED),
            HealthStatus::Degraded,
            cadence_nanos,
        ),
        SloRule::standard(
            "queue-saturation-critical",
            "stream",
            saturation(),
            Predicate::Above(evorec_stream::slo::SATURATION_CRITICAL),
            HealthStatus::Critical,
            cadence_nanos,
        ),
        SloRule::standard(
            "cache-hit-rate",
            "cache",
            SeriesExpr::Fraction {
                part: format!("rate({})", evorec_core::slo::CACHE_HITS_SERIES),
                rest: format!("rate({})", evorec_core::slo::CACHE_MISSES_SERIES),
            },
            Predicate::Below(evorec_core::slo::HIT_RATE_FLOOR),
            HealthStatus::Degraded,
            cadence_nanos,
        ),
        SloRule::standard(
            "epoch-lag",
            "windows",
            epoch_lag(),
            Predicate::Above(evorec_windows::slo::EPOCH_LAG_DEGRADED),
            HealthStatus::Degraded,
            cadence_nanos,
        ),
        SloRule::standard(
            "epoch-lag-critical",
            "windows",
            epoch_lag(),
            Predicate::Above(evorec_windows::slo::EPOCH_LAG_CRITICAL),
            HealthStatus::Critical,
            cadence_nanos,
        ),
        SloRule::standard(
            "serve-p99",
            "serving",
            serve_p99(),
            Predicate::Above(evorec_adapt::slo::SERVE_P99_DEGRADED_NANOS),
            HealthStatus::Degraded,
            cadence_nanos,
        ),
        SloRule::standard(
            "serve-p99-critical",
            "serving",
            serve_p99(),
            Predicate::Above(evorec_adapt::slo::SERVE_P99_CRITICAL_NANOS),
            HealthStatus::Critical,
            cadence_nanos,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_rules_cover_every_component() {
        let rules = standard_rules(1_000_000_000);
        for component in COMPONENTS {
            assert!(
                rules.iter().any(|r| r.component == component),
                "no rule for {component}"
            );
        }
        // Every rule uses the workspace-standard burn windows.
        for rule in &rules {
            assert_eq!(rule.short_window_nanos, 3_000_000_000);
            assert_eq!(rule.long_window_nanos, 12_000_000_000);
            assert_eq!(rule.clear_after, 2);
        }
    }
}
