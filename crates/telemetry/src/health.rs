//! The declarative SLO / health engine.
//!
//! A rule names a series expression over the TSDB, a predicate, and a
//! **multi-window burn-rate** condition: the expression must breach
//! the predicate for at least `short_burn` of the points in the short
//! window *and* at least `long_burn` of the points in the long window
//! before the rule trips. The two windows play the classic roles —
//! the short one proves the problem is still happening, the long one
//! proves it is sustained rather than a blip — so a single bad scrape
//! cannot page and a slow-rolling breach cannot hide behind old good
//! data. Clearing is **hysteretic**: a tripped rule must see
//! `clear_after` consecutive clean evaluations before it releases,
//! which keeps a threshold-straddling series from flapping the
//! component's status every scrape.
//!
//! Evaluation is a pure function of the store contents, the rule set,
//! and the evaluation clock reading — under a logical clock, health
//! transitions are bit-identical across replays.

use crate::tsdb::SeriesStore;
use std::collections::BTreeMap;
use std::fmt;

/// Component condition, worst-of across its rules.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum HealthStatus {
    /// All objectives met.
    #[default]
    Ok,
    /// An objective is breached; service continues degraded.
    Degraded,
    /// A load-bearing objective is breached.
    Critical,
}

impl HealthStatus {
    /// Lower-case label (`ok` / `degraded` / `critical`).
    pub fn label(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Critical => "critical",
        }
    }

    /// Numeric severity for gauges: 0 / 1 / 2.
    pub fn severity(self) -> u64 {
        match self {
            HealthStatus::Ok => 0,
            HealthStatus::Degraded => 1,
            HealthStatus::Critical => 2,
        }
    }
}

impl fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A value stream derived from one or two stored series. Operands are
/// series keys (see `Sample::series_key`; rate series wrap the key as
/// `rate(<key>)`). Binary expressions join operands pointwise on the
/// scrape timestamp, so only instants where both sides were recorded
/// contribute.
#[derive(Clone, Debug)]
pub enum SeriesExpr {
    /// The raw points of one series.
    Series(String),
    /// `left / right` (points with a zero denominator are skipped).
    Ratio {
        /// Numerator series key.
        left: String,
        /// Denominator series key.
        right: String,
    },
    /// `left - right`.
    Diff {
        /// Minuend series key.
        left: String,
        /// Subtrahend series key.
        right: String,
    },
    /// `part / (part + rest)` — e.g. hit rate from hit and miss
    /// streams (instants where both are zero are skipped).
    Fraction {
        /// The counted-for series key.
        part: String,
        /// The counted-against series key.
        rest: String,
    },
}

impl SeriesExpr {
    /// Evaluate over `[from, to]`, returning `(t, value)` points in
    /// clock order.
    pub fn eval(&self, store: &SeriesStore, from: u64, to: u64) -> Vec<(u64, f64)> {
        let points = |key: &str| -> Vec<(u64, f64)> {
            store
                .get(key)
                .map(|buf| {
                    buf.points_between(from, to)
                        .into_iter()
                        .map(|p| (p.t_nanos, p.value))
                        .collect()
                })
                .unwrap_or_default()
        };
        match self {
            SeriesExpr::Series(key) => points(key),
            SeriesExpr::Ratio { left, right } => {
                join(&points(left), &points(right), |l, r| {
                    if r == 0.0 {
                        None
                    } else {
                        Some(l / r)
                    }
                })
            }
            SeriesExpr::Diff { left, right } => {
                join(&points(left), &points(right), |l, r| Some(l - r))
            }
            SeriesExpr::Fraction { part, rest } => {
                join(&points(part), &points(rest), |p, r| {
                    let total = p + r;
                    if total == 0.0 {
                        None
                    } else {
                        Some(p / total)
                    }
                })
            }
        }
    }

    /// A short human-readable rendering for reasons.
    fn describe(&self) -> String {
        match self {
            SeriesExpr::Series(key) => key.clone(),
            SeriesExpr::Ratio { left, right } => format!("{left} / {right}"),
            SeriesExpr::Diff { left, right } => format!("{left} - {right}"),
            SeriesExpr::Fraction { part, rest } => format!("{part} / ({part} + {rest})"),
        }
    }
}

/// Merge two timestamp-sorted point lists on equal timestamps.
fn join(
    left: &[(u64, f64)],
    right: &[(u64, f64)],
    op: impl Fn(f64, f64) -> Option<f64>,
) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let (lt, lv) = left[i];
        let (rt, rv) = right[j];
        if lt == rt {
            if let Some(v) = op(lv, rv) {
                out.push((lt, v));
            }
            i += 1;
            j += 1;
        } else if lt < rt {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Which side of the threshold breaches.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum Predicate {
    /// Breach when the value exceeds the threshold (ceilings:
    /// latency, saturation, lag).
    Above(f64),
    /// Breach when the value falls below the threshold (floors:
    /// hit rates).
    Below(f64),
}

impl Predicate {
    fn breaches(self, value: f64) -> bool {
        match self {
            Predicate::Above(t) => value > t,
            Predicate::Below(t) => value < t,
        }
    }

    fn describe(self) -> String {
        match self {
            Predicate::Above(t) => format!("above {t}"),
            Predicate::Below(t) => format!("below {t}"),
        }
    }
}

/// One declarative objective.
#[derive(Clone, Debug)]
pub struct SloRule {
    /// Rule name, shown in reasons (`queue-saturation`, …).
    pub name: String,
    /// The component this rule rolls up into (`stream`, `cache`, …).
    pub component: String,
    /// The observed value stream.
    pub expr: SeriesExpr,
    /// The breach condition on each point.
    pub predicate: Predicate,
    /// Fast-burn window width (nanoseconds back from evaluation
    /// time).
    pub short_window_nanos: u64,
    /// Slow-burn window width; at least the short window.
    pub long_window_nanos: u64,
    /// Minimum breaching fraction of short-window points.
    pub short_burn: f64,
    /// Minimum breaching fraction of long-window points.
    pub long_burn: f64,
    /// Consecutive clean evaluations required to clear (hysteresis).
    pub clear_after: u32,
    /// Status the component takes while this rule is tripped.
    pub severity: HealthStatus,
}

impl SloRule {
    /// A rule with the workspace-standard burn windows: trip when
    /// ≥ 2/3 of the last 3 scrape intervals *and* ≥ 1/2 of the last
    /// 12 breach; clear after 2 clean evaluations.
    pub fn standard(
        name: &str,
        component: &str,
        expr: SeriesExpr,
        predicate: Predicate,
        severity: HealthStatus,
        cadence_nanos: u64,
    ) -> SloRule {
        let cadence = cadence_nanos.max(1);
        SloRule {
            name: name.to_string(),
            component: component.to_string(),
            expr,
            predicate,
            short_window_nanos: cadence.saturating_mul(3),
            long_window_nanos: cadence.saturating_mul(12),
            short_burn: 0.66,
            long_burn: 0.5,
            clear_after: 2,
            severity,
        }
    }
}

/// Per-rule evaluation state.
#[derive(Clone, Debug, Default)]
struct RuleState {
    tripped: bool,
    clean_streak: u32,
    last_value: f64,
}

/// A status change for one component, as recorded by the flight
/// recorder.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HealthTransition {
    /// Evaluation clock reading.
    pub at_nanos: u64,
    /// The component that moved.
    pub component: String,
    /// Status before.
    pub from: HealthStatus,
    /// Status after.
    pub to: HealthStatus,
    /// The reasons active after the move (empty when recovering to
    /// Ok).
    pub reasons: Vec<String>,
}

/// One component's condition inside a report.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ComponentHealth {
    /// Worst-of status across the component's rules.
    pub status: HealthStatus,
    /// Human-readable reasons for every tripped rule.
    pub reasons: Vec<String>,
}

/// The per-component health rollup of one evaluation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HealthReport {
    /// Evaluation clock reading.
    pub at_nanos: u64,
    /// Component name → condition, every ruled component present.
    pub components: BTreeMap<String, ComponentHealth>,
}

impl HealthReport {
    /// The worst status across all components.
    pub fn overall(&self) -> HealthStatus {
        self.components
            .values()
            .map(|c| c.status)
            .max()
            .unwrap_or_default()
    }

    /// The status of `component` (Ok when unruled).
    pub fn status(&self, component: &str) -> HealthStatus {
        self.components
            .get(component)
            .map(|c| c.status)
            .unwrap_or_default()
    }

    /// Render the report as one JSON object:
    /// `{"overall":"ok","components":{"stream":{"status":"ok","reasons":[…]},…}}`.
    ///
    /// Byte-deterministic for a given report (components are a
    /// `BTreeMap`); both the collector's diagnostic bundle and the
    /// HTTP edge's `/health` endpoint serve exactly this rendering.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(out, "\"overall\":\"{}\"", self.overall().label());
        out.push_str(",\"components\":{");
        for (i, (component, health)) in self.components.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"status\":\"{}\",\"reasons\":[",
                crate::recorder::escaped(component),
                health.status.label(),
            );
            for (j, reason) in health.reasons.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", crate::recorder::escaped(reason));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// The rule evaluator: owns the rules and their hysteresis state.
#[derive(Debug, Default)]
pub struct HealthEngine {
    rules: Vec<SloRule>,
    states: Vec<RuleState>,
    last_status: BTreeMap<String, HealthStatus>,
}

impl HealthEngine {
    /// An engine over `rules`.
    pub fn new(rules: Vec<SloRule>) -> HealthEngine {
        let states = rules.iter().map(|_| RuleState::default()).collect();
        HealthEngine {
            rules,
            states,
            last_status: BTreeMap::new(),
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluate every rule against `store` at clock reading `now`,
    /// returning the report and any component transitions since the
    /// previous evaluation.
    pub fn evaluate(
        &mut self,
        store: &SeriesStore,
        now: u64,
    ) -> (HealthReport, Vec<HealthTransition>) {
        let mut report = HealthReport {
            at_nanos: now,
            ..Default::default()
        };
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let long_from = now.saturating_sub(rule.long_window_nanos);
            let short_from = now.saturating_sub(rule.short_window_nanos);
            let points = rule.expr.eval(store, long_from, now);
            let (mut long_hits, mut long_total) = (0usize, 0usize);
            let (mut short_hits, mut short_total) = (0usize, 0usize);
            for &(t, v) in &points {
                long_total += 1;
                let breach = rule.predicate.breaches(v);
                if breach {
                    long_hits += 1;
                }
                if t >= short_from {
                    short_total += 1;
                    if breach {
                        short_hits += 1;
                    }
                }
                state.last_value = v;
            }
            let burning = short_total > 0
                && long_total > 0
                && short_hits as f64 >= rule.short_burn * short_total as f64
                && long_hits as f64 >= rule.long_burn * long_total as f64;
            if burning {
                state.tripped = true;
                state.clean_streak = 0;
            } else if state.tripped {
                state.clean_streak += 1;
                if state.clean_streak >= rule.clear_after.max(1) {
                    state.tripped = false;
                    state.clean_streak = 0;
                }
            }
            let entry = report.components.entry(rule.component.clone()).or_default();
            if state.tripped {
                if rule.severity > entry.status {
                    entry.status = rule.severity;
                }
                entry.reasons.push(format!(
                    "{}: {} {} ({} = {:.4}, burn {}/{} short, {}/{} long)",
                    rule.name,
                    rule.predicate.describe(),
                    rule.severity.label(),
                    rule.expr.describe(),
                    state.last_value,
                    short_hits,
                    short_total,
                    long_hits,
                    long_total,
                ));
            }
        }
        let mut transitions = Vec::new();
        for (component, health) in &report.components {
            let previous = self
                .last_status
                .get(component)
                .copied()
                .unwrap_or_default();
            if previous != health.status {
                transitions.push(HealthTransition {
                    at_nanos: now,
                    component: component.clone(),
                    from: previous,
                    to: health.status,
                    reasons: health.reasons.clone(),
                });
            }
            self.last_status
                .insert(component.clone(), health.status);
        }
        (report, transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsdb::{RollupSpec, TsdbConfig};

    fn store() -> SeriesStore {
        SeriesStore::new(TsdbConfig {
            raw_capacity: 64,
            rollups: vec![RollupSpec {
                width_nanos: 10,
                capacity: 8,
            }],
            max_series: 16,
        })
    }

    fn ceiling_rule(clear_after: u32) -> SloRule {
        SloRule {
            name: "depth-ceiling".to_string(),
            component: "stream".to_string(),
            expr: SeriesExpr::Series("depth".to_string()),
            predicate: Predicate::Above(10.0),
            short_window_nanos: 3,
            long_window_nanos: 10,
            short_burn: 0.66,
            long_burn: 0.5,
            clear_after,
            severity: HealthStatus::Degraded,
        }
    }

    #[test]
    fn no_data_means_ok_not_tripped() {
        let mut engine = HealthEngine::new(vec![ceiling_rule(1)]);
        let (report, transitions) = engine.evaluate(&store(), 100);
        assert_eq!(report.status("stream"), HealthStatus::Ok);
        assert!(transitions.is_empty(), "Ok → Ok is not a transition");
        assert!(report.components.contains_key("stream"), "component listed");
    }

    #[test]
    fn burn_rate_needs_both_windows() {
        let mut engine = HealthEngine::new(vec![ceiling_rule(1)]);
        let mut s = store();
        // Long history healthy, breaches only at the tail: the short
        // window burns (3/4 = 75%) but the long window stays at 30%,
        // under its 50% bar — the slow burn vetoes the blip.
        for t in 1..=7u64 {
            s.record("depth", t, 1.0);
        }
        for t in 8..=10u64 {
            s.record("depth", t, 99.0);
        }
        let (report, _) = engine.evaluate(&s, 10);
        assert_eq!(report.status("stream"), HealthStatus::Ok);
        // Sustained breach fills both windows: trips.
        for t in 11..=20u64 {
            s.record("depth", t, 99.0);
        }
        let (report, transitions) = engine.evaluate(&s, 20);
        assert_eq!(report.status("stream"), HealthStatus::Degraded);
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].from, HealthStatus::Ok);
        assert_eq!(transitions[0].to, HealthStatus::Degraded);
        let reasons = &report.components["stream"].reasons;
        assert_eq!(reasons.len(), 1);
        assert!(reasons[0].contains("depth-ceiling"), "{reasons:?}");
    }

    #[test]
    fn hysteresis_clears_only_after_streak() {
        let mut engine = HealthEngine::new(vec![ceiling_rule(2)]);
        let mut s = store();
        for t in 1..=10u64 {
            s.record("depth", t, 99.0);
        }
        let (report, _) = engine.evaluate(&s, 10);
        assert_eq!(report.status("stream"), HealthStatus::Degraded);
        // Recovery: healthy points, but the first clean evaluation
        // must NOT clear (clear_after = 2).
        for t in 11..=30u64 {
            s.record("depth", t, 1.0);
        }
        let (report, transitions) = engine.evaluate(&s, 25);
        assert_eq!(report.status("stream"), HealthStatus::Degraded, "held by hysteresis");
        assert!(transitions.is_empty());
        let (report, transitions) = engine.evaluate(&s, 30);
        assert_eq!(report.status("stream"), HealthStatus::Ok);
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].to, HealthStatus::Ok);
        assert!(transitions[0].reasons.is_empty(), "recovered clean");
    }

    #[test]
    fn fraction_and_diff_join_on_timestamps() {
        let mut s = store();
        for t in [10u64, 20, 30] {
            s.record("hits", t, 3.0);
            s.record("misses", t, 1.0);
        }
        // A lone hits point with no miss twin must not contribute.
        s.record("hits", 40, 100.0);
        let frac = SeriesExpr::Fraction {
            part: "hits".to_string(),
            rest: "misses".to_string(),
        };
        let points = frac.eval(&s, 0, 100);
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|&(_, v)| v == 0.75));
        let diff = SeriesExpr::Diff {
            left: "hits".to_string(),
            right: "misses".to_string(),
        };
        let points = diff.eval(&s, 0, 100);
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|&(_, v)| v == 2.0));
    }

    #[test]
    fn worst_severity_wins_per_component() {
        let mut degraded = ceiling_rule(1);
        let mut critical = ceiling_rule(1);
        critical.name = "depth-hard-ceiling".to_string();
        critical.predicate = Predicate::Above(50.0);
        critical.severity = HealthStatus::Critical;
        degraded.predicate = Predicate::Above(10.0);
        let mut engine = HealthEngine::new(vec![degraded, critical]);
        let mut s = store();
        for t in 1..=10u64 {
            s.record("depth", t, 99.0);
        }
        let (report, _) = engine.evaluate(&s, 10);
        assert_eq!(report.status("stream"), HealthStatus::Critical);
        assert_eq!(report.overall(), HealthStatus::Critical);
        assert_eq!(report.components["stream"].reasons.len(), 2);
    }
}
