//! The always-on flight recorder.
//!
//! A bounded ring of the recent *interesting moments* — scrapes,
//! health transitions, ingest watermarks, counter regressions,
//! free-form notes — plus a bounded ring of recent span trees, all
//! dumpable on demand as one JSON diagnostic bundle. The recorder is
//! cheap enough to leave on in production (two small rings behind one
//! mutex, touched once per scrape), which is the point: when
//! something goes wrong, the last minutes of context are already in
//! memory, and the panic hook prints them on the way down.
//!
//! Everything in the bundle is rendered with the same hand-rolled
//! escaping as the obs JSON exposition, so output is
//! byte-deterministic for a given recorder state.

use crate::health::HealthStatus;
use evorec_obs::FinishedSpan;
use sched::sync::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;

/// One retained moment.
#[derive(Clone, Debug)]
pub enum FlightEvent {
    /// A collector scrape completed.
    Scrape {
        /// Clock reading of the scrape.
        at_nanos: u64,
        /// Samples in the snapshot.
        samples: u64,
        /// Series admitted in the TSDB after the scrape.
        series: u64,
        /// Counter regressions flagged in this scrape.
        regressions: u64,
    },
    /// A component's health status changed.
    Transition {
        /// Evaluation clock reading.
        at_nanos: u64,
        /// The component that moved.
        component: String,
        /// Status before.
        from: HealthStatus,
        /// Status after.
        to: HealthStatus,
        /// Active reasons after the move.
        reasons: Vec<String>,
    },
    /// The ingest frontier advanced.
    Watermark {
        /// Clock reading of the observing scrape.
        at_nanos: u64,
        /// Committed epochs observed.
        epochs: u64,
        /// Live head version observed.
        head_version: u64,
    },
    /// A monotonic series decreased (see
    /// [`CounterRegression`](evorec_obs::CounterRegression)).
    Regression {
        /// Clock reading of the observing scrape.
        at_nanos: u64,
        /// The offending series key.
        key: String,
        /// The older (larger) reading.
        previous: u64,
        /// The newer (smaller) reading.
        current: u64,
    },
    /// A free-form operator note.
    Note {
        /// Clock reading when noted.
        at_nanos: u64,
        /// The note text.
        text: String,
    },
}

struct RecorderState {
    events: VecDeque<FlightEvent>,
    event_capacity: usize,
    events_dropped: u64,
    traces: VecDeque<Vec<FinishedSpan>>,
    trace_capacity: usize,
    traces_dropped: u64,
}

/// The bounded event/trace retainer. Cloneable by `Arc`; all methods
/// take `&self`.
pub struct FlightRecorder {
    state: Mutex<RecorderState>,
}

impl FlightRecorder {
    /// Default retained events.
    pub const DEFAULT_EVENTS: usize = 256;
    /// Default retained span trees.
    pub const DEFAULT_TRACES: usize = 16;

    /// A recorder with the default ring capacities.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(Self::DEFAULT_EVENTS, Self::DEFAULT_TRACES)
    }

    /// A recorder retaining at most `events` moments and `traces`
    /// span trees.
    pub fn with_capacity(events: usize, traces: usize) -> FlightRecorder {
        FlightRecorder {
            state: Mutex::new(RecorderState {
                events: VecDeque::new(),
                event_capacity: events.max(1),
                events_dropped: 0,
                traces: VecDeque::new(),
                trace_capacity: traces.max(1),
                traces_dropped: 0,
            }),
        }
    }

    /// Append one moment, evicting the oldest at capacity.
    pub fn append(&self, event: FlightEvent) {
        let mut state = self.state.lock();
        if state.events.len() == state.event_capacity {
            state.events.pop_front();
            state.events_dropped += 1;
        }
        state.events.push_back(event);
    }

    /// Append several moments in order.
    pub fn extend(&self, events: impl IntoIterator<Item = FlightEvent>) {
        for event in events {
            self.append(event);
        }
    }

    /// Record a free-form note at clock reading `at_nanos`.
    pub fn note(&self, at_nanos: u64, text: &str) {
        self.append(FlightEvent::Note {
            at_nanos,
            text: text.to_string(),
        });
    }

    /// Retain a finished span tree (as returned by
    /// `Tracer::last_trace`), evicting the oldest at capacity. Empty
    /// trees are ignored.
    pub fn record_trace(&self, spans: Vec<FinishedSpan>) {
        if spans.is_empty() {
            return;
        }
        let mut state = self.state.lock();
        if state.traces.len() == state.trace_capacity {
            state.traces.pop_front();
            state.traces_dropped += 1;
        }
        state.traces.push_back(spans);
    }

    /// The retained moments, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.state.lock().events.iter().cloned().collect()
    }

    /// Moments evicted so far.
    pub fn events_dropped(&self) -> u64 {
        self.state.lock().events_dropped
    }

    /// The retained span trees, oldest first.
    pub fn traces(&self) -> Vec<Vec<FinishedSpan>> {
        self.state.lock().traces.iter().cloned().collect()
    }

    /// Render the recorder contents as one JSON object:
    /// `{"events":[…],"events_dropped":N,"traces":[[…]],"traces_dropped":N}`.
    pub fn dump_json(&self) -> String {
        let state = self.state.lock();
        let mut out = String::from("{\"events\":[");
        for (i, event) in state.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_event(event, &mut out);
        }
        let _ = write!(out, "],\"events_dropped\":{}", state.events_dropped);
        out.push_str(",\"traces\":[");
        for (i, trace) in state.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, span) in trace.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"id\":{},\"parent\":{},\"start\":{},\"end\":{}}}",
                    // Span names are static workspace identifiers;
                    // escape anyway for robustness.
                    escaped(span.name),
                    span.id,
                    span.parent,
                    span.start_nanos,
                    span.end_nanos,
                );
            }
            out.push(']');
        }
        let _ = write!(out, "],\"traces_dropped\":{}}}", state.traces_dropped);
        out
    }

    /// Install a process-wide panic hook that prints this recorder's
    /// [`dump_json`](FlightRecorder::dump_json) to stderr (after the
    /// default hook) — the crash bundle. Installing chains, so
    /// calling it more than once prints more than one bundle; install
    /// once at startup.
    pub fn install_panic_hook(recorder: Arc<FlightRecorder>) {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            eprintln!("flight-recorder bundle: {}", recorder.dump_json());
        }));
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

fn render_event(event: &FlightEvent, out: &mut String) {
    match event {
        FlightEvent::Scrape {
            at_nanos,
            samples,
            series,
            regressions,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"scrape\",\"at\":{at_nanos},\"samples\":{samples},\
                 \"series\":{series},\"regressions\":{regressions}}}",
            );
        }
        FlightEvent::Transition {
            at_nanos,
            component,
            from,
            to,
            reasons,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"transition\",\"at\":{at_nanos},\"component\":\"{}\",\
                 \"from\":\"{}\",\"to\":\"{}\",\"reasons\":[",
                escaped(component),
                from.label(),
                to.label(),
            );
            for (i, reason) in reasons.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", escaped(reason));
            }
            out.push_str("]}");
        }
        FlightEvent::Watermark {
            at_nanos,
            epochs,
            head_version,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"watermark\",\"at\":{at_nanos},\"epochs\":{epochs},\
                 \"head\":{head_version}}}",
            );
        }
        FlightEvent::Regression {
            at_nanos,
            key,
            previous,
            current,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"regression\",\"at\":{at_nanos},\"series\":\"{}\",\
                 \"previous\":{previous},\"current\":{current}}}",
                escaped(key),
            );
        }
        FlightEvent::Note { at_nanos, text } => {
            let _ = write!(
                out,
                "{{\"kind\":\"note\",\"at\":{at_nanos},\"text\":\"{}\"}}",
                escaped(text),
            );
        }
    }
}

/// JSON string-escape `value` (same rules as the obs JSON renderer).
pub(crate) fn escaped(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ring_is_bounded_and_counts_drops() {
        let recorder = FlightRecorder::with_capacity(3, 2);
        for i in 0..5u64 {
            recorder.note(i, &format!("n{i}"));
        }
        let events = recorder.events();
        assert_eq!(events.len(), 3);
        assert_eq!(recorder.events_dropped(), 2);
        match &events[0] {
            FlightEvent::Note { at_nanos, .. } => assert_eq!(*at_nanos, 2),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn trace_ring_is_bounded_and_skips_empties() {
        let recorder = FlightRecorder::with_capacity(4, 2);
        recorder.record_trace(Vec::new());
        assert!(recorder.traces().is_empty());
        for id in 1..=3u64 {
            recorder.record_trace(vec![FinishedSpan {
                id,
                parent: 0,
                name: "serve",
                start_nanos: 0,
                end_nanos: 1,
            }]);
        }
        let traces = recorder.traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0][0].id, 2, "oldest trace evicted");
    }

    #[test]
    fn dump_is_valid_shaped_json_with_escaping() {
        let recorder = FlightRecorder::new();
        recorder.note(5, "say \"hi\"\n");
        recorder.append(FlightEvent::Transition {
            at_nanos: 6,
            component: "stream".to_string(),
            from: HealthStatus::Ok,
            to: HealthStatus::Critical,
            reasons: vec!["queue-saturation: above critical".to_string()],
        });
        recorder.append(FlightEvent::Watermark {
            at_nanos: 7,
            epochs: 3,
            head_version: 9,
        });
        let dump = recorder.dump_json();
        assert!(dump.starts_with("{\"events\":["));
        assert!(dump.contains("\"text\":\"say \\\"hi\\\"\\n\""));
        assert!(dump.contains("\"from\":\"ok\",\"to\":\"critical\""));
        assert!(dump.contains("\"kind\":\"watermark\",\"at\":7,\"epochs\":3,\"head\":9"));
        assert!(dump.ends_with("\"traces_dropped\":0}"));
        // Deterministic for fixed contents.
        assert_eq!(dump, recorder.dump_json());
    }
}
