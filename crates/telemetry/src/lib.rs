//! Telemetry history, SLO health, and a flight recorder over the
//! evorec obs plane.
//!
//! The obs crate answers "what is the system doing *right now*" — a
//! registry snapshot is one instant. This crate adds the time axis
//! and the judgement on top of it:
//!
//! * [`TelemetryCollector`] — a periodic scraper pulling
//!   `MetricsRegistry::snapshot()` on a configurable cadence through
//!   the pluggable obs `Clock`, deriving per-second `rate(…)` series
//!   for monotonic counters via [`MetricsSnapshot::diff`], and
//!   retaining everything in a bounded, multi-resolution ring TSDB
//!   ([`SeriesStore`]). Drive it from a `LogicalClock` and every
//!   rollup boundary, burn-rate window, and flight timestamp replays
//!   bit-identically.
//! * [`HealthEngine`] — declarative [`SloRule`]s (latency ceilings,
//!   saturation ceilings, hit-rate floors, staleness lags) evaluated
//!   with multi-window burn rates and hysteresis into per-component
//!   [`HealthReport`]s with human-readable reasons.
//!   [`defaults::standard_rules`] assembles the workspace-standard
//!   set from each subsystem's own `slo` constants module.
//! * [`FlightRecorder`] — an always-on bounded ring of interesting
//!   moments (scrapes, health transitions, ingest watermarks, counter
//!   regressions) plus recent span trees, dumpable on demand — and
//!   from a panic hook — as a single JSON bundle.
//!
//! [`MetricsSnapshot::diff`]: evorec_obs::MetricsSnapshot
//!
//! Like every crate in this workspace, it is dependency-free apart
//! from the vendored shims.

#![warn(missing_docs)]

pub mod collector;
pub mod defaults;
pub mod health;
pub mod recorder;
pub mod tsdb;

pub use collector::{CollectorConfig, ScrapeOutcome, TelemetryCollector, TelemetryDriver};
pub use health::{
    ComponentHealth, HealthEngine, HealthReport, HealthStatus, HealthTransition, Predicate,
    SeriesExpr, SloRule,
};
pub use recorder::{FlightEvent, FlightRecorder};
pub use tsdb::{RawPoint, Rollup, RollupSpec, SeriesBuf, SeriesStore, TsdbConfig};
