//! Interleaving models of the collector ring: a scraping writer
//! racing a rendering reader, and flight-recorder appends racing a
//! dump. Under `--cfg evorec_sched` the harness enumerates bounded
//! schedules; under the default build the same closures run once as
//! concurrency smoke tests.
//!
//! The collector's state sits behind one `sched::sync::Mutex` and the
//! recorder behind another, taken strictly in state → recorder order
//! (never nested) — the models prove a reader can never observe a
//! torn scrape: it sees the series either before or after a whole
//! scrape, and the diagnostic dump is well-formed at every
//! interleaving point.

use evorec_obs::{Clock, LogicalClock, MetricsRegistry};
use evorec_telemetry::{CollectorConfig, FlightRecorder, TelemetryCollector};
use std::sync::Arc;

const KEY: &str = "evorec_model_ticks_total";

fn bounded() -> sched::Builder {
    sched::Builder {
        preemption_bound: Some(2),
        ..Default::default()
    }
}

/// A scrape (writer) racing a render (reader): the reader sees the
/// series at the pre-scrape or post-scrape value, never in between,
/// and the dump is a well-formed bundle either way. Quiescently the
/// second scrape is fully visible.
#[test]
fn scrape_racing_render_is_never_torn() {
    let report = bounded().explore(|| {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter(KEY);
        let clock = Arc::new(LogicalClock::new());
        let collector = Arc::new(TelemetryCollector::new(
            Arc::clone(&registry),
            Arc::clone(&clock) as Arc<dyn Clock>,
            CollectorConfig::for_cadence(10),
        ));
        counter.add(1);
        clock.tick(10);
        let _ = collector.scrape_once();
        let writer = {
            let counter = Arc::clone(&counter);
            let clock = Arc::clone(&clock);
            let collector = Arc::clone(&collector);
            sched::thread::spawn(move || {
                counter.add(2);
                clock.tick(10);
                let _ = collector.scrape_once();
            })
        };
        let reader = {
            let collector = Arc::clone(&collector);
            sched::thread::spawn(move || (collector.latest(KEY), collector.dump_json()))
        };
        let (mid_latest, mid_dump) = reader.join().unwrap();
        writer.join().unwrap();
        let mid = mid_latest.expect("the seed scrape is already retained").value;
        assert!(
            mid == 1.0 || mid == 3.0,
            "reader saw a torn scrape: {mid}"
        );
        assert!(mid_dump.starts_with("{\"generated_at\":"));
        assert!(mid_dump.ends_with('}'));
        let end = collector.latest(KEY).expect("series retained");
        assert_eq!(end.value, 3.0);
        assert_eq!(end.t_nanos, 20);
        assert_eq!(collector.scrapes(), 2);
    });
    assert!(report.schedules >= 1);
    if cfg!(evorec_sched) {
        assert!(report.schedules > 1, "the race has multiple interleavings");
    }
}

/// A flight-recorder append racing a dump: the dump always renders a
/// complete bundle containing the already-quiescent prefix, and after
/// the writer joins nothing is lost or reordered.
#[test]
fn recorder_append_racing_dump_is_coherent() {
    let report = bounded().explore(|| {
        let recorder = Arc::new(FlightRecorder::with_capacity(8, 2));
        recorder.note(1, "pre");
        let writer = {
            let recorder = Arc::clone(&recorder);
            sched::thread::spawn(move || recorder.note(2, "mid"))
        };
        let reader = {
            let recorder = Arc::clone(&recorder);
            sched::thread::spawn(move || recorder.dump_json())
        };
        let mid_dump = reader.join().unwrap();
        writer.join().unwrap();
        assert!(mid_dump.contains("\"text\":\"pre\""), "prefix must be visible");
        assert!(mid_dump.starts_with("{\"events\":["));
        assert!(mid_dump.ends_with("\"traces_dropped\":0}"));
        let events = recorder.events();
        assert_eq!(events.len(), 2, "no append may be lost");
        let full = recorder.dump_json();
        let pre = full.find("\"pre\"").expect("pre retained");
        let mid = full.find("\"mid\"").expect("mid retained");
        assert!(pre < mid, "append order preserved in the dump");
    });
    assert!(report.schedules >= 1);
    if cfg!(evorec_sched) {
        assert!(report.schedules > 1);
    }
}
