//! Downsampling correctness: every retained rollup — at every level,
//! sealed or open — must equal a recomputation from the *full* raw
//! history, including points the raw ring has already evicted. Plus
//! deterministic boundary checks at ring wrap, bucket sealing, and
//! rollup retention eviction.

use evorec_telemetry::{RollupSpec, SeriesBuf, TsdbConfig};
use proptest::prelude::*;

/// A shadow recomputation of the bucket starting at `start`: absorb
/// every shadow point in `[start, start + width)` in arrival order,
/// mirroring the incremental aggregator's exact operation order so
/// floating-point results are bitwise comparable.
fn recompute(
    shadow: &[(u64, f64)],
    start: u64,
    width: u64,
) -> Option<(u64, f64, f64, f64, f64, f64)> {
    let mut acc: Option<(u64, f64, f64, f64, f64, f64)> = None;
    for &(t, v) in shadow {
        if t < start || t >= start.saturating_add(width) {
            continue;
        }
        acc = Some(match acc {
            None => (1, v, v, v, v, v),
            Some((count, sum, min, max, first, _)) => {
                (count + 1, sum + v, min.min(v), max.max(v), first, v)
            }
        });
    }
    acc
}

fn tiny_config() -> TsdbConfig {
    TsdbConfig {
        raw_capacity: 8,
        rollups: vec![
            RollupSpec {
                width_nanos: 16,
                capacity: 4,
            },
            RollupSpec {
                width_nanos: 64,
                capacity: 3,
            },
        ],
        max_series: 16,
    }
}

proptest! {
    /// Every retained rollup window equals its recomputation from the
    /// full raw history — bitwise, because both sides absorb in
    /// arrival order.
    #[test]
    fn every_rollup_equals_recomputation_from_raw(
        steps in prop::collection::vec((1u64..50, 0u64..1000), 1..120),
    ) {
        let config = tiny_config();
        let mut buf = SeriesBuf::new(&config);
        let mut shadow: Vec<(u64, f64)> = Vec::new();
        let mut t = 0u64;
        for &(dt, v) in &steps {
            t += dt;
            let value = v as f64;
            buf.record(t, value);
            shadow.push((t, value));
        }
        for (level, spec) in config.rollups.iter().enumerate() {
            for rollup in buf.rollups(level) {
                prop_assert_eq!(rollup.width_nanos, spec.width_nanos.max(1));
                prop_assert_eq!(rollup.start_nanos % rollup.width_nanos, 0,
                    "bucket start must be width-aligned");
                let truth = recompute(&shadow, rollup.start_nanos, rollup.width_nanos);
                let (count, sum, min, max, first, last) =
                    truth.expect("a retained rollup absorbed at least one point");
                prop_assert_eq!(rollup.count, count);
                prop_assert_eq!(rollup.sum, sum);
                prop_assert_eq!(rollup.min, min);
                prop_assert_eq!(rollup.max, max);
                prop_assert_eq!(rollup.first, first);
                prop_assert_eq!(rollup.last, last);
            }
        }
    }

    /// The raw ring retains exactly the newest `raw_capacity` points
    /// and counts every eviction; `points_between` matches a shadow
    /// filter over the retained suffix.
    #[test]
    fn raw_ring_retains_newest_suffix(
        steps in prop::collection::vec((1u64..20, 0u64..1000), 1..60),
        from_off in 0u64..100,
        span in 0u64..100,
    ) {
        let config = tiny_config();
        let mut buf = SeriesBuf::new(&config);
        let mut shadow: Vec<(u64, f64)> = Vec::new();
        let mut t = 0u64;
        for &(dt, v) in &steps {
            t += dt;
            buf.record(t, v as f64);
            shadow.push((t, v as f64));
        }
        let expected_evicted = shadow.len().saturating_sub(config.raw_capacity);
        prop_assert_eq!(buf.raw_evicted(), expected_evicted as u64);
        let retained: Vec<(u64, f64)> = shadow
            .iter()
            .skip(expected_evicted)
            .copied()
            .collect();
        let raw: Vec<(u64, f64)> =
            buf.raw_points().iter().map(|p| (p.t_nanos, p.value)).collect();
        prop_assert_eq!(&raw, &retained);
        let (from, to) = (from_off, from_off.saturating_add(span));
        let windowed: Vec<(u64, f64)> = buf
            .points_between(from, to)
            .iter()
            .map(|p| (p.t_nanos, p.value))
            .collect();
        let expected: Vec<(u64, f64)> = retained
            .iter()
            .copied()
            .filter(|&(pt, _)| pt >= from && pt <= to)
            .collect();
        prop_assert_eq!(windowed, expected);
    }
}

/// A point landing exactly on a bucket boundary seals the open bucket
/// and opens the next — the boundary point belongs to the *new*
/// bucket (windows are half-open `[start, start + width)`).
#[test]
fn boundary_point_seals_and_starts_the_next_bucket() {
    let config = TsdbConfig {
        raw_capacity: 32,
        rollups: vec![RollupSpec {
            width_nanos: 10,
            capacity: 8,
        }],
        max_series: 4,
    };
    let mut buf = SeriesBuf::new(&config);
    buf.record(9, 1.0); // opens [0, 10)
    buf.record(10, 2.0); // exactly on the boundary: seals, opens [10, 20)
    let rollups = buf.rollups(0);
    assert_eq!(rollups.len(), 2);
    assert_eq!(rollups[0].start_nanos, 0);
    assert_eq!(rollups[0].count, 1);
    assert_eq!(rollups[1].start_nanos, 10);
    assert_eq!(rollups[1].first, 2.0);
}

/// Ring wrap at exactly capacity: the next record evicts exactly one,
/// and the eviction counter moves in lockstep.
#[test]
fn raw_wrap_is_exact_at_capacity() {
    let config = TsdbConfig {
        raw_capacity: 4,
        rollups: Vec::new(),
        max_series: 4,
    };
    let mut buf = SeriesBuf::new(&config);
    for t in 1..=4u64 {
        buf.record(t, t as f64);
    }
    assert_eq!(buf.raw_evicted(), 0, "at capacity, nothing evicted yet");
    buf.record(5, 5.0);
    assert_eq!(buf.raw_evicted(), 1);
    let first = buf.raw_points()[0];
    assert_eq!(first.t_nanos, 2, "oldest point evicted first");
}

/// Rollup retention eviction: sealing past the level capacity drops
/// the oldest sealed bucket and counts it.
#[test]
fn rollup_retention_evicts_oldest_sealed_bucket() {
    let config = TsdbConfig {
        raw_capacity: 64,
        rollups: vec![RollupSpec {
            width_nanos: 10,
            capacity: 2,
        }],
        max_series: 4,
    };
    let mut buf = SeriesBuf::new(&config);
    // Four sealed buckets ([0,10) [10,20) [20,30) [30,40)) + one open.
    for t in [1u64, 11, 21, 31, 41] {
        buf.record(t, t as f64);
    }
    assert_eq!(buf.rollups_evicted(0), 2);
    let rollups = buf.rollups(0);
    assert_eq!(rollups.len(), 3, "two sealed retained + the open bucket");
    assert_eq!(rollups[0].start_nanos, 20, "[0,10) and [10,20) evicted");
}
