//! Offline shim for `serde_derive`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — nothing
//! serialises at runtime yet (no `serde_json` in the tree) — so these
//! derive macros expand to nothing. They still register the `#[serde(...)]`
//! helper attribute so field annotations like `#[serde(skip)]` parse.
//!
//! Swapping in the real `serde`/`serde_derive` later requires only the
//! `[workspace.dependencies]` entry to change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
