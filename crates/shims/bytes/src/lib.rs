//! Offline shim for `bytes`.
//!
//! `Vec<u8>`-backed [`Bytes`]/[`BytesMut`] plus the subset of the
//! [`Buf`]/[`BufMut`] traits the delta wire codec uses. `Bytes` is
//! cheaply clonable via `Arc`, mirroring the real crate's sharing
//! semantics (without the slice views the workspace doesn't need).

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::new(v))
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Drop the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source (implemented for `&[u8]`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes. Panics if fewer than `n` remain.
    fn advance(&mut self, n: usize);

    /// Read one byte. Panics if empty.
    fn get_u8(&mut self) -> u8;

    /// `true` while at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let byte = self[0];
        *self = &self[1..];
        byte
    }
}

/// Write sink for bytes (implemented for [`BytesMut`]).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, byte: u8);

    /// Append a slice.
    fn put_slice(&mut self, slice: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, byte: u8) {
        self.0.push(byte);
    }

    fn put_slice(&mut self, slice: &[u8]) {
        self.0.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_freeze() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_slice(b"ab");
        buf.put_u8(b'c');
        assert_eq!(&buf[..], b"abc");
        let frozen = buf.freeze();
        assert_eq!(frozen.to_vec(), b"abc".to_vec());
        let cheap = frozen.clone();
        assert_eq!(&cheap[..1], b"a");
    }

    #[test]
    fn slice_buf_cursor() {
        let mut slice: &[u8] = b"xyz";
        assert_eq!(slice.remaining(), 3);
        assert_eq!(slice.get_u8(), b'x');
        slice.advance(1);
        assert!(slice.has_remaining());
        assert_eq!(slice.get_u8(), b'z');
        assert!(!slice.has_remaining());
    }
}
