//! Offline shim for `criterion` 0.5.
//!
//! A minimal wall-clock harness exposing the API surface the bench
//! targets use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is
//! warmed up briefly, then timed for a bounded number of samples and
//! reported as median and mean ns/iter — no statistics engine, no
//! plots, but the same code compiles unchanged against real criterion.
//!
//! # Machine-readable results
//!
//! Set `EVOREC_BENCH_JSON=<path>` and every finished benchmark appends
//! one JSON line to `<path>`:
//! `{"name":"group/bench","median_ns":N,"mean_ns":N,"iters":N}`.
//! Lines append (the harness never truncates), so one file can collect
//! a whole `cargo bench` run across bench binaries; wrap the lines in
//! `[…]` (e.g. `paste -sd,`) for a JSON array.

#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped between setup calls.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Many small inputs per setup (shim: batches of 16).
    SmallInput,
    /// Few large inputs per setup (shim: batches of 4).
    LargeInput,
    /// Fresh setup before every routine call.
    PerIteration,
}

impl BatchSize {
    fn iters_per_batch(self) -> u64 {
        match self {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 4,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Per-target measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    elapsed: Duration,
    iters: u64,
    sample_nanos: Vec<u64>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            budget: Duration::from_millis(200),
            elapsed: Duration::ZERO,
            iters: 0,
            sample_nanos: Vec::with_capacity(samples),
        }
    }

    fn record(&mut self, sample: Duration) {
        self.elapsed += sample;
        self.iters += 1;
        self.sample_nanos.push(sample.as_nanos() as u64);
    }

    /// Median ns/iter over the recorded samples (upper-median for an
    /// even count; zero with no samples).
    fn median_nanos(&self) -> u64 {
        if self.sample_nanos.is_empty() {
            return 0;
        }
        let mut sorted = self.sample_nanos.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes lazy caches inside the routine).
        black_box(routine());
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.record(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Time `routine` on inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let per_batch = size.iters_per_batch();
        let deadline = Instant::now() + self.budget;
        let mut done = 0u64;
        while done < self.samples as u64 {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            for input in inputs {
                let start = Instant::now();
                black_box(routine(input));
                self.record(start.elapsed());
                done += 1;
            }
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, group: Option<&str>, name: &str) {
        let label = match group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        };
        if self.iters == 0 {
            println!("bench {label:<50} (no samples)");
            return;
        }
        let mean = self.elapsed.as_nanos() / u128::from(self.iters);
        let median = self.median_nanos();
        println!(
            "bench {label:<50} {median:>12} ns/iter median ({mean} mean, {} iters)",
            self.iters
        );
        self.append_json(&label, median, mean);
    }

    /// Append one JSONL result record when `EVOREC_BENCH_JSON` names a
    /// file; IO failures are reported to stderr, never fatal (a bench
    /// run must not die on a full disk).
    fn append_json(&self, label: &str, median: u64, mean: u128) {
        let Ok(path) = std::env::var("EVOREC_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let line = format!(
            "{{\"name\":\"{}\",\"median_ns\":{median},\"mean_ns\":{mean},\"iters\":{}}}\n",
            label.replace('\\', "\\\\").replace('"', "\\\""),
            self.iters
        );
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut file| file.write_all(line.as_bytes()));
        if let Err(err) = written {
            eprintln!("criterion shim: cannot append to {path}: {err}");
        }
    }
}

/// Top-level harness state (constructed by [`criterion_main!`]).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLES: usize = 20;

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Criterion
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(DEFAULT_SAMPLES);
        f(&mut bencher);
        bencher.report(None, name.as_ref());
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        bencher.report(Some(&self.name), name.as_ref());
        self
    }

    /// Close the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes harness-less bench binaries for their
            // zero-exit smoke value with `--test`; `cargo bench` passes
            // `--bench`. Either way the measurements below are cheap
            // enough to just run.
            $( $group(); )+
        }
    };
}
