//! Deterministic RNG and case bookkeeping for the [`proptest!`] runner.
//!
//! [`proptest!`]: crate::proptest!

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default cases per property (override with `PROPTEST_CASES`).
const DEFAULT_CASES: u32 = 64;

/// Number of cases each property runs.
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Deterministic generator seeded from the test's name, so every
/// property explores its own stream and failures reproduce exactly.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from `test_name` (FNV-1a over the bytes).
    pub fn for_test(test_name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..hi)
    }

    /// Uniform draw in `[lo, hi)` for `f64`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.0.gen_range(lo..hi)
    }

    /// Uniform draw in `[lo, hi]` for `f64`.
    pub fn uniform_f64_inclusive(&mut self, lo: f64, hi: f64) -> f64 {
        self.0.gen_range(lo..=hi)
    }
}

/// Prints which case was executing if the property body panics, since
/// this shim does not shrink counterexamples.
pub struct CasePanicContext {
    test_name: &'static str,
    case: u32,
    armed: bool,
}

impl CasePanicContext {
    /// Arm the context for one case.
    pub fn new(test_name: &'static str, case: u32) -> CasePanicContext {
        CasePanicContext {
            test_name,
            case,
            armed: true,
        }
    }

    /// The case finished; do not report on drop.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CasePanicContext {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: `{}` failed at case {} (deterministic; rerun reproduces it)",
                self.test_name, self.case
            );
        }
    }
}
