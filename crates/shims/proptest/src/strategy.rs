//! The [`Strategy`] trait and the built-in strategies the tests use.

use crate::test_runner::TestRng;
use crate::Arbitrary;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: generation is a single
/// draw and failures are not shrunk.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            map,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`crate::any`].
#[derive(Clone, Debug)]
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as u128 + draw) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(self.start, self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64_inclusive(*self.start(), *self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident / $ix:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
}

/// String-literal regex strategies of the shape `[class]{n}` or
/// `[class]{m,n}`, the only forms the tests use. Character classes
/// support ranges (`a-z`), literal characters, and a literal trailing
/// `-` before `]`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_repeat(self);
        let len = if lo == hi {
            lo
        } else {
            rng.below(lo, hi + 1)
        };
        (0..len)
            .map(|_| alphabet[rng.below(0, alphabet.len())])
            .collect()
    }
}

fn parse_class_repeat(pattern: &str) -> (Vec<char>, usize, usize) {
    let inner = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported regex strategy {pattern:?}: expected `[class]{{…}}`"));
    let (class, repeat) = inner
        .split_once(']')
        .unwrap_or_else(|| panic!("unsupported regex strategy {pattern:?}: unterminated class"));

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut ix = 0;
    while ix < chars.len() {
        if ix + 2 < chars.len() && chars[ix + 1] == '-' {
            let (lo, hi) = (chars[ix], chars[ix + 2]);
            assert!(lo <= hi, "descending range in class {pattern:?}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            ix += 3;
        } else {
            alphabet.push(chars[ix]);
            ix += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class {pattern:?}");

    let counts = repeat
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in {pattern:?}: expected `{{n}}` or `{{m,n}}`"));
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().expect("numeric repetition lower bound"),
            hi.parse().expect("numeric repetition upper bound"),
        ),
        None => {
            let n = counts.parse().expect("numeric repetition count");
            (n, n)
        }
    };
    assert!(lo <= hi, "descending repetition in {pattern:?}");
    (alphabet, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parsing_handles_ranges_and_literals() {
        let (alpha, lo, hi) = parse_class_repeat("[a-c_.-]{1,3}");
        assert_eq!(alpha, vec!['a', 'b', 'c', '_', '.', '-']);
        assert_eq!((lo, hi), (1, 3));
        let (alpha, lo, hi) = parse_class_repeat("[ -~]{0,40}");
        assert_eq!(alpha.len(), (b'~' - b' ') as usize + 1);
        assert_eq!((lo, hi), (0, 40));
        let (_, lo, hi) = parse_class_repeat("[a-z]{2}");
        assert_eq!((lo, hi), (2, 2));
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = TestRng::for_test("string_strategy_respects_bounds");
        for _ in 0..200 {
            let s = "[a-z]{2}".generate(&mut rng);
            assert_eq!(s.len(), 2);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[0-9]{0,5}".generate(&mut rng);
            assert!(t.len() <= 5);
        }
    }
}
