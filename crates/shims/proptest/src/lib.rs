//! Offline shim for `proptest`.
//!
//! A deterministic randomised property-test runner exposing the subset
//! of the proptest API the integration tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with [`strategy::Strategy::prop_map`],
//! range and tuple
//! strategies, simple `[class]{m,n}` string-regex strategies,
//! [`collection::vec`], [`option::of`], [`any`], and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted for a shim:
//! no shrinking (a failing case panics with its case number; rerun is
//! deterministic), and a fixed per-test case count (64, override with
//! `PROPTEST_CASES`). Test sources compile unchanged against the real
//! crate.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec()`]: an exact count or a
    /// half-open range.
    #[derive(Copy, Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> SizeRange {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` or a `Some` draw of `inner` (3:1
    /// weighted towards `Some`, mirroring proptest's default).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(0, 4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module alias matching proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Assert a condition inside a property (panics — no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::case_count();
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut __rng,
                        );
                    )+
                    let __guard = $crate::test_runner::CasePanicContext::new(
                        stringify!($name),
                        __case,
                    );
                    { $body }
                    __guard.disarm();
                }
            }
        )*
    };
}
