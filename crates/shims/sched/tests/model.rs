//! Self-tests of the deterministic scheduler: the explorer must (a)
//! preserve correct code, (b) actually *find* the schedules where racy
//! code goes wrong, and (c) detect deadlocks — otherwise the harness
//! would green-light anything.

use sched::sync::atomic::{AtomicU64, Ordering};
use sched::sync::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex as StdMutex};

#[test]
fn mutex_protected_increments_never_lose_updates() {
    let report = sched::model(|| {
        let counter = Arc::new(Mutex::new(0u64));
        let t = {
            let counter = Arc::clone(&counter);
            sched::thread::spawn(move || *counter.lock() += 1)
        };
        *counter.lock() += 1;
        t.join().expect("incrementer");
        assert_eq!(*counter.lock(), 2, "mutex serializes the increments");
    });
    assert!(report.schedules >= 1);
}

#[test]
fn explorer_enumerates_both_orders_of_a_race() {
    // A racy load-then-store: depending on interleaving the final value
    // is 1 (both threads read 0) or 2 (sequential). The explorer must
    // surface BOTH outcomes — that is the whole point of the harness.
    let outcomes: Arc<StdMutex<BTreeSet<u64>>> = Arc::new(StdMutex::new(BTreeSet::new()));
    let sink = Arc::clone(&outcomes);
    let report = sched::model(move || {
        let cell = Arc::new(AtomicU64::new(0));
        let t = {
            let cell = Arc::clone(&cell);
            sched::thread::spawn(move || {
                let v = cell.load(Ordering::SeqCst);
                cell.store(v + 1, Ordering::SeqCst);
            })
        };
        let v = cell.load(Ordering::SeqCst);
        cell.store(v + 1, Ordering::SeqCst);
        t.join().expect("racer");
        sink.lock()
            .expect("outcome sink")
            .insert(cell.load(Ordering::SeqCst));
    });
    let outcomes = outcomes.lock().expect("outcome sink");
    if cfg!(evorec_sched) {
        assert!(report.schedules > 1, "a race has more than one schedule");
        assert_eq!(
            *outcomes,
            BTreeSet::from([1, 2]),
            "exploration must witness both the lost-update and the sequential outcome"
        );
    } else {
        assert_eq!(report.schedules, 1, "uninstrumented build runs once");
        assert!(!outcomes.is_empty());
    }
}

#[test]
fn condvar_handshake_is_never_lost() {
    // Classic wait/notify handshake under a predicate. Exploration
    // covers the racy orders (notify before the waiter sleeps — the
    // lost-wakeup hazard) and must find the predicate loop makes them
    // all safe.
    let report = sched::model(|| {
        struct Gate {
            ready: Mutex<bool>,
            cv: Condvar,
        }
        let gate = Arc::new(Gate {
            ready: Mutex::new(false),
            cv: Condvar::new(),
        });
        let signaller = {
            let gate = Arc::clone(&gate);
            sched::thread::spawn(move || {
                *gate.ready.lock() = true;
                gate.cv.notify_all();
            })
        };
        let mut ready = gate.ready.lock();
        while !*ready {
            ready = gate.cv.wait(ready);
        }
        drop(ready);
        signaller.join().expect("signaller");
    });
    assert!(report.schedules >= 1);
}

#[test]
fn rwlock_readers_see_complete_writes() {
    let report = sched::model(|| {
        let pair = Arc::new(sched::sync::RwLock::new((0u64, 0u64)));
        let writer = {
            let pair = Arc::clone(&pair);
            sched::thread::spawn(move || {
                let mut slot = pair.write();
                slot.0 = 7;
                slot.1 = 7;
            })
        };
        let snapshot = *pair.read();
        assert!(
            snapshot == (0, 0) || snapshot == (7, 7),
            "a reader must never observe a torn write: {snapshot:?}"
        );
        writer.join().expect("writer");
    });
    assert!(report.schedules >= 1);
}

// The remaining tests drive failure detection and are meaningful only
// under the instrumented scheduler (uninstrumented, a deadlock would
// hang the test binary rather than panic).
#[cfg(evorec_sched)]
mod instrumented {
    use super::*;

    #[test]
    #[should_panic(expected = "deadlock")]
    fn inverted_lock_order_deadlock_is_detected() {
        sched::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                sched::thread::spawn(move || {
                    let _b = b.lock();
                    let _a = a.lock();
                })
            };
            let _a = a.lock();
            let _b = b.lock();
            drop((_a, _b));
            let _ = t.join();
        });
    }

    #[test]
    #[should_panic(expected = "sched model failed")]
    fn failing_schedule_is_reported_with_its_path() {
        // The assertion only fails on schedules where the child wins
        // the race; exploration must reach one and report it.
        sched::model(|| {
            let cell = Arc::new(AtomicU64::new(0));
            let t = {
                let cell = Arc::clone(&cell);
                sched::thread::spawn(move || cell.store(1, Ordering::SeqCst))
            };
            assert_eq!(cell.load(Ordering::SeqCst), 0, "child must not have run yet");
            t.join().expect("child");
        });
    }

    #[test]
    fn preemption_bound_shrinks_the_schedule_space() {
        let run = |bound| {
            let b = sched::Builder {
                preemption_bound: bound,
                ..Default::default()
            };
            b.explore(|| {
                let cell = Arc::new(AtomicU64::new(0));
                let t = {
                    let cell = Arc::clone(&cell);
                    sched::thread::spawn(move || {
                        cell.fetch_add(1, Ordering::SeqCst);
                        cell.fetch_add(1, Ordering::SeqCst);
                    })
                };
                cell.fetch_add(1, Ordering::SeqCst);
                cell.fetch_add(1, Ordering::SeqCst);
                t.join().expect("adder");
                assert_eq!(cell.load(Ordering::SeqCst), 4);
            })
            .schedules
        };
        let bounded = run(Some(1));
        let exhaustive = run(None);
        assert!(
            bounded < exhaustive,
            "bound 1 ({bounded}) must explore fewer schedules than exhaustive ({exhaustive})"
        );
    }
}
