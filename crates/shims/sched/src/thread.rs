//! Thread spawning and joining: `std` pass-through by default; inside a
//! model run, spawned threads are registered with the scheduler and the
//! spawn/join edges become scheduling points.

use std::thread::Result as ThreadResult;

#[cfg(evorec_sched)]
use crate::rt;
#[cfg(evorec_sched)]
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a spawned thread; [`join`](JoinHandle::join) returns the
/// closure's value (or its panic payload), like `std`.
pub struct JoinHandle<T>(Imp<T>);

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    #[cfg(evorec_sched)]
    Model {
        run: Arc<rt::Run>,
        tid: usize,
        slot: Arc<StdMutex<Option<ThreadResult<T>>>>,
        real: Option<std::thread::JoinHandle<()>>,
    },
}

/// Spawn a thread. Inside a model run the child is a scheduler-governed
/// model thread (and the spawn itself a scheduling point — the child
/// may run first); otherwise this is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    #[cfg(evorec_sched)]
    if let Some((run, me)) = rt::current() {
        let tid = run.register_thread();
        let slot: Arc<StdMutex<Option<ThreadResult<T>>>> = Arc::new(StdMutex::new(None));
        let real = {
            let run = Arc::clone(&run);
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                rt::set_current(Arc::clone(&run), tid);
                run.enter(tid);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                let msg = match &result {
                    Ok(_) => None,
                    Err(p) if rt::is_abort(p.as_ref()) => None,
                    Err(p) => Some(rt::panic_message(p.as_ref())),
                };
                // Store the result BEFORE finishing: once `finish` runs
                // a joiner may be scheduled and expects the slot full.
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                run.finish(tid, msg);
                rt::clear_current();
            })
        };
        run.yield_point(me);
        return JoinHandle(Imp::Model {
            run,
            tid,
            slot,
            real: Some(real),
        });
    }
    JoinHandle(Imp::Std(std::thread::spawn(f)))
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and take its result. A model
    /// handle must be joined from a thread of the same run.
    pub fn join(self) -> ThreadResult<T> {
        match self.0 {
            Imp::Std(handle) => handle.join(),
            #[cfg(evorec_sched)]
            Imp::Model {
                run,
                tid,
                slot,
                real,
            } => {
                let me = match rt::current() {
                    Some((current, me)) if Arc::ptr_eq(&current, &run) => me,
                    _ => panic!("model JoinHandle joined outside its model run"),
                };
                run.join_wait(me, tid);
                if let Some(handle) = real {
                    // The model thread has finished; its OS thread is
                    // (about to be) gone. Reap it.
                    let _ = handle.join();
                }
                slot.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("model thread stores its result before finishing")
            }
        }
    }

    /// Whether the thread has finished. Do not poll this in a model —
    /// a poll loop is a spin loop, which the explorer rejects; join or
    /// block on a primitive instead.
    pub fn is_finished(&self) -> bool {
        match &self.0 {
            Imp::Std(handle) => handle.is_finished(),
            #[cfg(evorec_sched)]
            Imp::Model { run, tid, .. } => {
                rt::maybe_yield();
                run.thread_finished(*tid)
            }
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("JoinHandle { .. }")
    }
}

/// Cooperatively give up the CPU: a scheduling point inside a model
/// run, `std::thread::yield_now` otherwise.
pub fn yield_now() {
    #[cfg(evorec_sched)]
    if rt::current().is_some() {
        rt::maybe_yield();
        return;
    }
    std::thread::yield_now();
}
