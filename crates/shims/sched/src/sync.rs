//! Synchronization primitives: non-poisoning `Mutex`/`RwLock`/`Condvar`
//! (the `parking_lot` shape) plus atomics.
//!
//! In the default build these are thin delegations to `std` — poison is
//! swallowed via `into_inner`, guards are returned directly rather than
//! wrapped in `Result`, and the atomics are literal re-exports. Under
//! `cfg(evorec_sched)`, primitives constructed *inside a model run*
//! additionally carry a registration with the run's scheduler: every
//! acquire/wait/notify/atomic-op becomes a deterministic scheduling
//! point, and blocking is tracked logically so the explorer can see —
//! and enumerate — exactly who could run next. Primitives constructed
//! outside a run (or outliving it) behave like the default build.

#[cfg(evorec_sched)]
use crate::rt;
#[cfg(evorec_sched)]
use std::sync::{Arc, Weak};
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};
use std::time::Duration;

/// The scheduler registration a primitive carries when built inside a
/// model run: the run it belongs to and its slot id there.
#[cfg(evorec_sched)]
type Registration = Option<(Weak<rt::Run>, usize)>;

#[cfg(evorec_sched)]
fn register_lock() -> Registration {
    rt::current().map(|(run, _)| {
        let id = run.register_lock();
        (Arc::downgrade(&run), id)
    })
}

#[cfg(evorec_sched)]
fn resolve(reg: &Registration) -> Option<(Arc<rt::Run>, usize, usize)> {
    let (weak, id) = reg.as_ref()?;
    let registered = weak.upgrade()?;
    let (run, me) = rt::current()?;
    if Arc::ptr_eq(&registered, &run) {
        Some((run, me, *id))
    } else {
        None
    }
}

// ---- Mutex --------------------------------------------------------------

/// A mutual-exclusion lock. Non-poisoning; instrumented inside model
/// runs.
pub struct Mutex<T> {
    #[cfg(evorec_sched)]
    model: Registration,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(evorec_sched)]
            model: register_lock(),
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, blocking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(evorec_sched)]
        let logical = match resolve(&self.model) {
            Some((run, me, id)) => {
                run.mutex_acquire(me, id, true);
                true
            }
            None => false,
        };
        MutexGuard {
            lock: self,
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            #[cfg(evorec_sched)]
            logical,
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Mutex { .. }")
    }
}

/// RAII guard of a [`Mutex`]; releases on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    #[cfg(evorec_sched)]
    logical: bool,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real lock first, logical second: the moment another model
        // thread is granted the logical lock, the real one must already
        // be free.
        drop(self.inner.take());
        #[cfg(evorec_sched)]
        if self.logical {
            if let Some((run, me, id)) = resolve(&self.lock.model) {
                run.mutex_release(me, id);
            }
        }
    }
}

// ---- Condvar ------------------------------------------------------------

/// A condition variable, paired with [`Mutex`]. Non-poisoning;
/// instrumented inside model runs (where `notify_one` wakes FIFO and
/// `wait_timeout` never times out — see the crate docs).
pub struct Condvar {
    #[cfg(evorec_sched)]
    model: Registration,
    inner: StdCondvar,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Condvar {
        Condvar {
            #[cfg(evorec_sched)]
            model: rt::current().map(|(run, _)| {
                let id = run.register_cvar();
                (Arc::downgrade(&run), id)
            }),
            inner: StdCondvar::new(),
        }
    }

    /// Atomically release `guard`'s lock and sleep until notified;
    /// reacquires the lock before returning.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(evorec_sched)]
        if guard.logical {
            if let Some((run, me, cv_id)) = resolve(&self.model) {
                let mutex = guard.lock;
                if let Some((_, _, lock_id)) = resolve(&mutex.model) {
                    // Suppress the guard's own release: cvar_wait
                    // releases the logical lock atomically with
                    // enqueueing, which is the whole point.
                    guard.logical = false;
                    drop(guard.inner.take());
                    drop(guard);
                    run.cvar_wait(me, cv_id, lock_id);
                    // Woken and scheduled; compete for the lock like
                    // any other waiter (no extra yield — we are fresh
                    // off a scheduling point).
                    run.mutex_acquire(me, lock_id, false);
                    return MutexGuard {
                        lock: mutex,
                        inner: Some(mutex.inner.lock().unwrap_or_else(|e| e.into_inner())),
                        logical: true,
                    };
                }
            }
        }
        let mutex = guard.lock;
        #[cfg(evorec_sched)]
        let logical = std::mem::replace(&mut guard.logical, false);
        let std_guard = guard.inner.take().expect("guard holds the lock");
        drop(guard);
        let woken = self.inner.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            lock: mutex,
            inner: Some(woken),
            #[cfg(evorec_sched)]
            logical,
        }
    }

    /// Like [`wait`](Condvar::wait) with a wakeup deadline; the `bool`
    /// is `true` on timeout. Inside a model run the timeout NEVER
    /// fires (progress must come from notification) — a model relying
    /// on it deadlocks, and the harness reports exactly that.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        #[cfg(evorec_sched)]
        if guard.logical && resolve(&self.model).is_some() {
            return (self.wait(guard), false);
        }
        let mutex = guard.lock;
        #[cfg(evorec_sched)]
        let logical = std::mem::replace(&mut guard.logical, false);
        let std_guard = guard.inner.take().expect("guard holds the lock");
        drop(guard);
        let (woken, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        (
            MutexGuard {
                lock: mutex,
                inner: Some(woken),
                #[cfg(evorec_sched)]
                logical,
            },
            res.timed_out(),
        )
    }

    /// Wake one waiter (the longest-waiting one, inside a model run).
    pub fn notify_one(&self) {
        #[cfg(evorec_sched)]
        if let Some((run, me, cv_id)) = resolve(&self.model) {
            run.cvar_notify(me, cv_id, false);
            return;
        }
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        #[cfg(evorec_sched)]
        if let Some((run, me, cv_id)) = resolve(&self.model) {
            run.cvar_notify(me, cv_id, true);
            return;
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Condvar { .. }")
    }
}

// ---- RwLock -------------------------------------------------------------

/// A reader-writer lock. Non-poisoning; instrumented inside model runs.
pub struct RwLock<T> {
    #[cfg(evorec_sched)]
    model: Registration,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(evorec_sched)]
            model: register_lock(),
            inner: StdRwLock::new(value),
        }
    }

    /// Acquire shared read access, blocking while a writer holds the
    /// lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(evorec_sched)]
        let logical = match resolve(&self.model) {
            Some((run, me, id)) => {
                run.read_acquire(me, id);
                true
            }
            None => false,
        };
        RwLockReadGuard {
            lock: self,
            inner: Some(self.inner.read().unwrap_or_else(|e| e.into_inner())),
            #[cfg(evorec_sched)]
            logical,
        }
    }

    /// Acquire exclusive write access, blocking until all readers and
    /// writers are gone.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(evorec_sched)]
        let logical = match resolve(&self.model) {
            Some((run, me, id)) => {
                run.write_acquire(me, id);
                true
            }
            None => false,
        };
        RwLockWriteGuard {
            lock: self,
            inner: Some(self.inner.write().unwrap_or_else(|e| e.into_inner())),
            #[cfg(evorec_sched)]
            logical,
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("RwLock { .. }")
    }
}

/// RAII shared-read guard of an [`RwLock`]; releases on drop.
pub struct RwLockReadGuard<'a, T> {
    #[cfg_attr(not(evorec_sched), allow(dead_code))]
    lock: &'a RwLock<T>,
    inner: Option<StdReadGuard<'a, T>>,
    #[cfg(evorec_sched)]
    logical: bool,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        #[cfg(evorec_sched)]
        if self.logical {
            if let Some((run, me, id)) = resolve(&self.lock.model) {
                run.read_release(me, id);
            }
        }
    }
}

/// RAII exclusive-write guard of an [`RwLock`]; releases on drop.
pub struct RwLockWriteGuard<'a, T> {
    #[cfg_attr(not(evorec_sched), allow(dead_code))]
    lock: &'a RwLock<T>,
    inner: Option<StdWriteGuard<'a, T>>,
    #[cfg(evorec_sched)]
    logical: bool,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        #[cfg(evorec_sched)]
        if self.logical {
            if let Some((run, me, id)) = resolve(&self.lock.model) {
                run.write_release(me, id);
            }
        }
    }
}

// ---- atomics ------------------------------------------------------------

/// Atomic types: literal `std` re-exports in the default build; under
/// `cfg(evorec_sched)` each operation is one scheduling point (the op
/// itself then runs on the real `std` atomic while the thread is the
/// only one executing, so the *interleaving* of atomic ops is what the
/// explorer enumerates). Atomics need no registration: a fresh model
/// schedule sees only its own freshly constructed values.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(evorec_sched))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

    #[cfg(evorec_sched)]
    macro_rules! numeric_atomic {
        ($name:ident, $std:ident, $prim:ty) => {
            /// An instrumented numeric atomic: same API as the `std`
            /// type, every operation a scheduling point inside a model
            /// run.
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// A new atomic holding `value`.
                pub const fn new(value: $prim) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(value),
                    }
                }

                /// Atomic load.
                pub fn load(&self, order: Ordering) -> $prim {
                    crate::rt::maybe_yield();
                    self.inner.load(order)
                }

                /// Atomic store.
                pub fn store(&self, value: $prim, order: Ordering) {
                    crate::rt::maybe_yield();
                    self.inner.store(value, order)
                }

                /// Atomic swap, returning the previous value.
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    crate::rt::maybe_yield();
                    self.inner.swap(value, order)
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                    crate::rt::maybe_yield();
                    self.inner.fetch_add(value, order)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                    crate::rt::maybe_yield();
                    self.inner.fetch_sub(value, order)
                }

                /// Atomic max, returning the previous value.
                pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                    crate::rt::maybe_yield();
                    self.inner.fetch_max(value, order)
                }

                /// Atomic compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    crate::rt::maybe_yield();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Unsynchronized read (the `&mut` proves exclusivity).
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
    }

    #[cfg(evorec_sched)]
    numeric_atomic!(AtomicU64, AtomicU64, u64);
    #[cfg(evorec_sched)]
    numeric_atomic!(AtomicUsize, AtomicUsize, usize);

    /// An instrumented boolean atomic: same API as `std`, every
    /// operation a scheduling point inside a model run.
    #[cfg(evorec_sched)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    #[cfg(evorec_sched)]
    impl AtomicBool {
        /// A new atomic holding `value`.
        pub const fn new(value: bool) -> AtomicBool {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(value),
            }
        }

        /// Atomic load.
        pub fn load(&self, order: Ordering) -> bool {
            crate::rt::maybe_yield();
            self.inner.load(order)
        }

        /// Atomic store.
        pub fn store(&self, value: bool, order: Ordering) {
            crate::rt::maybe_yield();
            self.inner.store(value, order)
        }

        /// Atomic swap, returning the previous value.
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            crate::rt::maybe_yield();
            self.inner.swap(value, order)
        }
    }

    #[cfg(evorec_sched)]
    impl Default for AtomicBool {
        fn default() -> AtomicBool {
            AtomicBool::new(false)
        }
    }

    #[cfg(evorec_sched)]
    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }
}
