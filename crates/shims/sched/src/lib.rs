//! Deterministic-interleaving scheduler shim — a mini-loom for the
//! workspace's lock-free serving stack.
//!
//! The hot path (bounded MPSC `BoundedLog`, atomic-swap `LiveContext`
//! and `ProfileStore` publication, the `AdaptWorker` flush barrier) is
//! built on hand-rolled concurrency idioms that ordinary `cargo test`
//! cannot meaningfully exercise for races: the OS scheduler explores a
//! handful of interleavings per run, always roughly the same ones. This
//! crate closes that gap with two compile modes:
//!
//! * **Default build** (`cfg(evorec_sched)` absent): [`sync`] and
//!   [`thread`] are zero-cost facades over `std` — a non-poisoning
//!   `Mutex`/`RwLock`/`Condvar` (the `parking_lot` shape) plus
//!   re-exported atomics and `std::thread::spawn`. [`model`] runs its
//!   closure exactly once, so interleaving models double as plain
//!   concurrency smoke tests under tier-1 `cargo test`.
//!
//! * **Instrumented build** (`RUSTFLAGS="--cfg evorec_sched"`): every
//!   primitive *constructed inside a [`model`] run* becomes a
//!   cooperative scheduling point. Only one model thread runs at a
//!   time; at each visible operation (lock acquire, atomic access,
//!   condvar wait/notify, spawn/join) the active thread consults a
//!   recorded decision path and hands control over. [`Builder::explore`]
//!   then enumerates the whole bounded tree of schedules depth-first —
//!   replaying the model closure once per schedule — so an assertion
//!   that holds after exploration holds for *every* interleaving within
//!   the bound: lost events, torn publications, and misordered commits
//!   have nowhere to hide.
//!
//! # Writing a model
//!
//! ```ignore
//! let report = sched::Builder::default().explore(|| {
//!     let log = std::sync::Arc::new(BoundedLog::<u32>::bounded(1));
//!     let producer = {
//!         let log = std::sync::Arc::clone(&log);
//!         sched::thread::spawn(move || log.push(7).is_ok())
//!     };
//!     log.close();
//!     let drained = log.try_pop_batch(4);
//!     let accepted = producer.join().unwrap();
//!     assert_eq!(accepted, drained.contains(&7), "no lost or phantom event");
//! });
//! ```
//!
//! Rules of the game:
//!
//! * Create every shared primitive *inside* the closure — objects made
//!   outside a run fall back to plain `std` behaviour and add no
//!   scheduling points (safe, but unexplored).
//! * Models must be deterministic: no clocks, no randomness, no
//!   iteration over randomized hash maps that changes *control flow*.
//! * No spin loops — block on the primitives instead (a spinning
//!   thread makes the schedule tree infinite).
//! * Record run outcomes in a plain `std::sync::Mutex` (uninstrumented
//!   on purpose) and assert at the end of the closure.
//! * Keep models tiny (2–4 threads, a handful of operations each), or
//!   set [`Builder::preemption_bound`] — schedule counts grow
//!   combinatorially.
//!
//! Timeouts never fire under the instrumented scheduler
//! ([`sync::Condvar::wait_timeout`] degenerates to `wait`): a model
//! whose progress depends on a timeout deadlocks, and the harness
//! reports it — by design, since production code must not rely on
//! timers for correctness either.

#![warn(missing_docs)]
// The model runtime intentionally panics (that is how a failing
// schedule surfaces) and parks threads; none of it is hot-path code.

#[cfg(evorec_sched)]
mod rt;

pub mod sync;
pub mod thread;

#[cfg(evorec_sched)]
pub use rt::{Builder, Report};

/// What an exploration did. Under `cfg(evorec_sched)` this counts every
/// schedule enumerated; in the default build a model runs once.
#[cfg(not(evorec_sched))]
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of schedules the closure was executed under.
    pub schedules: usize,
}

/// Exploration knobs. In the default (uninstrumented) build every
/// configuration runs the closure exactly once.
#[cfg(not(evorec_sched))]
#[derive(Clone, Copy, Debug, Default)]
pub struct Builder {
    /// Maximum context switches away from a still-runnable thread per
    /// schedule (CHESS-style preemption bounding). `None` = exhaustive.
    pub preemption_bound: Option<usize>,
    /// Abort exploration beyond this many schedules (0 = default cap).
    pub max_schedules: usize,
}

#[cfg(not(evorec_sched))]
impl Builder {
    /// Run `f` once (the uninstrumented build has exactly one schedule:
    /// whatever the OS does).
    pub fn explore<F: Fn() + Send + Sync + 'static>(&self, f: F) -> Report {
        f();
        Report { schedules: 1 }
    }
}

/// Explore `f` under the default [`Builder`]. In the default build this
/// simply runs `f` once — models double as ordinary concurrency tests.
pub fn model<F: Fn() + Send + Sync + 'static>(f: F) -> Report {
    Builder::default().explore(f)
}
