//! The `cfg(evorec_sched)` runtime: a cooperative, deterministic
//! scheduler plus a depth-first explorer over its decision tree.
//!
//! # How it works
//!
//! Every model thread is a real OS thread, but at most one is ever
//! *active*: all others are parked on the run-wide condvar waiting for
//! `active == Some(me)`. Before each visible operation (lock acquire,
//! atomic access, condvar wait/notify, spawn, join) the active thread
//! reaches a *scheduling point*: it computes the set of runnable
//! threads and consults the recorded decision path to pick which runs
//! next. The first execution records `index: 0` at every branch; the
//! explorer then backtracks — bump the last incrementable choice, drop
//! the suffix — and replays until the tree is exhausted. Because the
//! models are deterministic, replaying a prefix reproduces the exact
//! same branch points (this is asserted: a divergence aborts the run
//! as "nondeterministic model").
//!
//! Blocking is *logical*: a model `Mutex` tracks a `locked` bit inside
//! [`Inner`], and a thread only touches the real `std` lock after the
//! logical grant — at which point it is uncontended by construction,
//! since no other thread is running. Deadlock is therefore detectable
//! exactly: no runnable threads + not all finished = deadlock.
//!
//! Preemption bounding (CHESS-style) keeps big models tractable: once
//! a schedule has spent its budget of switches *away from a runnable
//! thread*, the active thread is forced to continue and no decision is
//! recorded. Bugs overwhelmingly need few preemptions, so a small
//! bound explores the interesting schedules at a fraction of the cost.
//!
//! Abort paths (a thread panicked, deadlock, step/schedule explosion)
//! set `done` and wake everyone; parked threads unwind with a marker
//! panic so their stacks run destructors, and the explorer re-raises
//! the original failure annotated with the schedule's decision path.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Payload of the internal panic used to unwind parked threads once a
/// run is over. Never reported as a model failure.
pub(crate) const ABORT_MARKER: &str = "evorec-sched: model run aborted";

const DEFAULT_MAX_SCHEDULES: usize = 1 << 18;
const MAX_STEPS_PER_SCHEDULE: usize = 50_000;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Run>, usize)>> = const { RefCell::new(None) };
}

/// The run (if any) this OS thread is executing a model under, plus its
/// model thread id.
pub(crate) fn current() -> Option<(Arc<Run>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(run: Arc<Run>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((run, tid)));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Yield point for operations on primitives that need no registration
/// (atomics): a no-op outside a model.
pub(crate) fn maybe_yield() {
    if let Some((run, me)) = current() {
        run.yield_point(me);
    }
}

pub(crate) fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<&'static str>()
        .is_some_and(|s| *s == ABORT_MARKER)
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// One recorded scheduling decision: which of `options` runnable
/// threads was picked. `options` is kept so replay can verify the
/// branch point reproduced identically.
#[derive(Clone, Copy, Debug)]
struct Choice {
    index: usize,
    options: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Block {
    Lock(usize),
    Read(usize),
    Write(usize),
    Cvar(usize),
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    Blocked(Block),
    Finished,
}

/// Logical state of one registered lock. A `Mutex` uses only `writer`;
/// an `RwLock` uses both fields.
#[derive(Clone, Copy, Debug, Default)]
struct LockState {
    writer: bool,
    readers: usize,
}

struct Inner {
    threads: Vec<TState>,
    locks: Vec<LockState>,
    cvars: Vec<VecDeque<usize>>,
    path: Vec<Choice>,
    cursor: usize,
    preemptions: usize,
    bound: Option<usize>,
    active: Option<usize>,
    done: bool,
    deadlock: bool,
    panic: Option<String>,
    steps: usize,
}

/// One schedule's worth of shared scheduler state. Primitives hold a
/// `Weak<Run>` so objects outliving their run fall back to `std`.
pub(crate) struct Run {
    mx: StdMutex<Inner>,
    cv: StdCondvar,
}

impl Run {
    fn new(prefix: Vec<Choice>, bound: Option<usize>) -> Run {
        Run {
            mx: StdMutex::new(Inner {
                threads: vec![TState::Runnable],
                locks: Vec::new(),
                cvars: Vec::new(),
                path: prefix,
                cursor: 0,
                preemptions: 0,
                bound,
                active: Some(0),
                done: false,
                deadlock: false,
                panic: None,
                steps: 0,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn inner(&self) -> StdMutexGuard<'_, Inner> {
        self.mx.lock().unwrap_or_else(|e| e.into_inner())
    }

    // ---- registration -------------------------------------------------

    pub(crate) fn register_lock(&self) -> usize {
        let mut inner = self.inner();
        inner.locks.push(LockState::default());
        inner.locks.len() - 1
    }

    pub(crate) fn register_cvar(&self) -> usize {
        let mut inner = self.inner();
        inner.cvars.push(VecDeque::new());
        inner.cvars.len() - 1
    }

    pub(crate) fn register_thread(&self) -> usize {
        let mut inner = self.inner();
        inner.threads.push(TState::Runnable);
        inner.threads.len() - 1
    }

    // ---- core scheduling ----------------------------------------------

    /// Pick the next active thread. `self_runnable` says whether the
    /// calling thread is still a candidate (false when it just blocked
    /// or finished). Sets `done` on deadlock/termination/abort.
    fn reschedule(&self, inner: &mut Inner, me: usize, self_runnable: bool) {
        inner.steps += 1;
        if inner.steps > MAX_STEPS_PER_SCHEDULE {
            self.abort_locked(
                inner,
                format!(
                    "schedule exceeded {MAX_STEPS_PER_SCHEDULE} scheduling points — \
                     does the model spin instead of blocking?"
                ),
            );
            return;
        }
        let candidates: Vec<usize> = inner
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, TState::Runnable))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            let all_finished = inner.threads.iter().all(|t| matches!(t, TState::Finished));
            inner.deadlock = !all_finished;
            inner.done = true;
            inner.active = None;
            self.cv.notify_all();
            return;
        }
        let chosen = if candidates.len() == 1 {
            candidates[0]
        } else if self_runnable && inner.bound.is_some_and(|b| inner.preemptions >= b) {
            // Preemption budget spent: the active thread must continue.
            // Not a recorded decision — replay reproduces it from the
            // same budget arithmetic.
            me
        } else {
            let idx = if inner.cursor < inner.path.len() {
                let c = inner.path[inner.cursor];
                if c.options != candidates.len() {
                    self.abort_locked(
                        inner,
                        format!(
                            "nondeterministic model: replay found {} runnable threads where \
                             the recorded schedule saw {} (decision #{})",
                            candidates.len(),
                            c.options,
                            inner.cursor
                        ),
                    );
                    return;
                }
                c.index
            } else {
                inner.path.push(Choice {
                    index: 0,
                    options: candidates.len(),
                });
                0
            };
            inner.cursor += 1;
            candidates[idx]
        };
        if self_runnable && chosen != me {
            inner.preemptions += 1;
        }
        inner.active = Some(chosen);
        self.cv.notify_all();
    }

    fn abort_locked(&self, inner: &mut Inner, msg: String) {
        if inner.panic.is_none() {
            inner.panic = Some(msg);
        }
        inner.done = true;
        inner.active = None;
        self.cv.notify_all();
    }

    /// Wait until this thread is scheduled. If the run was aborted in
    /// the meantime, unwind with the abort marker (or, when already
    /// panicking, limp along so destructors can finish — the run is
    /// over and real `std` primitives keep the limp path memory-safe).
    fn park(&self, mut inner: StdMutexGuard<'_, Inner>, me: usize) {
        loop {
            if inner.done {
                drop(inner);
                if std::thread::panicking() {
                    return;
                }
                panic!("{}", ABORT_MARKER);
            }
            if inner.active == Some(me) {
                return;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A plain scheduling point: any runnable thread (including the
    /// caller) may run next.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut inner = self.inner();
        if inner.done {
            drop(inner);
            if std::thread::panicking() {
                return;
            }
            panic!("{}", ABORT_MARKER);
        }
        self.reschedule(&mut inner, me, true);
        self.park(inner, me);
    }

    /// Called by a freshly spawned model thread; blocks until first
    /// scheduled.
    pub(crate) fn enter(&self, me: usize) {
        let inner = self.inner();
        self.park(inner, me);
    }

    /// Called exactly once as a model thread ends. A non-`None`
    /// `panic_msg` (a user panic, not the abort marker) fails the whole
    /// run.
    pub(crate) fn finish(&self, me: usize, panic_msg: Option<String>) {
        let mut inner = self.inner();
        inner.threads[me] = TState::Finished;
        if inner.done {
            self.cv.notify_all();
            return;
        }
        if let Some(msg) = panic_msg {
            self.abort_locked(&mut inner, msg);
            return;
        }
        for t in inner.threads.iter_mut() {
            if *t == TState::Blocked(Block::Join(me)) {
                *t = TState::Runnable;
            }
        }
        self.reschedule(&mut inner, me, false);
    }

    pub(crate) fn thread_finished(&self, tid: usize) -> bool {
        matches!(self.inner().threads[tid], TState::Finished)
    }

    pub(crate) fn join_wait(&self, me: usize, tid: usize) {
        self.yield_point(me);
        loop {
            let mut inner = self.inner();
            if matches!(inner.threads[tid], TState::Finished) {
                return;
            }
            inner.threads[me] = TState::Blocked(Block::Join(tid));
            self.reschedule(&mut inner, me, false);
            self.park(inner, me);
        }
    }

    // ---- locks ---------------------------------------------------------

    fn wake_lock_waiters(inner: &mut Inner, id: usize) {
        for t in inner.threads.iter_mut() {
            if matches!(
                t,
                TState::Blocked(Block::Lock(l) | Block::Read(l) | Block::Write(l)) if *l == id
            ) {
                *t = TState::Runnable;
            }
        }
    }

    /// Acquire a mutex (logically). `yield_first` is false when the
    /// caller is already at a scheduling point (condvar wakeup).
    pub(crate) fn mutex_acquire(&self, me: usize, id: usize, yield_first: bool) {
        if yield_first {
            self.yield_point(me);
        }
        loop {
            let mut inner = self.inner();
            if inner.done {
                // Aborted run: grant without bookkeeping so unwinding
                // destructors can proceed.
                drop(inner);
                if std::thread::panicking() {
                    return;
                }
                panic!("{}", ABORT_MARKER);
            }
            let lock = &mut inner.locks[id];
            if !lock.writer && lock.readers == 0 {
                lock.writer = true;
                return;
            }
            inner.threads[me] = TState::Blocked(Block::Lock(id));
            self.reschedule(&mut inner, me, false);
            self.park(inner, me);
        }
    }

    pub(crate) fn mutex_release(&self, _me: usize, id: usize) {
        let mut inner = self.inner();
        inner.locks[id].writer = false;
        Run::wake_lock_waiters(&mut inner, id);
    }

    pub(crate) fn read_acquire(&self, me: usize, id: usize) {
        self.yield_point(me);
        loop {
            let mut inner = self.inner();
            if inner.done {
                drop(inner);
                if std::thread::panicking() {
                    return;
                }
                panic!("{}", ABORT_MARKER);
            }
            let lock = &mut inner.locks[id];
            if !lock.writer {
                lock.readers += 1;
                return;
            }
            inner.threads[me] = TState::Blocked(Block::Read(id));
            self.reschedule(&mut inner, me, false);
            self.park(inner, me);
        }
    }

    pub(crate) fn read_release(&self, _me: usize, id: usize) {
        let mut inner = self.inner();
        inner.locks[id].readers = inner.locks[id].readers.saturating_sub(1);
        if inner.locks[id].readers == 0 {
            Run::wake_lock_waiters(&mut inner, id);
        }
    }

    pub(crate) fn write_acquire(&self, me: usize, id: usize) {
        self.yield_point(me);
        loop {
            let mut inner = self.inner();
            if inner.done {
                drop(inner);
                if std::thread::panicking() {
                    return;
                }
                panic!("{}", ABORT_MARKER);
            }
            let lock = &mut inner.locks[id];
            if !lock.writer && lock.readers == 0 {
                lock.writer = true;
                return;
            }
            inner.threads[me] = TState::Blocked(Block::Write(id));
            self.reschedule(&mut inner, me, false);
            self.park(inner, me);
        }
    }

    pub(crate) fn write_release(&self, me: usize, id: usize) {
        self.mutex_release(me, id);
    }

    // ---- condvars ------------------------------------------------------

    /// Atomically release the (logically held) mutex `lock_id` and
    /// block on condvar `cv_id`. On return the thread has been woken
    /// and scheduled, but does NOT hold the lock — the caller
    /// reacquires it, competing like any waiter (this mirrors real
    /// condvar semantics and explores the handoff races).
    pub(crate) fn cvar_wait(&self, me: usize, cv_id: usize, lock_id: usize) {
        let mut inner = self.inner();
        if inner.done {
            drop(inner);
            if std::thread::panicking() {
                return;
            }
            panic!("{}", ABORT_MARKER);
        }
        inner.locks[lock_id].writer = false;
        Run::wake_lock_waiters(&mut inner, lock_id);
        inner.cvars[cv_id].push_back(me);
        inner.threads[me] = TState::Blocked(Block::Cvar(cv_id));
        self.reschedule(&mut inner, me, false);
        self.park(inner, me);
    }

    /// Wake waiters. `notify_one` wakes the longest-waiting thread
    /// (FIFO) — a deliberate simplification of the "any waiter" real
    /// semantics; `notify_all` wakes every waiter, so models that must
    /// not depend on wake order should use it (as the production code
    /// does at every broadcast point).
    pub(crate) fn cvar_notify(&self, me: usize, cv_id: usize, all: bool) {
        self.yield_point(me);
        let mut inner = self.inner();
        if all {
            while let Some(t) = inner.cvars[cv_id].pop_front() {
                if inner.threads[t] == TState::Blocked(Block::Cvar(cv_id)) {
                    inner.threads[t] = TState::Runnable;
                }
            }
        } else if let Some(t) = inner.cvars[cv_id].pop_front() {
            if inner.threads[t] == TState::Blocked(Block::Cvar(cv_id)) {
                inner.threads[t] = TState::Runnable;
            }
        }
    }
}

// ---- exploration -------------------------------------------------------

/// What an exploration did: how many schedules were enumerated. A
/// returned `Report` means every one of them passed.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of complete schedules executed.
    pub schedules: usize,
}

/// Exploration knobs. Identical field layout to the uninstrumented
/// build so model tests compile under both.
#[derive(Clone, Copy, Debug, Default)]
pub struct Builder {
    /// Maximum context switches away from a still-runnable thread per
    /// schedule (CHESS-style preemption bounding). `None` = exhaustive.
    pub preemption_bound: Option<usize>,
    /// Abort exploration beyond this many schedules (0 = default cap of
    /// 262 144).
    pub max_schedules: usize,
}

struct RunOutcome {
    path: Vec<Choice>,
    panic: Option<String>,
    deadlock: bool,
}

fn run_once<F>(f: &Arc<F>, prefix: Vec<Choice>, bound: Option<usize>) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let run = Arc::new(Run::new(prefix, bound));
    let main = {
        let f = Arc::clone(f);
        let run = Arc::clone(&run);
        std::thread::spawn(move || {
            set_current(Arc::clone(&run), 0);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f()));
            let msg = match &result {
                Ok(()) => None,
                Err(p) if is_abort(p.as_ref()) => None,
                Err(p) => Some(panic_message(p.as_ref())),
            };
            run.finish(0, msg);
            clear_current();
        })
    };
    {
        let mut inner = run.inner();
        while !inner.done {
            inner = run.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }
    let _ = main.join();
    let inner = run.inner();
    RunOutcome {
        path: inner.path.clone(),
        panic: inner.panic.clone(),
        deadlock: inner.deadlock,
    }
}

fn path_indices(path: &[Choice]) -> Vec<usize> {
    path.iter().map(|c| c.index).collect()
}

impl Builder {
    /// Exhaustively execute `f` under every schedule within the bounds,
    /// depth-first. Panics — annotated with the failing schedule's
    /// decision path so it can be studied — if any schedule panics,
    /// deadlocks, or the schedule space overflows the cap.
    pub fn explore<F: Fn() + Send + Sync + 'static>(&self, f: F) -> Report {
        let f = Arc::new(f);
        let cap = if self.max_schedules == 0 {
            DEFAULT_MAX_SCHEDULES
        } else {
            self.max_schedules
        };
        let mut prefix: Vec<Choice> = Vec::new();
        let mut schedules = 0usize;
        loop {
            let out = run_once(&f, prefix, self.preemption_bound);
            schedules += 1;
            if let Some(msg) = out.panic {
                panic!(
                    "sched model failed on schedule #{schedules} (decision path {:?}): {msg}",
                    path_indices(&out.path)
                );
            }
            if out.deadlock {
                panic!(
                    "sched model deadlocked on schedule #{schedules} (decision path {:?})",
                    path_indices(&out.path)
                );
            }
            // Depth-first backtrack: bump the deepest incrementable
            // decision, discard everything after it.
            let mut path = out.path;
            loop {
                match path.last_mut() {
                    None => return Report { schedules },
                    Some(c) if c.index + 1 < c.options => {
                        c.index += 1;
                        break;
                    }
                    Some(_) => {
                        path.pop();
                    }
                }
            }
            assert!(
                schedules < cap,
                "sched exploration exceeded {cap} schedules — shrink the model or set \
                 Builder::preemption_bound"
            );
            prefix = path;
        }
    }
}

