//! Offline shim for `serde`.
//!
//! This build must succeed with no network access, so the workspace
//! vendors a minimal stand-in: the `Serialize`/`Deserialize` *derive
//! macros* (no-ops from [`serde_derive`]) plus marker traits of the same
//! names so `use serde::{Serialize, Deserialize}` imports both the macro
//! and a nameable trait. No code in the tree currently requires a
//! `T: Serialize` bound, so the traits carry no methods.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (method-free in this shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (method-free in this shim).
pub trait Deserialize<'de> {}
