//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API (guards
//! returned directly, no poison `Result`s). A poisoned std lock — only
//! possible if a holder panicked — is recovered via `into_inner`, i.e.
//! poison is ignored, matching real `parking_lot`'s non-poisoning
//! semantics.

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with the `parking_lot::RwLock` interface.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with the `parking_lot::Mutex` interface.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}
