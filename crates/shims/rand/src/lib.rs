//! Offline shim for `rand` 0.8.
//!
//! Implements the API surface the synthetic workload generators and
//! tests use — [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] — on top of a
//! SplitMix64 core. Deterministic for a given seed, which is all the
//! workloads require (they never ask for cryptographic strength).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random-number sources.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range` (half-open or inclusive integer and
    /// float ranges).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0, 1]");
        sample_f64(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform f64 in `[0, 1)` using the top 53 bits.
fn sample_f64<G: Rng + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;

    /// Draw uniformly from the range.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as u128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let draw = self.start + sample_f64(rng) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; step to the
        // previous representable float to honour the half-open contract.
        if draw >= self.end {
            self.end.next_down()
        } else {
            draw
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + sample_f64(rng) * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 core).
    ///
    /// Stands in for `rand::rngs::StdRng`; statistical quality is ample
    /// for synthetic workload generation, and streams are reproducible
    /// per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(1..=5);
            assert!((1..=5).contains(&i));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
