//! Fixture tests: each rule must fire on a minimal positive example and
//! stay silent on the sanctioned alternative.

use evorec_analysis::rules::{lint_source, FileClass};

const HOT: FileClass = FileClass {
    hot_path: true,
    test_file: false,
};
const PLAIN: FileClass = FileClass {
    hot_path: false,
    test_file: false,
};
const TEST_FILE: FileClass = FileClass {
    hot_path: false,
    test_file: true,
};

fn rules_hit(source: &str, class: FileClass) -> Vec<&'static str> {
    lint_source(source, class).into_iter().map(|f| f.rule).collect()
}

// ---- nan-sort -----------------------------------------------------------

#[test]
fn nan_sort_fires_on_partial_cmp_comparator() {
    let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
    assert_eq!(rules_hit(src, PLAIN), vec!["nan-sort"]);
}

#[test]
fn nan_sort_fires_in_max_by_and_binary_search_by() {
    let src = "fn f(v: &[f64], x: f64) {\n\
               let _ = v.iter().max_by(|a, b| a.partial_cmp(b).unwrap());\n\
               let _ = v.binary_search_by(|p| p.partial_cmp(&x).unwrap());\n}";
    assert_eq!(rules_hit(src, PLAIN), vec!["nan-sort", "nan-sort"]);
}

#[test]
fn nan_sort_quiet_on_total_cmp_and_non_sort_partial_cmp() {
    let src = "fn f(v: &mut Vec<f64>, a: f64, b: f64) -> Option<std::cmp::Ordering> {\n\
               v.sort_by(|x, y| x.total_cmp(y));\n\
               a.partial_cmp(&b)\n}";
    assert!(rules_hit(src, PLAIN).is_empty());
}

#[test]
fn nan_sort_quiet_when_pattern_only_in_string() {
    let src = r#"fn f() { let _ = "sort_by(|a,b| a.partial_cmp(b))"; }"#;
    assert!(rules_hit(src, PLAIN).is_empty());
}

// ---- hot-path-panic -----------------------------------------------------

#[test]
fn hot_path_panic_fires_on_unwrap_expect_panic() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               let a = x.unwrap();\n\
               let b = x.expect(\"present\");\n\
               if a + b == 0 { panic!(\"impossible\"); }\n\
               a\n}";
    assert_eq!(
        rules_hit(src, HOT),
        vec!["hot-path-panic", "hot-path-panic", "hot-path-panic"]
    );
}

#[test]
fn hot_path_panic_only_applies_to_hot_path_crates() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert!(rules_hit(src, PLAIN).is_empty());
    assert_eq!(rules_hit(src, HOT), vec!["hot-path-panic"]);
}

#[test]
fn hot_path_panic_exempts_cfg_test_modules_and_test_fns() {
    let src = "fn prod(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() { prod(None).checked_add(1).unwrap(); panic!(\"boom\"); }\n\
               }";
    assert!(rules_hit(src, HOT).is_empty());
}

#[test]
fn hot_path_panic_does_not_exempt_cfg_not_test() {
    let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert_eq!(rules_hit(src, HOT), vec!["hot-path-panic"]);
}

#[test]
fn hot_path_panic_quiet_on_assert_and_unwrap_or_family() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               assert!(x.is_some(), \"precondition\");\n\
               x.unwrap_or_else(|| 0).max(x.unwrap_or_default())\n}";
    assert!(rules_hit(src, HOT).is_empty());
}

// ---- relaxed-publish ----------------------------------------------------

#[test]
fn relaxed_publish_fires_on_pointer_statements() {
    let src = "fn f(slot: &std::sync::atomic::AtomicPtr<u32>, p: Box<u32>) {\n\
               slot.store(Box::into_raw(p), Ordering::Relaxed);\n}";
    assert_eq!(rules_hit(src, PLAIN), vec!["relaxed-publish"]);
}

#[test]
fn relaxed_publish_fires_on_annotated_field() {
    let src = "struct S {\n\
               // lint: publishes\n\
               pub epoch: AtomicU64,\n\
               }\n\
               impl S { fn bump(&self) { self.epoch.fetch_add(1, Ordering::Relaxed); } }";
    assert_eq!(rules_hit(src, PLAIN), vec!["relaxed-publish"]);
}

#[test]
fn relaxed_publish_quiet_on_plain_counters_and_acqrel_publishes() {
    let src = "struct S {\n\
               // lint: publishes\n\
               epoch: AtomicU64,\n\
               hits: AtomicU64,\n\
               }\n\
               impl S { fn f(&self) {\n\
               self.hits.fetch_add(1, Ordering::Relaxed);\n\
               self.epoch.fetch_add(1, Ordering::AcqRel);\n\
               } }";
    assert!(rules_hit(src, PLAIN).is_empty());
}

// ---- unbounded-queue ----------------------------------------------------

#[test]
fn unbounded_queue_fires_on_the_usual_constructors() {
    let src = "fn f() {\n\
               let (_tx, _rx) = std::sync::mpsc::channel::<u32>();\n\
               }";
    // `channel::<u32>()` — the turbofish sits between name and paren,
    // so exercise the plain form too.
    let src2 = "fn f() { let (_tx, _rx) = mpsc::channel(); let _q = unbounded(); }";
    let src3 = "fn f() { let (_tx, _rx) = unbounded_channel(); }";
    assert!(rules_hit(src, PLAIN).len() <= 1, "turbofish form is best-effort");
    assert_eq!(rules_hit(src2, PLAIN), vec!["unbounded-queue", "unbounded-queue"]);
    assert_eq!(rules_hit(src3, PLAIN), vec!["unbounded-queue"]);
}

#[test]
fn unbounded_queue_quiet_on_bounded_constructions() {
    let src = "fn f() { let log = BoundedLog::bounded(64); let (tx, rx) = sync_channel(8); let _ = (log, tx, rx); }";
    assert!(rules_hit(src, PLAIN).is_empty());
}

// ---- sleep-in-test ------------------------------------------------------

#[test]
fn sleep_in_test_fires_in_test_files_and_cfg_test() {
    let src = "fn t() { std::thread::sleep(std::time::Duration::from_millis(20)); }";
    assert_eq!(rules_hit(src, TEST_FILE), vec!["sleep-in-test"]);
    let src2 = "#[cfg(test)]\nmod tests {\n fn t() { std::thread::sleep(d()); }\n}";
    assert_eq!(rules_hit(src2, PLAIN), vec!["sleep-in-test"]);
}

#[test]
fn sleep_outside_tests_is_left_to_clippy() {
    let src = "fn backoff() { std::thread::sleep(std::time::Duration::from_millis(1)); }";
    assert!(rules_hit(src, PLAIN).is_empty());
}

// ---- lock-order ---------------------------------------------------------

#[test]
fn lock_order_fires_on_inverted_acquisition() {
    let src = "struct Shard {\n\
               // lint: lock-order writer < map\n\
               writer: Mutex<()>,\n\
               map: RwLock<Map>,\n\
               }\n\
               impl Shard {\n\
               fn bad(&self) { let m = self.map.write(); let w = self.writer.lock(); drop((m, w)); }\n\
               }";
    assert_eq!(rules_hit(src, PLAIN), vec!["lock-order"]);
}

#[test]
fn lock_order_quiet_on_declared_order_or_single_lock() {
    let src = "struct Shard {\n\
               // lint: lock-order writer < map\n\
               writer: Mutex<()>,\n\
               map: RwLock<Map>,\n\
               }\n\
               impl Shard {\n\
               fn good(&self) { let w = self.writer.lock(); let m = self.map.write(); drop((w, m)); }\n\
               fn read_only(&self) { let m = self.map.read(); drop(m); }\n\
               fn write_only(&self) { let w = self.writer.lock(); drop(w); }\n\
               }";
    assert!(rules_hit(src, PLAIN).is_empty());
}

#[test]
fn lock_order_is_per_function_not_per_file() {
    // One function takes only `map`, another (later in the file) takes
    // only `writer`: no single function inverts the order.
    let src = "struct Shard {\n\
               // lint: lock-order writer < map\n\
               writer: Mutex<()>,\n\
               map: RwLock<Map>,\n\
               }\n\
               impl Shard {\n\
               fn only_map(&self) { let m = self.map.write(); drop(m); }\n\
               fn only_writer(&self) { let w = self.writer.lock(); drop(w); }\n\
               }";
    assert!(rules_hit(src, PLAIN).is_empty());
}

// ---- diagnostics --------------------------------------------------------

#[test]
fn findings_carry_positions_and_sorted_order() {
    let src = "fn f(x: Option<u32>) {\n    x.unwrap();\n    x.unwrap();\n}";
    let findings = lint_source(src, HOT);
    assert_eq!(findings.len(), 2);
    assert_eq!(findings[0].line, 2);
    assert_eq!(findings[1].line, 3);
    assert!(findings[0].col > 1);
    assert!(findings[0].message.contains("unwrap"));
}
