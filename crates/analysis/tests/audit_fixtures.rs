//! Paired tainted/clean fixture programs pinning the audit pipeline's
//! behaviour: every taint source, sink and cleanser has a twin pair
//! (the tainted member must fire, the clean member must not), panic
//! reachability is pinned through a multi-hop chain, and the lock pass
//! is pinned on an inferred-vs-annotated mismatch. The final test runs
//! the full pipeline over the real workspace and requires zero deny
//! findings with an empty allowlist — the audit gate this PR ships.

use evorec_analysis::audit::{audit_sources, collect_workspace, SourceFile};
use evorec_analysis::{AuditFinding, Severity};
use std::path::Path;

fn src(label: &str, source: &str) -> SourceFile {
    let crate_name = label
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("workspace")
        .to_string();
    SourceFile {
        label: label.to_string(),
        crate_name,
        source: source.to_string(),
    }
}

/// Deny-severity rule ids produced by auditing `files`.
fn deny_rules(files: &[SourceFile]) -> Vec<&'static str> {
    audit_sources(files)
        .into_iter()
        .filter(|f| f.severity == Severity::Deny)
        .map(|f| f.rule)
        .collect()
}

fn assert_pair(tainted: &[SourceFile], clean: &[SourceFile], rule: &'static str) {
    let hot = deny_rules(tainted);
    assert!(hot.contains(&rule), "tainted twin must fire {rule}: {hot:?}");
    let cold = deny_rules(clean);
    assert!(!cold.contains(&rule), "clean twin must not fire {rule}: {cold:?}");
}

// ---- taint sources ------------------------------------------------------

#[test]
fn source_hash_iteration_vs_keyed_container() {
    let tainted = [src(
        "crates/core/src/w.rs",
        "pub struct Weights { pub map: FxHashMap<u32, f64> }\n\
         impl Weights {\n\
             pub fn mass(&self) -> f64 {\n\
                 let mut total = 0.0;\n\
                 for (_k, v) in self.map.iter() { total += v; }\n\
                 total\n\
             }\n\
         }\n\
         pub fn fingerprint(w: &Weights, h: &mut Hasher) {\n\
             digest_step(h, w.mass());\n\
         }",
    )];
    let clean = [src(
        "crates/core/src/w.rs",
        "pub struct Weights { pub map: BTreeMap<u32, f64> }\n\
         impl Weights {\n\
             pub fn mass(&self) -> f64 {\n\
                 let mut total = 0.0;\n\
                 for (_k, v) in self.map.iter() { total += v; }\n\
                 total\n\
             }\n\
         }\n\
         pub fn fingerprint(w: &Weights, h: &mut Hasher) {\n\
             digest_step(h, w.mass());\n\
         }",
    )];
    assert_pair(&tainted, &clean, "taint-into-fingerprint");
}

#[test]
fn source_clock_read() {
    let tainted = [src(
        "crates/stream/src/t.rs",
        "pub fn stamp(h: &mut Hasher) {\n\
             let t = SystemTime::now();\n\
             digest_step(h, t);\n\
         }",
    )];
    let clean = [src(
        "crates/stream/src/t.rs",
        "pub fn stamp(h: &mut Hasher) {\n\
             let t = 0u64;\n\
             digest_step(h, t);\n\
         }",
    )];
    assert_pair(&tainted, &clean, "taint-into-fingerprint");
}

#[test]
fn source_unseeded_rng_into_publish() {
    let tainted = [src(
        "crates/stream/src/r.rs",
        "pub fn reseed(live: &LiveContext) {\n\
             let noise = thread_rng();\n\
             live.publish(noise);\n\
         }",
    )];
    let clean = [src(
        "crates/stream/src/r.rs",
        "pub fn reseed(live: &LiveContext) {\n\
             let noise = 42u64;\n\
             live.publish(noise);\n\
         }",
    )];
    assert_pair(&tainted, &clean, "taint-into-publish");
}

#[test]
fn source_thread_identity_into_codec() {
    let tainted = [src(
        "crates/kb/src/c.rs",
        "pub fn record(enc: &mut DeltaCodec) {\n\
             let id = std::thread::current();\n\
             enc.encode_delta(id);\n\
         }",
    )];
    let clean = [src(
        "crates/kb/src/c.rs",
        "pub fn record(enc: &mut DeltaCodec) {\n\
             let id = 7u64;\n\
             enc.encode_delta(id);\n\
         }",
    )];
    assert_pair(&tainted, &clean, "taint-into-codec");
}

// ---- cleansers ----------------------------------------------------------

#[test]
fn cleanser_total_order_sort() {
    let tainted = [src(
        "crates/core/src/s.rs",
        "pub struct Names { pub set: FxHashSet<u32> }\n\
         pub fn digest(n: &Names, h: &mut Hasher) {\n\
             let keys: Vec<u32> = n.set.iter().collect();\n\
             digest_step(h, keys);\n\
         }",
    )];
    let clean = [src(
        "crates/core/src/s.rs",
        "pub struct Names { pub set: FxHashSet<u32> }\n\
         pub fn digest(n: &Names, h: &mut Hasher) {\n\
             let mut keys: Vec<u32> = n.set.iter().collect();\n\
             keys.sort_unstable();\n\
             digest_step(h, keys);\n\
         }",
    )];
    assert_pair(&tainted, &clean, "taint-into-fingerprint");
}

#[test]
fn cleanser_collect_into_keyed_container() {
    let tainted = [src(
        "crates/core/src/k.rs",
        "pub struct Weights { pub map: FxHashMap<u32, f64> }\n\
         pub fn digest(w: &Weights, h: &mut Hasher) {\n\
             let pairs: Vec<(u32, f64)> = w.map.iter().collect();\n\
             digest_step(h, pairs);\n\
         }",
    )];
    let clean = [src(
        "crates/core/src/k.rs",
        "pub struct Weights { pub map: FxHashMap<u32, f64> }\n\
         pub fn digest(w: &Weights, h: &mut Hasher) {\n\
             let pairs: BTreeMap<u32, f64> = w.map.iter().collect();\n\
             digest_step(h, pairs);\n\
         }",
    )];
    assert_pair(&tainted, &clean, "taint-into-fingerprint");
}

#[test]
fn cleanser_commutative_fold_vs_float_accumulation() {
    let tainted = [src(
        "crates/core/src/f.rs",
        "pub struct Weights { pub map: FxHashMap<u32, f64> }\n\
         pub fn digest(w: &Weights, h: &mut Hasher) {\n\
             let total: f64 = w.map.values().fold(0.0, |a, b| a + b);\n\
             digest_step(h, total);\n\
         }",
    )];
    let clean = [src(
        "crates/core/src/f.rs",
        "pub struct Tags { pub map: FxHashMap<u32, u64> }\n\
         pub fn digest(t: &Tags, h: &mut Hasher) {\n\
             let total: u64 = t.map.values().fold(0u64, |a, b| a ^ b);\n\
             digest_step(h, total);\n\
         }",
    )];
    assert_pair(&tainted, &clean, "taint-into-fingerprint");
}

#[test]
fn cleanser_obs_recording_surface() {
    // Same shape on both sides: a clock read inside a `start` method
    // whose result flows into a publish. The only difference is the
    // receiver type — `Stamper` is ordinary workspace code (the clock
    // taint must fire), `Tracer`/`SpanGuard` are the obs recording
    // surface, registered as a cleanser: its timings terminate in the
    // metrics plane and its handles are sequence ids, not clock values.
    let tainted = [src(
        "crates/stream/src/o.rs",
        "pub struct Stamper { pub seq: u64 }\n\
         impl Stamper {\n\
             pub fn start(&self, parent: u64) -> u64 {\n\
                 let t = Instant::now();\n\
                 t\n\
             }\n\
         }\n\
         pub fn commit(s: &Stamper, live: &LiveContext) {\n\
             let handle = s.start(0);\n\
             live.publish(handle);\n\
         }",
    )];
    let clean = [src(
        "crates/stream/src/o.rs",
        "pub struct SpanGuard { pub id: u64, pub start: u64 }\n\
         pub struct Tracer { pub seq: u64 }\n\
         impl Tracer {\n\
             pub fn start(&self, parent: u64) -> SpanGuard {\n\
                 let t = Instant::now();\n\
                 SpanGuard { id: parent, start: t }\n\
             }\n\
         }\n\
         pub fn commit(tracer: &Tracer, live: &LiveContext) {\n\
             let guard = tracer.start(0);\n\
             let handle = guard.handle();\n\
             live.publish(handle);\n\
         }",
    )];
    assert_pair(&tainted, &clean, "taint-into-publish");
}

#[test]
fn cleanser_telemetry_metrics_plane() {
    // The metrics-retention plane one layer up from obs: a scrape
    // watermark derived from a clock read flows into a publish. With
    // an ordinary receiver (`ScrapeLoop`) the clock taint must fire;
    // `TelemetryCollector`/`FlightRecorder` are registered terminal
    // cleansers — their clock reads land in the ring TSDB and flight
    // ring, which are only ever rendered, never replayed.
    let tainted = [src(
        "crates/stream/src/t.rs",
        "pub struct ScrapeLoop { pub scrapes: u64 }\n\
         impl ScrapeLoop {\n\
             pub fn scrape(&self, epoch: u64) -> u64 {\n\
                 let now = Instant::now();\n\
                 now\n\
             }\n\
         }\n\
         pub fn watermark(s: &ScrapeLoop, live: &LiveContext) {\n\
             let mark = s.scrape(4);\n\
             live.publish(mark);\n\
         }",
    )];
    let clean = [src(
        "crates/stream/src/t.rs",
        "pub struct FlightRecorder { pub events: u64 }\n\
         pub struct TelemetryCollector { pub scrapes: u64 }\n\
         impl TelemetryCollector {\n\
             pub fn scrape(&self, epoch: u64) -> u64 {\n\
                 let now = Instant::now();\n\
                 now\n\
             }\n\
         }\n\
         pub fn watermark(c: &TelemetryCollector, rec: &FlightRecorder, live: &LiveContext) {\n\
             let mark = c.scrape(4);\n\
             rec.note(mark);\n\
             live.publish(4);\n\
         }",
    )];
    assert_pair(&tainted, &clean, "taint-into-publish");
}

#[test]
fn cleanser_serve_edge_plane() {
    // The HTTP edge above the engine: a request-latency clock read
    // flowing into a publish. With an ordinary receiver (`Gateway`)
    // the clock taint must fire; `AdmissionController`/`ServerStats`
    // are registered terminal cleansers — edge timings land in
    // latency histograms and token buckets, which are rendered or
    // consumed as control flow, never replayed.
    let tainted = [src(
        "crates/serve/src/t.rs",
        "pub struct Gateway { pub served: u64 }\n\
         impl Gateway {\n\
             pub fn admit(&self, tenant: u64) -> u64 {\n\
                 let now = Instant::now();\n\
                 now\n\
             }\n\
         }\n\
         pub fn edge(g: &Gateway, live: &LiveContext) {\n\
             let stamp = g.admit(4);\n\
             live.publish(stamp);\n\
         }",
    )];
    let clean = [src(
        "crates/serve/src/t.rs",
        "pub struct ServerStats { pub served: u64 }\n\
         pub struct AdmissionController { pub slots: u64 }\n\
         impl AdmissionController {\n\
             pub fn admit(&self, tenant: u64) -> u64 {\n\
                 let now = Instant::now();\n\
                 now\n\
             }\n\
         }\n\
         pub fn edge(c: &AdmissionController, stats: &ServerStats, live: &LiveContext) {\n\
             let stamp = c.admit(4);\n\
             stats.record(stamp);\n\
             live.publish(4);\n\
         }",
    )];
    assert_pair(&tainted, &clean, "taint-into-publish");
}

// ---- multi-hop evidence -------------------------------------------------

#[test]
fn multi_hop_taint_path_spans_three_files() {
    let files = [
        src(
            "crates/core/src/a.rs",
            "pub struct Weights { pub map: FxHashMap<u32, f64> }\n\
             impl Weights {\n\
                 pub fn mass(&self) -> f64 {\n\
                     let mut total = 0.0;\n\
                     for (_k, v) in self.map.iter() { total += v; }\n\
                     total\n\
                 }\n\
             }",
        ),
        src(
            "crates/core/src/b.rs",
            "pub fn weigh(w: &Weights) -> f64 { w.mass() * 2.0 }",
        ),
        src(
            "crates/core/src/c.rs",
            "pub fn fingerprint(w: &Weights, h: &mut Hasher) {\n\
                 digest_step(h, weigh(w));\n\
             }",
        ),
    ];
    let findings = audit_sources(&files);
    let hit = findings
        .iter()
        .find(|f| f.rule == "taint-into-fingerprint" && f.path == "crates/core/src/c.rs")
        .unwrap_or_else(|| panic!("multi-hop taint not found: {findings:?}"));
    assert!(
        hit.chain.len() >= 3,
        "expected a source→helper→sink chain with >=3 hops: {:?}",
        hit.chain
    );
}

#[test]
fn multi_hop_panic_chain_from_serve_entry() {
    let tainted = [src(
        "crates/core/src/p.rs",
        "pub struct Recommender { pub k: usize }\n\
         impl Recommender {\n\
             pub fn recommend(&self) -> f64 { helper_mid(self.k) }\n\
         }\n\
         fn helper_mid(k: usize) -> f64 { helper_leaf(k) }\n\
         fn helper_leaf(k: usize) -> f64 { lookup(k).unwrap() }",
    )];
    let clean = [src(
        "crates/core/src/p.rs",
        "pub struct Recommender { pub k: usize }\n\
         impl Recommender {\n\
             pub fn recommend(&self) -> f64 { helper_mid(self.k) }\n\
         }\n\
         fn helper_mid(k: usize) -> f64 { helper_leaf(k) }\n\
         fn helper_leaf(k: usize) -> f64 { lookup(k).unwrap_or(0.0) }",
    )];
    let findings = audit_sources(&tainted);
    let hit = findings
        .iter()
        .find(|f| f.rule == "panic-reachable")
        .unwrap_or_else(|| panic!("panic chain not found: {findings:?}"));
    assert!(
        hit.chain.len() >= 3,
        "expected entry→mid→leaf chain with >=3 hops: {:?}",
        hit.chain
    );
    assert!(!deny_rules(&clean).contains(&"panic-reachable"));
}

// ---- lock order ---------------------------------------------------------

#[test]
fn lock_acquisition_contradicting_annotation_is_denied() {
    let tainted = [src(
        "crates/adapt/src/l.rs",
        "pub struct Stores { index: Mutex<u32>, store: Mutex<u32> }\n\
         impl Stores {\n\
             // lint: lock-order index < store\n\
             pub fn rebuild(&self) {\n\
                 let s = self.store.lock();\n\
                 let i = self.index.lock();\n\
                 let _ = (s, i);\n\
             }\n\
         }",
    )];
    let clean = [src(
        "crates/adapt/src/l.rs",
        "pub struct Stores { index: Mutex<u32>, store: Mutex<u32> }\n\
         impl Stores {\n\
             // lint: lock-order index < store\n\
             pub fn rebuild(&self) {\n\
                 let i = self.index.lock();\n\
                 let s = self.store.lock();\n\
                 let _ = (i, s);\n\
             }\n\
         }",
    )];
    assert_pair(&tainted, &clean, "lock-order-undeclared");
}

// ---- the gate itself ----------------------------------------------------

#[test]
fn workspace_audit_is_clean_with_empty_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let files = collect_workspace(&root).expect("walk workspace sources");
    assert!(files.len() > 50, "workspace walk looks truncated: {}", files.len());
    let denies: Vec<AuditFinding> = audit_sources(&files)
        .into_iter()
        .filter(|f| f.severity == Severity::Deny)
        .collect();
    assert!(denies.is_empty(), "deny findings without allowlist cover: {denies:#?}");
    // The shipped allowlist must stay empty: real findings get fixed at
    // source, not acknowledged away.
    let allow = std::fs::read_to_string(root.join("audit-allow.txt")).unwrap_or_default();
    assert!(
        allow
            .lines()
            .all(|l| l.trim().is_empty() || l.trim().starts_with('#')),
        "audit-allow.txt must contain no entries at merge"
    );
}
