//! `evorec-lint`: walk the workspace sources and enforce the project
//! invariants (see `evorec_analysis::rules` for the rule table).
//!
//! ```text
//! cargo run -p evorec-analysis --bin evorec-lint [-- --root <dir>] [--allowlist <file>] [--json]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (or stale/invalid allowlist
//! entries), `2` usage or I/O error. Diagnostics are
//! `path:line:col: [rule] message`, one per line, ready for editors;
//! `--json` emits one machine-readable document instead (same shape
//! as `evorec-audit --json`, for the merged CI findings artifact).

use evorec_analysis::json::{self, Obj};
use evorec_analysis::rules::{lint_source, FileClass};
use evorec_analysis::Allowlist;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".github", ".claude"];

/// Hot-path crates: `hot-path-panic` applies to their `src/` trees.
const HOT_PATH_CRATES: [&str; 8] =
    ["core", "stream", "windows", "adapt", "kb", "obs", "telemetry", "serve"];

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut as_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--allowlist" => match args.next() {
                Some(f) => allowlist_path = Some(PathBuf::from(f)),
                None => return usage("--allowlist needs a file"),
            },
            "--json" => as_json = true,
            "--help" | "-h" => {
                eprintln!(
                    "evorec-lint [--root <dir>] [--allowlist <file>] [--json]\n\
                     Lints workspace sources against the project invariants; \
                     default allowlist is <root>/lint-allow.txt."
                );
                return 0;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint-allow.txt"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(list) => list,
            Err(msg) => {
                eprintln!("error: {}: {msg}", allowlist_path.display());
                return 1;
            }
        },
        Err(_) => Allowlist::default(),
    };

    let mut files = Vec::new();
    collect_rust_files(&root, &mut files);
    files.sort();

    let mut shown: Vec<String> = Vec::new();
    let mut findings_shown = 0usize;
    let mut used_entries = vec![false; allowlist.entries.len()];
    for file in &files {
        let Ok(source) = std::fs::read_to_string(file) else {
            eprintln!("error: cannot read {}", file.display());
            return 2;
        };
        let rel = relative_label(&root, file);
        for finding in lint_source(&source, classify(&rel)) {
            if let Some(idx) = allowlist.lookup(finding.rule, &rel, finding.line) {
                used_entries[idx] = true;
                continue;
            }
            if as_json {
                shown.push(
                    Obj::new()
                        .str("rule", finding.rule)
                        .str("path", &rel)
                        .num("line", u64::from(finding.line))
                        .num("col", u64::from(finding.col))
                        .str("severity", "deny")
                        .str("message", &finding.message)
                        .finish(),
                );
            } else {
                println!(
                    "{rel}:{}:{}: [{}] {}",
                    finding.line, finding.col, finding.rule, finding.message
                );
            }
            findings_shown += 1;
        }
    }

    let mut stale_entries: Vec<String> = Vec::new();
    let mut stale = 0usize;
    for (idx, used) in used_entries.iter().enumerate() {
        if !used {
            let e = &allowlist.entries[idx];
            if as_json {
                stale_entries.push(
                    Obj::new()
                        .str("rule", &e.rule)
                        .str("path", &e.path)
                        .num("line", u64::from(e.line))
                        .finish(),
                );
            } else {
                println!(
                    "{}: stale allowlist entry: [{}] {}:{} no longer fires — remove it",
                    allowlist_path.display(),
                    e.rule,
                    e.path,
                    e.line
                );
            }
            stale += 1;
        }
    }

    if as_json {
        println!(
            "{}",
            Obj::new()
                .str("tool", "evorec-lint")
                .raw("findings", &json::array(&shown))
                .raw("stale", &json::array(&stale_entries))
                .finish()
        );
    }

    if findings_shown + stale > 0 {
        eprintln!(
            "evorec-lint: {findings_shown} finding(s), {stale} stale allowlist entr(y/ies) \
             across {} files",
            files.len()
        );
        1
    } else {
        eprintln!("evorec-lint: clean ({} files)", files.len());
        0
    }
}

fn usage(msg: &str) -> i32 {
    eprintln!("error: {msg} (try --help)");
    2
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rust_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Repo-relative path with forward slashes (the allowlist key format).
fn relative_label(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn classify(rel: &str) -> FileClass {
    let hot_path = HOT_PATH_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
    let test_file = rel.starts_with("tests/") || rel.contains("/tests/");
    FileClass {
        hot_path,
        test_file,
    }
}
