//! `evorec-audit`: workspace call-graph and determinism-taint audit.
//!
//! ```text
//! cargo run -p evorec-analysis --bin evorec-audit [-- --root <dir>] [--allowlist <file>] [--json]
//! ```
//!
//! Where `evorec-lint` checks token-local invariants file by file,
//! `evorec-audit` parses the whole workspace, builds a cross-crate call
//! graph, and runs three global passes: determinism taint (unordered
//! iteration / clocks / RNG flowing into fingerprints, publishes,
//! codecs, reports), panic reachability from the public serve surface,
//! and lock-order inference against the `// lint: lock-order`
//! annotations. Findings carry the full source → call-chain → sink
//! evidence path.
//!
//! Exit codes: `0` clean (warn-level findings do not fail), `1` deny
//! findings or stale/invalid allowlist entries, `2` usage or I/O
//! error. Default allowlist is `<root>/audit-allow.txt`;
//! `taint-into-fingerprint` can never be allowlisted.

use evorec_analysis::audit::{self, AuditFinding};
use evorec_analysis::json::{self, Obj};
use evorec_analysis::Allowlist;
use std::path::PathBuf;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut as_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--allowlist" => match args.next() {
                Some(f) => allowlist_path = Some(PathBuf::from(f)),
                None => return usage("--allowlist needs a file"),
            },
            "--json" => as_json = true,
            "--help" | "-h" => {
                eprintln!(
                    "evorec-audit [--root <dir>] [--allowlist <file>] [--json]\n\
                     Workspace-global determinism/panic/lock-order audit; \
                     default allowlist is <root>/audit-allow.txt."
                );
                return 0;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("audit-allow.txt"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match Allowlist::parse_with_policy(&text, &audit::NEVER_ALLOWLIST) {
            Ok(list) => list,
            Err(msg) => {
                eprintln!("error: {}: {msg}", allowlist_path.display());
                return 1;
            }
        },
        Err(_) => Allowlist::default(),
    };

    let files = match audit::collect_workspace(&root) {
        Ok(files) => files,
        Err(msg) => {
            eprintln!("error: {msg}");
            return 2;
        }
    };
    let file_count = files.len();
    let findings = audit::audit_sources(&files);
    let outcome = audit::apply_allowlist(findings, &allowlist);

    if as_json {
        println!("{}", render_json(&outcome));
    } else {
        for f in &outcome.findings {
            println!(
                "{}:{}: [{}] {}: {}",
                f.path,
                f.line,
                f.rule,
                f.severity.label(),
                f.message
            );
            for hop in &f.chain {
                println!("    - {hop}");
            }
        }
        for e in &outcome.stale {
            println!(
                "{}: stale allowlist entry: [{}] {}:{} no longer fires — remove it",
                allowlist_path.display(),
                e.rule,
                e.path,
                e.line
            );
        }
    }

    let deny = outcome
        .findings
        .iter()
        .filter(|f| f.severity == audit::Severity::Deny)
        .count();
    let warn = outcome.findings.len() - deny;
    if outcome.failed() {
        eprintln!(
            "evorec-audit: {deny} deny, {warn} warn finding(s), {} stale allowlist entr(y/ies) \
             across {file_count} files",
            outcome.stale.len()
        );
        1
    } else {
        eprintln!(
            "evorec-audit: clean ({file_count} files, {warn} warn finding(s), \
             {} acknowledged)",
            outcome.allowlisted.len()
        );
        0
    }
}

fn usage(msg: &str) -> i32 {
    eprintln!("error: {msg} (try --help)");
    2
}

fn finding_json(f: &AuditFinding) -> String {
    Obj::new()
        .str("rule", f.rule)
        .str("path", &f.path)
        .num("line", u64::from(f.line))
        .str("severity", f.severity.label())
        .str("message", &f.message)
        .str_array("chain", &f.chain)
        .finish()
}

fn render_json(outcome: &audit::AuditOutcome) -> String {
    let findings: Vec<String> = outcome.findings.iter().map(finding_json).collect();
    let allowlisted: Vec<String> = outcome
        .allowlisted
        .iter()
        .map(|(f, reason)| {
            Obj::new()
                .raw("finding", &finding_json(f))
                .str("reason", reason)
                .finish()
        })
        .collect();
    let stale: Vec<String> = outcome
        .stale
        .iter()
        .map(|e| {
            Obj::new()
                .str("rule", &e.rule)
                .str("path", &e.path)
                .num("line", u64::from(e.line))
                .finish()
        })
        .collect();
    Obj::new()
        .str("tool", "evorec-audit")
        .raw("findings", &json::array(&findings))
        .raw("allowlisted", &json::array(&allowlisted))
        .raw("stale", &json::array(&stale))
        .finish()
}
