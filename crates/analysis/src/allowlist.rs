//! The lint allowlist: explicitly acknowledged findings.
//!
//! Format (one entry per line, `#` comments and blank lines ignored):
//!
//! ```text
//! <rule-id> <path> <line> <reason...>
//! ```
//!
//! e.g. `unbounded-queue crates/foo/src/bar.rs 42 diagnostics-only channel, drained per tick`.
//!
//! Entries are matched exactly on rule, repo-relative path (forward
//! slashes), and line number — so an allowlisted finding that moves
//! must be re-acknowledged, and entries that no longer match anything
//! are reported as stale. Policy: the allowlist is a last resort, kept
//! empty; the `nan-sort`, `hot-path-panic`, and `relaxed-publish` rules
//! must never be allowlisted (fix the code instead) — `evorec-lint`
//! rejects such entries outright.

/// Rules for which allowlisting is forbidden by policy.
pub const NEVER_ALLOWLIST: [&str; 3] = ["nan-sort", "hot-path-panic", "relaxed-publish"];

/// One parsed allowlist entry.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Rule id the entry acknowledges.
    pub rule: String,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line of the acknowledged finding.
    pub line: u32,
    /// Why this violation is acceptable.
    pub reason: String,
}

/// A parsed allowlist file.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<Entry>,
}

impl Allowlist {
    /// Parse allowlist text. Fails (with a line-numbered message) on
    /// malformed entries, missing reasons, or entries for rules in
    /// [`NEVER_ALLOWLIST`].
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        Self::parse_with_policy(text, &NEVER_ALLOWLIST)
    }

    /// [`parse`](Allowlist::parse) with an explicit never-allowlist
    /// policy — `evorec-lint` and `evorec-audit` forbid different
    /// rule sets but share everything else about the format.
    pub fn parse_with_policy(text: &str, never: &[&str]) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, char::is_whitespace);
            let (Some(rule), Some(path), Some(lineno)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "allowlist line {}: expected `<rule> <path> <line> <reason>`, got `{raw}`",
                    n + 1
                ));
            };
            let reason = parts.next().map(str::trim).unwrap_or_default();
            if reason.is_empty() {
                return Err(format!(
                    "allowlist line {}: entry needs a reason (why is this violation acceptable?)",
                    n + 1
                ));
            }
            if never.contains(&rule) {
                return Err(format!(
                    "allowlist line {}: rule `{rule}` must never be allowlisted — fix the code",
                    n + 1
                ));
            }
            let Ok(lineno) = lineno.parse::<u32>() else {
                return Err(format!(
                    "allowlist line {}: `{lineno}` is not a line number",
                    n + 1
                ));
            };
            entries.push(Entry {
                rule: rule.to_string(),
                path: path.to_string(),
                line: lineno,
                reason: reason.to_string(),
            });
        }
        Ok(Allowlist { entries })
    }

    /// Index of the entry covering `(rule, path, line)`, if any.
    pub fn lookup(&self, rule: &str, path: &str, line: u32) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.rule == rule && e.path == path && e.line == line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let text = "# header\n\nunbounded-queue crates/x/src/a.rs 7 drained per tick\n";
        let list = Allowlist::parse(text).expect("valid allowlist");
        assert_eq!(list.entries.len(), 1);
        assert_eq!(list.lookup("unbounded-queue", "crates/x/src/a.rs", 7), Some(0));
        assert_eq!(list.lookup("unbounded-queue", "crates/x/src/a.rs", 8), None);
        assert_eq!(list.lookup("sleep-in-test", "crates/x/src/a.rs", 7), None);
    }

    #[test]
    fn rejects_missing_reason() {
        assert!(Allowlist::parse("sleep-in-test tests/a.rs 3").is_err());
        assert!(Allowlist::parse("sleep-in-test tests/a.rs 3   ").is_err());
    }

    #[test]
    fn rejects_never_allowlist_rules() {
        for rule in NEVER_ALLOWLIST {
            let line = format!("{rule} crates/core/src/x.rs 1 because reasons");
            assert!(Allowlist::parse(&line).is_err(), "{rule} must be rejected");
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("just-a-rule").is_err());
        assert!(Allowlist::parse("rule path NaN reason").is_err());
    }
}
