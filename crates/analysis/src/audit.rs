//! The `evorec-audit` pipeline: tokenize → parse → symbol table →
//! call-graph facts → the three analysis passes (determinism taint,
//! panic reachability, lock-order inference), merged into one
//! deterministic finding list.
//!
//! Where `evorec-lint` (PR 6) is token-local — it sees one file, one
//! line at a time — the audit is *workspace-global*: taint flows and
//! panic chains cross crate boundaries through the call graph. Both
//! tools share the allowlist machinery; the audit has its own
//! never-allowlist policy (`taint-into-fingerprint` can never be
//! suppressed — a nondeterministic fingerprint silently poisons every
//! replay comparison downstream).
//!
//! Severity model: `deny` findings fail the build, `warn` findings are
//! reported for review (`panic-reachable-indexing` and
//! `lock-annotation-unused` — both dominated by sanctioned idioms a
//! static view cannot fully discharge).

use crate::allowlist::{Allowlist, Entry};
use crate::callgraph::collect_facts;
use crate::parser::{parse_file, ParsedFile};
use crate::symbols::Symbols;
use crate::tokenizer::{tokenize, Token};
use crate::{locks, panics, taint};
use std::fs;
use std::path::Path;

/// Audit rules for which allowlisting is forbidden by policy: a
/// nondeterministic fingerprint invalidates bit-identical replay at
/// the root, so it is fixed at source, never acknowledged.
pub const NEVER_ALLOWLIST: [&str; 1] = ["taint-into-fingerprint"];

/// Whether a finding fails the build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the audit (exit 1) unless allowlisted.
    Deny,
    /// Reported for review; never fails the audit.
    Warn,
}

impl Severity {
    /// Lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One audit finding, with the evidence chain that produced it.
#[derive(Clone, Debug)]
pub struct AuditFinding {
    /// Rule id (`taint-into-*`, `panic-reachable*`, `lock-order-*`).
    pub rule: &'static str,
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line of the sink / panic site / acquisition.
    pub line: u32,
    /// One-line description.
    pub message: String,
    /// Source → call-chain → sink evidence, one hop per element.
    pub chain: Vec<String>,
    /// Whether this finding fails the build.
    pub severity: Severity,
}

/// One workspace source file, ready to audit.
pub struct SourceFile {
    /// Repo-relative label (forward slashes).
    pub label: String,
    /// Owning crate name (directory under `crates/`).
    pub crate_name: String,
    /// File contents.
    pub source: String,
}

/// Directories the audit never descends into. `shims` is vendored
/// third-party API surface, not workspace logic; `tests`/`benches`/
/// `examples` are all-test code where panics and ad-hoc iteration are
/// sanctioned.
const SKIP_DIRS: [&str; 8] = [
    "target", ".git", ".github", ".claude", "shims", "tests", "benches", "examples",
];

/// Collect every auditable `.rs` file under `root`, sorted by label.
pub fn collect_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut entries: Vec<_> = entries
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("reading {}: {e}", dir.display()))?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let label = relative_label(root, &path);
            let source =
                fs::read_to_string(&path).map_err(|e| format!("reading {label}: {e}"))?;
            out.push(SourceFile {
                crate_name: crate_of(&label),
                label,
                source,
            });
        }
    }
    Ok(())
}

/// Repo-relative path with forward slashes.
pub fn relative_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The crate a repo-relative label belongs to (`crates/<name>/...`).
fn crate_of(label: &str) -> String {
    let mut parts = label.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => "workspace".to_string(),
    }
}

/// Run the full audit pipeline over in-memory sources.
pub fn audit_sources(files: &[SourceFile]) -> Vec<AuditFinding> {
    let tokens: Vec<Vec<Token>> = files.iter().map(|f| tokenize(&f.source)).collect();
    let parsed: Vec<ParsedFile> = files
        .iter()
        .zip(&tokens)
        .map(|(f, t)| parse_file(&f.label, &f.crate_name, t))
        .collect();
    let sym = Symbols::build(&parsed);
    let facts = collect_facts(&sym);
    let mut findings = taint::run(&sym);
    findings.extend(panics::run(&sym, &facts));
    findings.extend(locks::run(&sym, &facts, &tokens));
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    findings
}

/// The audit result after allowlist application.
pub struct AuditOutcome {
    /// Findings not covered by the allowlist.
    pub findings: Vec<AuditFinding>,
    /// `(finding, reason)` pairs the allowlist acknowledged.
    pub allowlisted: Vec<(AuditFinding, String)>,
    /// Allowlist entries that matched nothing (these fail the audit:
    /// either the finding moved or the entry is dead weight).
    pub stale: Vec<Entry>,
}

impl AuditOutcome {
    /// `true` when the audit should fail the build.
    pub fn failed(&self) -> bool {
        !self.stale.is_empty()
            || self
                .findings
                .iter()
                .any(|f| f.severity == Severity::Deny)
    }
}

/// Split findings into reported / acknowledged, and detect stale
/// allowlist entries.
pub fn apply_allowlist(findings: Vec<AuditFinding>, allow: &Allowlist) -> AuditOutcome {
    let mut used = vec![false; allow.entries.len()];
    let mut out = AuditOutcome {
        findings: Vec::new(),
        allowlisted: Vec::new(),
        stale: Vec::new(),
    };
    for f in findings {
        match allow.lookup(f.rule, &f.path, f.line) {
            Some(ix) => {
                used[ix] = true;
                let reason = allow.entries[ix].reason.clone();
                out.allowlisted.push((f, reason));
            }
            None => out.findings.push(f),
        }
    }
    for (ix, entry) in allow.entries.iter().enumerate() {
        if !used[ix] {
            out.stale.push(entry.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(label: &str, source: &str) -> SourceFile {
        SourceFile {
            label: label.to_string(),
            crate_name: crate_of(label),
            source: source.to_string(),
        }
    }

    #[test]
    fn pipeline_finds_cross_file_taint() {
        // The unordered iteration lives in one file, the fingerprint
        // sink in another: only a workspace-global view connects them.
        let files = [
            src(
                "crates/core/src/a.rs",
                "pub struct Weights { pub map: FxHashMap<u32, f64> }\n\
                 impl Weights {\n\
                     pub fn mass(&self) -> f64 {\n\
                         let mut total = 0.0;\n\
                         for (_k, v) in self.map.iter() { total += v; }\n\
                         total\n\
                     }\n\
                 }",
            ),
            src(
                "crates/core/src/b.rs",
                "pub fn fingerprint(w: &Weights, h: &mut Hasher) {\n\
                     digest_step(h, w.mass());\n\
                 }",
            ),
        ];
        let findings = audit_sources(&files);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "taint-into-fingerprint" && f.path == "crates/core/src/b.rs"),
            "{findings:?}"
        );
    }

    #[test]
    fn allowlist_acknowledges_and_detects_stale() {
        let f = AuditFinding {
            rule: "panic-reachable",
            path: "crates/x/src/a.rs".to_string(),
            line: 7,
            message: "m".to_string(),
            chain: Vec::new(),
            severity: Severity::Deny,
        };
        let allow = Allowlist::parse_with_policy(
            "panic-reachable crates/x/src/a.rs 7 guarded by construction\n\
             panic-reachable crates/x/src/a.rs 99 stale entry",
            &NEVER_ALLOWLIST,
        )
        .expect("valid allowlist");
        let outcome = apply_allowlist(vec![f], &allow);
        assert!(outcome.findings.is_empty());
        assert_eq!(outcome.allowlisted.len(), 1);
        assert_eq!(outcome.stale.len(), 1);
        assert!(outcome.failed(), "stale entries fail the audit");
    }

    #[test]
    fn fingerprint_taint_is_never_allowlistable() {
        let err = Allowlist::parse_with_policy(
            "taint-into-fingerprint crates/x/src/a.rs 3 we promise it is fine",
            &NEVER_ALLOWLIST,
        )
        .expect_err("must be rejected");
        assert!(err.contains("never be allowlisted"), "{err}");
    }

    #[test]
    fn warn_findings_do_not_fail() {
        let f = AuditFinding {
            rule: "panic-reachable-indexing",
            path: "crates/x/src/a.rs".to_string(),
            line: 3,
            message: "m".to_string(),
            chain: Vec::new(),
            severity: Severity::Warn,
        };
        let outcome = apply_allowlist(vec![f], &Allowlist::default());
        assert!(!outcome.failed());
        assert_eq!(outcome.findings.len(), 1);
    }
}
