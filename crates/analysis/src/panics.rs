//! Panic reachability from the public serve entry points.
//!
//! The serving surface must not panic: a panic inside `recommend`,
//! `serve`, or a `LiveContext`/`ProfileStore` read poisons locks and
//! kills worker threads, breaking the replay story far more bluntly
//! than any nondeterminism. This pass walks the cross-crate call graph
//! from every public serve entry point and reports each transitively
//! reachable panic site with the shortest call chain that reaches it.
//!
//! Supersedes PR 6's token-local `hot-path-panic` rule: that rule sees
//! `unwrap` inside hot-path *files*; this pass sees `unwrap` three
//! crates away through the call graph.
//!
//! `assert!`/`assert_eq!` are deliberately not panic sites — they are
//! the workspace's sanctioned precondition idiom. Computed indexing is
//! reported at `warn` severity (`panic-reachable-indexing`): it is the
//! dominant bounds-guarded idiom and a token-level view cannot see the
//! guards, so it is surfaced for review without failing the build.

use crate::audit::{AuditFinding, Severity};
use crate::callgraph::{render_chain, shortest_chains, FnFacts, PanicKind};
use crate::symbols::Symbols;

/// The public serve surface: `(impl type, method prefix)` pairs.
/// An empty prefix selects every method of the type.
const ENTRY_POINTS: [(&str, &str); 14] = [
    ("Recommender", "recommend"),
    ("BatchRecommender", "recommend"),
    ("WindowedRecommender", "recommend"),
    ("WindowedRecommender", "trend_diff"),
    ("WindowedRecommender", "context"),
    ("AdaptiveRecommender", "serve"),
    ("LiveContext", "current"),
    ("LiveContext", "epoch"),
    ("LiveContext", "wait_for_warm"),
    ("ProfileStore", "get"),
    ("ProfileStore", "users"),
    ("ProfileStore", "stats"),
    ("HttpServer", ""),
    ("AdmissionController", "admit"),
];

/// Fn indices of the serve entry points present in this workspace.
pub fn entry_points(sym: &Symbols) -> Vec<usize> {
    let mut roots = Vec::new();
    for (ix, info) in sym.fns.iter().enumerate() {
        if info.is_test || info.def.body.is_none() {
            continue;
        }
        let Some(owner) = info.owner else {
            continue;
        };
        for (ty, prefix) in ENTRY_POINTS {
            if owner == ty && info.def.name.starts_with(prefix) {
                roots.push(ix);
                break;
            }
        }
    }
    roots
}

/// Run the pass: BFS from the entry points, one finding per reachable
/// panic site (shortest chain wins).
pub fn run(sym: &Symbols, facts: &[FnFacts]) -> Vec<AuditFinding> {
    let roots = entry_points(sym);
    let reached = shortest_chains(sym, facts, &roots);
    let mut findings = Vec::new();
    for (&fn_ix, _) in reached.iter() {
        let info = &sym.fns[fn_ix];
        if info.is_test {
            continue;
        }
        for site in &facts[fn_ix].panics {
            let (rule, severity) = match site.kind {
                PanicKind::Indexing => ("panic-reachable-indexing", Severity::Warn),
                _ => ("panic-reachable", Severity::Deny),
            };
            let mut chain = render_chain(sym, &reached, fn_ix);
            chain.push(format!(
                "{} can panic via `{}` at {}:{}",
                info.qual_name(),
                site.what,
                sym.files[info.file].path,
                site.line
            ));
            let entry_desc = if chain.len() == 1 {
                format!("serve entry point {}", info.qual_name())
            } else {
                chain
                    .first()
                    .cloned()
                    .unwrap_or_default()
                    .split(" calls ")
                    .next()
                    .map(|s| format!("serve entry point {s}"))
                    .unwrap_or_default()
            };
            findings.push(AuditFinding {
                rule,
                path: sym.files[info.file].path.clone(),
                line: site.line,
                message: format!(
                    "`{}` in {} is reachable from {} ({} hop(s))",
                    site.what,
                    info.qual_name(),
                    entry_desc,
                    chain.len() - 1
                ),
                chain,
                severity,
            });
        }
    }
    // Deterministic output order; two panic sites on one source line
    // (e.g. chained `expect`s) collapse into a single finding.
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule))
    });
    findings.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    findings
}
