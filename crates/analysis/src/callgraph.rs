//! Expression type inference, per-function call facts, and the
//! cross-crate call graph.
//!
//! [`infer_expr`] walks an expression under a lexical [`TypeEnv`],
//! resolving locals, struct fields, workspace method returns, and a
//! table of std container/iterator methods. [`collect_facts`] uses it
//! to resolve every call site in every function body into graph edges,
//! recording panic sites along the way. [`shortest_chains`] runs BFS
//! over the edges for the panic-reachability pass.

use crate::parser::{Block, Expr, Stmt};
use crate::symbols::Symbols;
use crate::ty::Ty;
use std::collections::{HashMap, VecDeque};

/// Lexically scoped variable types within one function body.
#[derive(Default)]
pub struct TypeEnv {
    scopes: Vec<HashMap<String, Ty>>,
}

impl TypeEnv {
    /// Fresh environment with one root scope.
    pub fn new() -> TypeEnv {
        TypeEnv {
            scopes: vec![HashMap::new()],
        }
    }

    /// Enter a nested scope.
    pub fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Leave the innermost scope.
    pub fn pop(&mut self) {
        self.scopes.pop();
    }

    /// Bind `name` in the innermost scope.
    pub fn bind(&mut self, name: &str, ty: Ty) {
        if let Some(top) = self.scopes.last_mut() {
            top.insert(name.to_string(), ty);
        }
    }

    /// Innermost binding of `name`.
    pub fn lookup(&self, name: &str) -> Ty {
        for scope in self.scopes.iter().rev() {
            if let Some(ty) = scope.get(name) {
                return ty.clone();
            }
        }
        Ty::Unknown
    }
}

/// Infer the type of `expr`. `expected` is a contextual hint (the
/// annotated let type or struct-field type) consumed by `collect`.
pub fn infer_expr(sym: &Symbols, env: &TypeEnv, expr: &Expr, expected: Option<&Ty>) -> Ty {
    match expr {
        Expr::Path { segs, .. } => {
            if segs.len() == 1 {
                return env.lookup(&segs[0]);
            }
            Ty::Unknown
        }
        Expr::Lit { text, .. } => infer_lit(text),
        Expr::Call { callee, args, .. } => {
            if let Some(ix) = sym.resolve_call(callee) {
                return sym.fns[ix].ret_ty.clone();
            }
            infer_builtin_call(sym, env, callee, args)
        }
        Expr::MethodCall {
            recv,
            method,
            turbofish,
            args,
            ..
        } => {
            let recv_ty = infer_expr(sym, env, recv, None);
            infer_method(
                sym,
                env,
                &recv_ty,
                method,
                turbofish.as_deref(),
                args,
                expected,
            )
        }
        Expr::Field { base, name, .. } => {
            let base_ty = infer_expr(sym, env, base, None);
            if let Ok(ix) = name.parse::<usize>() {
                return base_ty.tuple_field(ix);
            }
            match base_ty.peeled().head() {
                Some(head) => sym.field_ty(head, name),
                None => Ty::Unknown,
            }
        }
        Expr::Index { base, .. } => {
            let base_ty = infer_expr(sym, env, base, None);
            let peeled = base_ty.peeled();
            match peeled.head() {
                Some("FxHashMap") | Some("HashMap") | Some("BTreeMap") => peeled.arg1(),
                _ => base_ty.element(),
            }
        }
        Expr::StructLit { path, .. } => path.last().map_or(Ty::Unknown, |s| Ty::named(s)),
        Expr::Cast { ty, .. } => Ty::parse(ty),
        Expr::Unary { expr, .. } => infer_expr(sym, env, expr, expected),
        Expr::Try { expr, .. } => infer_expr(sym, env, expr, None).arg0(),
        Expr::Tuple { items, .. } => Ty::Tuple(
            items
                .iter()
                .map(|e| infer_expr(sym, env, e, None))
                .collect(),
        ),
        Expr::ArrayLit { items, .. } => {
            let elem = items
                .first()
                .map_or(Ty::Unknown, |e| infer_expr(sym, env, e, None));
            Ty::Named {
                head: "Slice".to_string(),
                args: vec![elem],
            }
        }
        Expr::Binary { parts, ops, .. } => {
            if ops.iter().any(|op| {
                matches!(
                    op.as_str(),
                    "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||"
                )
            }) {
                return Ty::named("bool");
            }
            if ops.iter().any(|op| op == "..") {
                return Ty::Unknown;
            }
            for p in parts {
                let ty = infer_expr(sym, env, p, None);
                if ty != Ty::Unknown {
                    return ty;
                }
            }
            Ty::Unknown
        }
        Expr::Block(block, _) => match block.stmts.last() {
            Some(Stmt::Expr(e)) => infer_expr(sym, env, e, expected),
            _ => Ty::Unknown,
        },
        Expr::If { then_branch, .. } => match then_branch.stmts.last() {
            Some(Stmt::Expr(e)) => infer_expr(sym, env, e, expected),
            _ => Ty::Unknown,
        },
        Expr::Match { arms, .. } => arms
            .first()
            .map_or(Ty::Unknown, |(_, body)| infer_expr(sym, env, body, expected)),
        Expr::Macro { name, args, .. } => match name.as_str() {
            "vec" => {
                let elem = args
                    .first()
                    .map_or(Ty::Unknown, |e| infer_expr(sym, env, e, None));
                Ty::Named {
                    head: "Vec".to_string(),
                    args: vec![elem],
                }
            }
            "format" => Ty::named("String"),
            _ => Ty::Unknown,
        },
        _ => Ty::Unknown,
    }
}

fn infer_lit(text: &str) -> Ty {
    if text == "true" || text == "false" {
        return Ty::named("bool");
    }
    let is_num = text.starts_with(|c: char| c.is_ascii_digit());
    if is_num {
        if text.ends_with("f64") || text.ends_with("f32") {
            return Ty::named("f64");
        }
        // Suffixed ints (`0u64`) and plain ints vs float literals.
        for suffix in ["u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize"] {
            if text.ends_with(suffix) {
                return Ty::named("i64");
            }
        }
        if text.contains('.') || text.contains('e') || text.contains('E') {
            return Ty::named("f64");
        }
        return Ty::named("i64");
    }
    if text.starts_with('"') || text.starts_with("r\"") || text.starts_with("r#") {
        return Ty::named("String");
    }
    Ty::Unknown
}

fn infer_builtin_call(sym: &Symbols, env: &TypeEnv, callee: &[String], args: &[Expr]) -> Ty {
    let Some(last) = callee.last() else {
        return Ty::Unknown;
    };
    match last.as_str() {
        "Some" | "Ok" => {
            let inner = args
                .first()
                .map_or(Ty::Unknown, |e| infer_expr(sym, env, e, None));
            Ty::Named {
                head: if last == "Some" { "Option" } else { "Result" }.to_string(),
                args: vec![inner],
            }
        }
        name => {
            // `Type::ctor(..)` / tuple-struct `Type(..)`.
            if callee.len() >= 2 {
                let qualifier = &callee[callee.len() - 2];
                if qualifier.chars().next().is_some_and(char::is_uppercase) {
                    return Ty::named(qualifier);
                }
            }
            if name.chars().next().is_some_and(char::is_uppercase) {
                return Ty::named(name);
            }
            Ty::Unknown
        }
    }
}

/// Bind closure params to the (possibly destructured) element type.
pub fn bind_closure_params(env: &mut TypeEnv, params: &[String], elem: &Ty) {
    if params.len() == 1 {
        env.bind(&params[0], elem.clone());
        return;
    }
    for (ix, p) in params.iter().enumerate() {
        env.bind(p, elem.tuple_field(ix));
    }
}

/// Return type of a method call, workspace impls first, then the std
/// container/iterator table.
#[allow(clippy::too_many_arguments)]
fn infer_method(
    sym: &Symbols,
    env: &TypeEnv,
    recv_ty: &Ty,
    method: &str,
    turbofish: Option<&str>,
    args: &[Expr],
    expected: Option<&Ty>,
) -> Ty {
    if let Some(ix) = sym.resolve_method(recv_ty, method) {
        let ret = sym.fns[ix].ret_ty.clone();
        if ret != Ty::Unknown {
            return ret;
        }
    }
    let peeled = recv_ty.peeled();
    match method {
        "iter" | "iter_mut" | "into_iter" | "drain" => Ty::iterator_of(recv_ty.element()),
        "keys" | "into_keys" => Ty::iterator_of(peeled.arg0()),
        "values" | "values_mut" | "into_values" => Ty::iterator_of(peeled.arg1()),
        "get" | "get_mut" => {
            let inner = match peeled.head() {
                Some("FxHashMap") | Some("HashMap") | Some("BTreeMap") => peeled.arg1(),
                _ => recv_ty.element(),
            };
            Ty::Named {
                head: "Option".to_string(),
                args: vec![inner],
            }
        }
        "first" | "last" | "pop" | "pop_front" | "pop_back" | "max" | "min" | "find"
        | "max_by" | "min_by" | "max_by_key" | "min_by_key" => Ty::Named {
            head: "Option".to_string(),
            args: vec![recv_ty.element()],
        },
        "entry" => Ty::Named {
            head: "Entry".to_string(),
            args: vec![peeled.arg1()],
        },
        "or_insert" | "or_insert_with" | "or_default" => peeled.arg0(),
        "unwrap" | "expect" | "unwrap_or" | "unwrap_or_else" | "unwrap_or_default" => {
            peeled.arg0()
        }
        "ok" | "err" => Ty::Named {
            head: "Option".to_string(),
            args: vec![peeled.arg0()],
        },
        "take" => {
            if peeled.head() == Some("Option") {
                recv_ty.clone()
            } else {
                Ty::iterator_of(recv_ty.element())
            }
        }
        "as_ref" | "as_mut" | "as_slice" | "as_str" | "borrow" | "borrow_mut" | "clone"
        | "to_owned" | "by_ref" => recv_ty.clone(),
        "to_vec" => Ty::Named {
            head: "Vec".to_string(),
            args: vec![recv_ty.element()],
        },
        "cloned" | "copied" | "rev" | "filter" | "skip" | "step_by" | "take_while"
        | "skip_while" | "peekable" | "inspect" | "fuse" | "chain" => {
            Ty::iterator_of(recv_ty.element())
        }
        "enumerate" => Ty::iterator_of(Ty::Tuple(vec![Ty::named("usize"), recv_ty.element()])),
        "zip" => {
            let other = args
                .first()
                .map_or(Ty::Unknown, |e| infer_expr(sym, env, e, None));
            Ty::iterator_of(Ty::Tuple(vec![recv_ty.element(), other.element()]))
        }
        "map" | "filter_map" | "flat_map" => {
            let body_ty = closure_body_ty(sym, env, args, &recv_ty.element());
            match method {
                "map" => Ty::iterator_of(body_ty),
                "filter_map" => Ty::iterator_of(if body_ty.peeled().head() == Some("Option") {
                    body_ty.arg0()
                } else {
                    body_ty
                }),
                _ => Ty::iterator_of(body_ty.element()),
            }
        }
        "flatten" => Ty::iterator_of(recv_ty.element().element()),
        "sum" | "product" => turbofish.map_or(Ty::Unknown, Ty::parse),
        "fold" => args
            .first()
            .map_or(Ty::Unknown, |e| infer_expr(sym, env, e, None)),
        "collect" => match turbofish {
            Some(t) => Ty::parse(t),
            None => expected.cloned().unwrap_or(Ty::Unknown),
        },
        "parse" => turbofish.map_or(Ty::Unknown, Ty::parse),
        "len" | "count" | "capacity" => Ty::named("usize"),
        "is_empty" | "contains" | "contains_key" | "any" | "all" | "starts_with"
        | "ends_with" => Ty::named("bool"),
        "lock" | "read" | "write" => {
            if peeled.is_lock() {
                peeled.arg0()
            } else {
                Ty::Unknown
            }
        }
        "elapsed" => Ty::named("Duration"),
        "as_secs_f64" | "abs" | "sqrt" | "ln" | "log2" | "exp" | "powi" | "powf" => {
            Ty::named("f64")
        }
        "to_string" => Ty::named("String"),
        "position" => Ty::named("Option"),
        _ => Ty::Unknown,
    }
}

fn closure_body_ty(sym: &Symbols, env: &TypeEnv, args: &[Expr], elem: &Ty) -> Ty {
    let Some(Expr::Closure { params, body, .. }) = args.first() else {
        return Ty::Unknown;
    };
    let mut inner = TypeEnv::new();
    // Copy-free: nest a child env by cloning visible bindings lazily is
    // overkill here — close over the outer env by rebuilding the scope
    // chain. The walker passes a mutable env; this read-only path just
    // needs param bindings layered over the outer lookups.
    for scope in &env.scopes {
        inner.scopes.push(scope.clone());
    }
    inner.push();
    bind_closure_params(&mut inner, params, elem);
    infer_expr(sym, &inner, body, None)
}

// ---- call facts ----------------------------------------------------------

/// How a reachable site can panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// `.unwrap()` / `.expect(..)` and `_err` variants.
    UnwrapExpect,
    /// Slice/array/map indexing.
    Indexing,
}

/// A potential panic site inside a function body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// Site kind.
    pub kind: PanicKind,
    /// Short description (`unwrap`, `panic!`, `index`).
    pub what: String,
}

/// One resolved call site.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee fn index.
    pub callee: usize,
    /// 1-based line of the call.
    pub line: u32,
}

/// Per-function facts: resolved calls and panic sites.
#[derive(Default)]
pub struct FnFacts {
    /// Resolved workspace call sites.
    pub calls: Vec<CallSite>,
    /// Panic sites in this body.
    pub panics: Vec<PanicSite>,
}

/// Collect call/panic facts for every function in the workspace.
pub fn collect_facts(sym: &Symbols) -> Vec<FnFacts> {
    let mut all = Vec::with_capacity(sym.fns.len());
    for info in &sym.fns {
        let mut facts = FnFacts::default();
        if let Some(body) = &info.def.body {
            let mut env = TypeEnv::new();
            for (p, ty) in info.def.params.iter().zip(&info.param_tys) {
                env.bind(&p.name, ty.clone());
            }
            walk_block(sym, &mut env, body, &mut facts);
        }
        all.push(facts);
    }
    all
}

fn walk_block(sym: &Symbols, env: &mut TypeEnv, block: &Block, out: &mut FnFacts) {
    env.push();
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                names, ty, init, ..
            } => {
                let annotated = ty.as_deref().map(Ty::parse);
                if let Some(init) = init {
                    walk_expr(sym, env, init, out);
                    let inferred = infer_expr(sym, env, init, annotated.as_ref());
                    let bound = annotated.unwrap_or(inferred);
                    bind_pattern(env, names, &bound);
                } else if let Some(ty) = annotated {
                    bind_pattern(env, names, &ty);
                }
            }
            Stmt::Expr(e) => walk_expr(sym, env, e, out),
            Stmt::Return(Some(e), _) => walk_expr(sym, env, e, out),
            Stmt::Return(None, _) | Stmt::Item(_) => {}
        }
    }
    env.pop();
}

/// Bind a (possibly destructuring) pattern against `ty`: one name gets
/// the whole type, several get tuple fields positionally.
fn bind_pattern(env: &mut TypeEnv, names: &[String], ty: &Ty) {
    // `let Some(x) = ..` style: a single binding under an enum
    // constructor sees the payload; approximate by unwrapping Option.
    let ty = if ty.peeled().head() == Some("Option") {
        ty.arg0()
    } else {
        ty.clone()
    };
    if names.len() == 1 {
        env.bind(&names[0], ty);
        return;
    }
    for (ix, name) in names.iter().enumerate() {
        env.bind(name, ty.tuple_field(ix));
    }
}

fn walk_expr(sym: &Symbols, env: &mut TypeEnv, expr: &Expr, out: &mut FnFacts) {
    match expr {
        Expr::Call { callee, args, line } => {
            if let Some(ix) = sym.resolve_call(callee) {
                out.calls.push(CallSite {
                    callee: ix,
                    line: *line,
                });
            }
            for a in args {
                walk_expr(sym, env, a, out);
            }
        }
        Expr::MethodCall {
            recv,
            method,
            args,
            line,
            ..
        } => {
            walk_expr(sym, env, recv, out);
            let recv_ty = infer_expr(sym, env, recv, None);
            if let Some(ix) = sym.resolve_method(&recv_ty, method) {
                out.calls.push(CallSite {
                    callee: ix,
                    line: *line,
                });
            }
            if matches!(
                method.as_str(),
                "unwrap" | "expect" | "unwrap_err" | "expect_err"
            ) {
                out.panics.push(PanicSite {
                    line: *line,
                    kind: PanicKind::UnwrapExpect,
                    what: method.clone(),
                });
            }
            let elem = recv_ty.element();
            for a in args {
                if let Expr::Closure { params, body, .. } = a {
                    env.push();
                    bind_closure_params(env, params, &elem);
                    walk_expr(sym, env, body, out);
                    env.pop();
                } else {
                    walk_expr(sym, env, a, out);
                }
            }
        }
        Expr::Macro { name, args, line } => {
            if matches!(
                name.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) {
                out.panics.push(PanicSite {
                    line: *line,
                    kind: PanicKind::Macro,
                    what: format!("{name}!"),
                });
            }
            for a in args {
                walk_expr(sym, env, a, out);
            }
        }
        Expr::Index {
            base, index, line, ..
        } => {
            walk_expr(sym, env, base, out);
            walk_expr(sym, env, index, out);
            // Literal indexes into tuples/arrays are overwhelmingly
            // bounds-evident; only flag computed indexing.
            if !matches!(index.as_ref(), Expr::Lit { .. }) {
                out.panics.push(PanicSite {
                    line: *line,
                    kind: PanicKind::Indexing,
                    what: "index".to_string(),
                });
            }
        }
        Expr::Field { base, .. } => walk_expr(sym, env, base, out),
        Expr::StructLit { fields, .. } => {
            for (_, v) in fields {
                walk_expr(sym, env, v, out);
            }
        }
        Expr::Closure { body, params, .. } => {
            env.push();
            for p in params {
                env.bind(p, Ty::Unknown);
            }
            walk_expr(sym, env, body, out);
            env.pop();
        }
        Expr::For {
            names, iter, body, ..
        } => {
            walk_expr(sym, env, iter, out);
            let elem = infer_expr(sym, env, iter, None).element();
            env.push();
            bind_pattern(env, names, &elem);
            walk_block(sym, env, body, out);
            env.pop();
        }
        Expr::While {
            cond, binds, body, ..
        } => {
            walk_expr(sym, env, cond, out);
            env.push();
            if !binds.is_empty() {
                let ty = infer_expr(sym, env, cond, None);
                bind_pattern(env, binds, &ty);
            }
            walk_block(sym, env, body, out);
            env.pop();
        }
        Expr::Loop { body, .. } => walk_block(sym, env, body, out),
        Expr::If {
            cond,
            binds,
            then_branch,
            else_branch,
            ..
        } => {
            walk_expr(sym, env, cond, out);
            env.push();
            if !binds.is_empty() {
                let ty = infer_expr(sym, env, cond, None);
                bind_pattern(env, binds, &ty);
            }
            walk_block(sym, env, then_branch, out);
            env.pop();
            if let Some(e) = else_branch {
                walk_expr(sym, env, e, out);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_expr(sym, env, scrutinee, out);
            let ty = infer_expr(sym, env, scrutinee, None);
            for (binds, body) in arms {
                env.push();
                bind_pattern(env, binds, &ty);
                walk_expr(sym, env, body, out);
                env.pop();
            }
        }
        Expr::Assign { target, value, .. } => {
            walk_expr(sym, env, target, out);
            walk_expr(sym, env, value, out);
        }
        Expr::Binary { parts, .. } => {
            for p in parts {
                walk_expr(sym, env, p, out);
            }
        }
        Expr::Cast { expr, .. } | Expr::Unary { expr, .. } | Expr::Try { expr, .. } => {
            walk_expr(sym, env, expr, out)
        }
        Expr::Tuple { items, .. } | Expr::ArrayLit { items, .. } => {
            for e in items {
                walk_expr(sym, env, e, out);
            }
        }
        Expr::Block(block, _) => walk_block(sym, env, block, out),
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Unknown(_) => {}
    }
}

// ---- reachability --------------------------------------------------------

/// One hop of a call chain, for diagnostics.
#[derive(Clone, Debug)]
pub struct Hop {
    /// Caller fn index.
    pub caller: usize,
    /// Call line inside the caller.
    pub line: u32,
    /// Callee fn index.
    pub callee: usize,
}

/// BFS from `roots` over `facts`, returning for each reachable fn the
/// hop taken to first reach it (`None` for roots themselves).
pub fn shortest_chains(
    sym: &Symbols,
    facts: &[FnFacts],
    roots: &[usize],
) -> HashMap<usize, Option<Hop>> {
    let mut reached: HashMap<usize, Option<Hop>> = HashMap::new();
    let mut queue = VecDeque::new();
    for &r in roots {
        if let std::collections::hash_map::Entry::Vacant(e) = reached.entry(r) {
            e.insert(None);
            queue.push_back(r);
        }
    }
    while let Some(ix) = queue.pop_front() {
        for call in &facts[ix].calls {
            // Never descend into test fns: they are not serve paths.
            if sym.fns[call.callee].is_test {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = reached.entry(call.callee) {
                e.insert(Some(Hop {
                    caller: ix,
                    line: call.line,
                    callee: call.callee,
                }));
                queue.push_back(call.callee);
            }
        }
    }
    reached
}

/// Render the chain from a root to `target` as `a → b → c` hops.
pub fn render_chain(
    sym: &Symbols,
    reached: &HashMap<usize, Option<Hop>>,
    target: usize,
) -> Vec<String> {
    let mut hops = Vec::new();
    let mut cur = target;
    let mut guard = 0;
    while let Some(Some(hop)) = reached.get(&cur) {
        hops.push(format!(
            "{} calls {} at {}:{}",
            sym.fns[hop.caller].qual_name(),
            sym.fns[hop.callee].qual_name(),
            sym.files[sym.fns[hop.caller].file].path,
            hop.line
        ));
        cur = hop.caller;
        guard += 1;
        if guard > 64 {
            break;
        }
    }
    hops.reverse();
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::tokenizer::tokenize;

    fn facts_for(src: &str) -> (Vec<crate::parser::ParsedFile>, Vec<FnFacts>) {
        let files = vec![parse_file("t.rs", "t", &tokenize(src))];
        // Symbols borrows files; rebuild facts in caller scope instead.
        (files, Vec::new())
    }

    #[test]
    fn resolves_method_chain_calls_and_panics() {
        let (files, _) = facts_for(
            "pub struct A { b: B }\n\
             pub struct B { v: Vec<u32> }\n\
             impl B { pub fn risky(&self) -> u32 { self.v[0] + self.v.first().unwrap() } }\n\
             impl A { pub fn go(&self, i: usize) -> u32 { self.b.risky() + self.b.v[i] } }",
        );
        let sym = Symbols::build(&files);
        let facts = collect_facts(&sym);
        let go_ix = (0..sym.fns.len())
            .find(|&i| sym.fns[i].def.name == "go")
            .expect("go");
        let risky_ix = (0..sym.fns.len())
            .find(|&i| sym.fns[i].def.name == "risky")
            .expect("risky");
        assert!(facts[go_ix].calls.iter().any(|c| c.callee == risky_ix));
        // risky: one unwrap, one literal index (not counted).
        assert!(facts[risky_ix]
            .panics
            .iter()
            .any(|p| p.kind == PanicKind::UnwrapExpect));
        assert!(!facts[risky_ix]
            .panics
            .iter()
            .any(|p| p.kind == PanicKind::Indexing));
        // go: computed index `self.b.v[i]` is counted.
        assert!(facts[go_ix]
            .panics
            .iter()
            .any(|p| p.kind == PanicKind::Indexing));
    }

    #[test]
    fn bfs_finds_shortest_chain() {
        let (files, _) = facts_for(
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { panic!(\"boom\"); }",
        );
        let sym = Symbols::build(&files);
        let facts = collect_facts(&sym);
        let ix = |name: &str| {
            (0..sym.fns.len())
                .find(|&i| sym.fns[i].def.name == name)
                .expect("fn")
        };
        let reached = shortest_chains(&sym, &facts, &[ix("a")]);
        assert!(reached.contains_key(&ix("c")));
        let chain = render_chain(&sym, &reached, ix("c"));
        assert_eq!(chain.len(), 2);
        assert!(chain[0].contains("a calls b"));
        assert!(chain[1].contains("b calls c"));
    }

    #[test]
    fn infers_collect_with_expected_hint() {
        let files = vec![parse_file(
            "t.rs",
            "t",
            &tokenize(
                "fn f(v: Vec<u32>) { let s: BTreeSet<u32> = v.into_iter().collect(); }",
            ),
        )];
        let sym = Symbols::build(&files);
        // The let-annotation drives the hint path inside walk_block;
        // sanity-check infer_expr directly with the hint.
        let env = TypeEnv::new();
        let expected = Ty::parse("BTreeSet<u32>");
        let body = sym.fns[0].def.body.as_ref().expect("body");
        let Stmt::Let { init, .. } = &body.stmts[0] else {
            panic!("let");
        };
        let got = infer_expr(
            &sym,
            &env,
            init.as_ref().expect("init"),
            Some(&expected),
        );
        assert!(got.is_ordered_collect_target());
    }
}
