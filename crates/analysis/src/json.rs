//! Minimal JSON emission for `--json` output.
//!
//! The workspace vendors no serde; the finding shapes are flat and
//! fixed, so a string escaper plus a tiny object builder is the whole
//! requirement. Output is deterministic: keys appear in insertion
//! order and findings are pre-sorted by the callers.

/// Escape a string for use inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// An in-progress JSON object.
#[derive(Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Add a string field.
    pub fn str(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Add a numeric field.
    pub fn num(mut self, k: &str, v: u64) -> Obj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a pre-rendered JSON value (object, array, ...).
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Add an array-of-strings field.
    pub fn str_array(self, k: &str, items: &[String]) -> Obj {
        let rendered: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
        let arr = format!("[{}]", rendered.join(","));
        self.raw(k, &arr)
    }

    /// Render the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Render a JSON array from pre-rendered element values.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn builds_nested_objects() {
        let inner = Obj::new().str("rule", "x").num("line", 3).finish();
        let outer = Obj::new()
            .raw("findings", &array(&[inner]))
            .str_array("chain", &["a \"quoted\" hop".to_string()])
            .finish();
        assert_eq!(
            outer,
            "{\"findings\":[{\"rule\":\"x\",\"line\":3}],\"chain\":[\"a \\\"quoted\\\" hop\"]}"
        );
    }
}
