//! A tolerant recursive-descent parser over [`crate::tokenizer`]
//! output, producing the per-file item tree the audit passes walk.
//!
//! This is *not* a conforming Rust parser: it recovers the structure the
//! analyses need — functions with parameter/return types, impl blocks,
//! struct fields, use-trees, and expression shape (calls, method-call
//! chains, field accesses, loops, closures, struct literals) — and
//! degrades gracefully on everything else. Any construct it cannot
//! classify becomes [`Expr::Unknown`] or [`Item::Other`]; the parser
//! always makes progress (never loops) and never panics on malformed
//! input. Degradation is deliberately conservative for the consumers:
//! an unknown expression carries no taint, acquires no locks, and
//! reaches no panics, so parser gaps make the audit *miss*, never
//! *misfire*.

use crate::tokenizer::{Token, TokenKind};

/// One parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Repo-relative path label (forward slashes).
    pub path: String,
    /// Name of the owning crate (directory under `crates/`), or `""`.
    pub crate_name: String,
    /// Top-level items.
    pub items: Vec<Item>,
}

/// A top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// A free function.
    Fn(FnDef),
    /// A struct with named fields.
    Struct(StructDef),
    /// An `impl` block and its methods.
    Impl(ImplDef),
    /// An inline module.
    Mod(ModDef),
    /// A `use` declaration, flattened to full paths.
    Use(UseDef),
    /// Anything else (enum, trait, const, macro definition, ...).
    Other,
}

/// A struct definition (named fields only; tuple structs keep indices
/// as field names).
#[derive(Debug)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// `(field name, type text)` pairs.
    pub fields: Vec<(String, String)>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplDef {
    /// The implementing type's head identifier (generics stripped).
    pub type_name: String,
    /// The implemented trait, if a trait impl.
    pub trait_name: Option<String>,
    /// Methods and associated functions.
    pub fns: Vec<FnDef>,
    /// `true` under `#[cfg(test)]`.
    pub cfg_test: bool,
}

/// An inline `mod`.
#[derive(Debug)]
pub struct ModDef {
    /// Module name.
    pub name: String,
    /// `true` under `#[cfg(test)]` (the conventional test module).
    pub cfg_test: bool,
    /// The module's items.
    pub items: Vec<Item>,
}

/// A flattened `use` declaration.
#[derive(Debug)]
pub struct UseDef {
    /// Every leaf path, `::`-joined (`std::time::SystemTime`).
    pub paths: Vec<String>,
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Parameters in order (receiver included as `self`).
    pub params: Vec<Param>,
    /// Return type text, `None` for `()`.
    pub ret_ty: Option<String>,
    /// Body, `None` for trait/extern declarations.
    pub body: Option<Block>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `true` for `#[test]` functions or anything under `#[cfg(test)]`.
    pub is_test: bool,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// Binding name (`self` for receivers, `_` if unnamed).
    pub name: String,
    /// Declared type text (empty for bare `self` receivers).
    pub ty: String,
}

/// A `{ ... }` block.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat>[: ty] = init;` — `names` are the pattern's bindings.
    Let {
        /// Binding names introduced by the pattern.
        names: Vec<String>,
        /// Declared type text, if annotated.
        ty: Option<String>,
        /// Initialiser.
        init: Option<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// An expression statement.
    Expr(Expr),
    /// A nested item (e.g. an inner `fn`).
    Item(Box<Item>),
    /// `return expr;`
    Return(Option<Expr>, u32),
}

/// Expression shape — just enough structure for dataflow.
#[derive(Debug)]
pub enum Expr {
    /// `a::b::c` (single identifiers are one-segment paths).
    Path {
        /// `::`-separated segments.
        segs: Vec<String>,
        /// 1-based line.
        line: u32,
    },
    /// A literal (number, string, char, bool).
    Lit {
        /// Verbatim token text.
        text: String,
        /// 1-based line.
        line: u32,
    },
    /// `path(args)`.
    Call {
        /// Callee path segments.
        callee: Vec<String>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `recv.method::<T>(args)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Turbofish text (without `::<>`), if present.
        turbofish: Option<String>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `base.field` (tuple indices keep the number as the name).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// 1-based line.
        line: u32,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `Path { field: expr, .. }`.
    StructLit {
        /// Struct path segments.
        path: Vec<String>,
        /// `(field, value)` pairs (shorthand fields get a path value).
        fields: Vec<(String, Expr)>,
        /// 1-based line.
        line: u32,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `for <pat> in iter { body }`.
    For {
        /// Pattern binding names.
        names: Vec<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
        /// 1-based line.
        line: u32,
    },
    /// `while cond { body }` / `while let pat = cond { body }`.
    While {
        /// Condition (the matched expression for `while let`).
        cond: Box<Expr>,
        /// `while let` pattern bindings.
        binds: Vec<String>,
        /// Loop body.
        body: Block,
        /// 1-based line.
        line: u32,
    },
    /// `loop { body }`.
    Loop {
        /// Loop body.
        body: Block,
        /// 1-based line.
        line: u32,
    },
    /// `if cond { .. } else ..` / `if let pat = cond { .. }`.
    If {
        /// Condition (the matched expression for `if let`).
        cond: Box<Expr>,
        /// `if let` pattern bindings.
        binds: Vec<String>,
        /// Then branch.
        then_branch: Block,
        /// Else branch (`Block` or chained `If`).
        else_branch: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// `(pattern bindings, arm body)` per arm.
        arms: Vec<(Vec<String>, Expr)>,
        /// 1-based line.
        line: u32,
    },
    /// `name!(args)` — args parsed best-effort as expressions.
    Macro {
        /// Macro name.
        name: String,
        /// Parsed arguments.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `target = value` / `target += value` (op is the compound char).
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Compound operator (`+`, `^`, ...), `None` for plain `=`.
        op: Option<String>,
        /// Assigned value.
        value: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// A flat binary-operator chain `a op b op c`.
    Binary {
        /// Operands in order.
        parts: Vec<Expr>,
        /// Operators between them (one fewer than parts).
        ops: Vec<String>,
        /// 1-based line.
        line: u32,
    },
    /// `expr as Type`.
    Cast {
        /// Cast operand.
        expr: Box<Expr>,
        /// Target type text.
        ty: String,
        /// 1-based line.
        line: u32,
    },
    /// `&expr` / `&mut expr` / unary `*`, `-`, `!`.
    Unary {
        /// Operand.
        expr: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `expr?`.
    Try {
        /// Operand.
        expr: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `(a, b, ...)` — also used for parenthesised expressions.
    Tuple {
        /// Elements.
        items: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `[a, b, ...]`.
    ArrayLit {
        /// Elements.
        items: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// A block expression.
    Block(Block, u32),
    /// Anything the parser could not classify.
    Unknown(u32),
}

impl Expr {
    /// The expression's source line.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Closure { line, .. }
            | Expr::For { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Try { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::ArrayLit { line, .. }
            | Expr::Block(_, line)
            | Expr::Unknown(line) => *line,
        }
    }
}

/// Parse `tokens` (comments are skipped internally) into an item tree.
pub fn parse_file(path: &str, crate_name: &str, tokens: &[Token]) -> ParsedFile {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut p = Parser { toks: code, pos: 0 };
    let items = p.parse_items(true);
    ParsedFile {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        items,
    }
}

struct Parser<'a> {
    toks: Vec<&'a Token>,
    pos: usize,
}

/// Item attributes the parser cares about.
#[derive(Default)]
struct Attrs {
    test: bool,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos).copied();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, text: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(text))
    }

    fn at_punct(&self, ch: char) -> bool {
        self.peek().is_some_and(|t| t.is_punct(ch))
    }

    fn eat_ident(&mut self, text: &str) -> bool {
        if self.at_ident(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if self.at_punct(ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn line(&self) -> u32 {
        self.peek().map_or(0, |t| t.line)
    }

    /// Skip a balanced `(..)`, `[..]`, `{..}` group. Assumes the cursor
    /// is at the opener; ends past the matching closer.
    fn skip_group(&mut self) {
        let (open, close) = match self.peek() {
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            Some(t) if t.is_punct('{') => ('{', '}'),
            _ => {
                self.bump();
                return;
            }
        };
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skip a `<...>` generics group (angle brackets nest; `(`/`[`/`{`
    /// inside are balanced too).
    fn skip_generics(&mut self) {
        if !self.at_punct('<') {
            return;
        }
        let mut angle = 0isize;
        while let Some(t) = self.peek() {
            if t.is_punct('<') {
                angle += 1;
                self.bump();
            } else if t.is_punct('>') {
                angle -= 1;
                self.bump();
                if angle <= 0 {
                    return;
                }
            } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                self.skip_group();
            } else {
                self.bump();
            }
        }
    }

    /// Collect type text until a top-level terminator (`,`, `)`, `{`,
    /// `;`, `=`, or `where`), balancing `<>`/`()`/`[]`.
    fn type_text(&mut self) -> String {
        let mut out = String::new();
        let mut angle = 0isize;
        let mut paren = 0isize;
        while let Some(t) = self.peek() {
            if angle <= 0 && paren <= 0 {
                let stop = t.is_punct(',')
                    || t.is_punct(')')
                    || t.is_punct('{')
                    || t.is_punct('}')
                    || t.is_punct(';')
                    || t.is_punct('=')
                    || t.is_ident("where");
                if stop {
                    break;
                }
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                // `->` inside `Fn(..) -> T` — the `-` was just pushed.
                if !out.ends_with('-') {
                    angle -= 1;
                    if angle < 0 {
                        break;
                    }
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
                if paren < 0 {
                    break;
                }
            }
            if t.kind == TokenKind::Ident && out.ends_with(|c: char| c.is_alphanumeric() || c == '_')
            {
                out.push(' ');
            }
            out.push_str(&t.text);
            self.bump();
        }
        out
    }

    // ---- items ----------------------------------------------------------

    /// Parse items until end of input (`top`) or a closing `}`.
    fn parse_items(&mut self, top: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct('}') && !top => break,
                _ => {}
            }
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                self.bump(); // always make progress
            }
        }
        items
    }

    fn parse_attrs(&mut self) -> Attrs {
        let mut attrs = Attrs::default();
        while self.at_punct('#') {
            self.bump();
            self.eat_punct('!');
            if !self.at_punct('[') {
                break;
            }
            // Collect attribute idents to the matching `]`.
            let mut depth = 0usize;
            let mut idents: Vec<String> = Vec::new();
            while let Some(t) = self.peek() {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        break;
                    }
                } else if t.kind == TokenKind::Ident {
                    idents.push(t.text.clone());
                }
                self.bump();
            }
            let is_test = idents.first().is_some_and(|s| s == "test")
                || (idents.first().is_some_and(|s| s == "cfg")
                    && idents.iter().any(|s| s == "test")
                    && !idents.iter().any(|s| s == "not"));
            attrs.test = attrs.test || is_test;
        }
        attrs
    }

    fn parse_item(&mut self) -> Option<Item> {
        let attrs = self.parse_attrs();
        // Visibility.
        if self.eat_ident("pub") && self.at_punct('(') {
            self.skip_group();
        }
        // Leading qualifiers on functions.
        while self.at_ident("const") && self.peek_at(1).is_some_and(|t| t.is_ident("fn"))
            || self.at_ident("unsafe")
            || self.at_ident("async")
            || self.at_ident("extern")
        {
            self.bump();
            if self.peek().is_some_and(|t| t.kind == TokenKind::Str) {
                self.bump(); // extern "C"
            }
        }
        let t = self.peek()?;
        if t.kind != TokenKind::Ident {
            self.bump();
            return None;
        }
        match t.text.as_str() {
            "fn" => Some(Item::Fn(self.parse_fn(attrs.test))),
            "struct" => Some(self.parse_struct()),
            "impl" => Some(Item::Impl(self.parse_impl(attrs.test))),
            "mod" => self.parse_mod(attrs.test),
            "use" => Some(self.parse_use()),
            "enum" | "trait" | "union" => {
                // Skip to the body and over it.
                while let Some(t) = self.peek() {
                    if t.is_punct('{') {
                        self.skip_group();
                        break;
                    }
                    if t.is_punct(';') {
                        self.bump();
                        break;
                    }
                    self.bump();
                }
                Some(Item::Other)
            }
            "const" | "static" | "type" | "macro_rules" => {
                // Terminated by `;` (macro_rules by its brace group).
                while let Some(t) = self.peek() {
                    if t.is_punct(';') {
                        self.bump();
                        break;
                    }
                    if t.is_punct('{') {
                        self.skip_group();
                        break;
                    }
                    if t.is_punct('(') || t.is_punct('[') {
                        self.skip_group();
                        continue;
                    }
                    self.bump();
                }
                Some(Item::Other)
            }
            _ => {
                self.bump();
                None
            }
        }
    }

    fn parse_fn(&mut self, is_test: bool) -> FnDef {
        let line = self.line();
        self.eat_ident("fn");
        let name = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => String::new(),
        };
        self.skip_generics();
        // Parameters.
        let mut params = Vec::new();
        if self.at_punct('(') {
            self.bump();
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct(')') => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                params.push(self.parse_param());
                self.eat_punct(',');
            }
        }
        // Return type.
        let mut ret_ty = None;
        if self.at_punct('-') && self.peek_at(1).is_some_and(|t| t.is_punct('>')) {
            self.bump();
            self.bump();
            let ty = self.type_text();
            if !ty.is_empty() {
                ret_ty = Some(ty);
            }
        }
        // Where clause.
        if self.eat_ident("where") {
            while let Some(t) = self.peek() {
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                if t.is_punct('<') {
                    self.skip_generics();
                } else {
                    self.bump();
                }
            }
        }
        let body = if self.at_punct('{') {
            Some(self.parse_block())
        } else {
            self.eat_punct(';');
            None
        };
        FnDef {
            name,
            params,
            ret_ty,
            body,
            line,
            is_test,
        }
    }

    fn parse_param(&mut self) -> Param {
        // Receiver forms: self / &self / &mut self / mut self.
        let mut probe = 0usize;
        while self
            .peek_at(probe)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.kind == TokenKind::Lifetime)
        {
            probe += 1;
        }
        if self.peek_at(probe).is_some_and(|t| t.is_ident("self")) {
            for _ in 0..=probe {
                self.bump();
            }
            // `self: Arc<Self>` form.
            let ty = if self.eat_punct(':') {
                self.type_text()
            } else {
                String::new()
            };
            return Param {
                name: "self".to_string(),
                ty,
            };
        }
        // Pattern up to `:`.
        let mut names = Vec::new();
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if depth == 0 && (t.is_punct(':') || t.is_punct(',') || t.is_punct(')')) {
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "_")
            {
                names.push(t.text.clone());
            }
            self.bump();
        }
        let ty = if self.eat_punct(':') {
            self.type_text()
        } else {
            String::new()
        };
        Param {
            name: names.into_iter().next().unwrap_or_else(|| "_".to_string()),
            ty,
        }
    }

    fn parse_struct(&mut self) -> Item {
        let line = self.line();
        self.eat_ident("struct");
        let name = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => return Item::Other,
        };
        self.skip_generics();
        if self.eat_ident("where") {
            while let Some(t) = self.peek() {
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                if t.is_punct('<') {
                    self.skip_generics();
                } else {
                    self.bump();
                }
            }
        }
        let mut fields = Vec::new();
        if self.at_punct('(') {
            // Tuple struct: fields named by index.
            self.bump();
            let mut ix = 0usize;
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct(')') => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                if self.eat_ident("pub") && self.at_punct('(') {
                    self.skip_group();
                }
                let ty = self.type_text();
                fields.push((ix.to_string(), ty));
                ix += 1;
                self.eat_punct(',');
            }
            self.eat_punct(';');
        } else if self.at_punct('{') {
            self.bump();
            loop {
                // Field attributes (`#[serde(skip)]`).
                while self.at_punct('#') {
                    self.bump();
                    if self.at_punct('[') {
                        self.skip_group();
                    }
                }
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct('}') => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                if self.eat_ident("pub") && self.at_punct('(') {
                    self.skip_group();
                }
                let fname = match self.peek() {
                    Some(t) if t.kind == TokenKind::Ident => {
                        let n = t.text.clone();
                        self.bump();
                        n
                    }
                    _ => {
                        self.bump();
                        continue;
                    }
                };
                if self.eat_punct(':') {
                    let ty = self.type_text();
                    fields.push((fname, ty));
                }
                self.eat_punct(',');
            }
        } else {
            self.eat_punct(';'); // unit struct
        }
        Item::Struct(StructDef { name, fields, line })
    }

    fn parse_impl(&mut self, cfg_test: bool) -> ImplDef {
        self.eat_ident("impl");
        self.skip_generics();
        let first = self.impl_path_head();
        let (type_name, trait_name) = if self.eat_ident("for") {
            let ty = self.impl_path_head();
            (ty, Some(first))
        } else {
            (first, None)
        };
        if self.eat_ident("where") {
            while let Some(t) = self.peek() {
                if t.is_punct('{') {
                    break;
                }
                if t.is_punct('<') {
                    self.skip_generics();
                } else {
                    self.bump();
                }
            }
        }
        let mut fns = Vec::new();
        if self.at_punct('{') {
            self.bump();
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct('}') => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                let before = self.pos;
                let attrs = self.parse_attrs();
                if self.eat_ident("pub") && self.at_punct('(') {
                    self.skip_group();
                }
                while self.at_ident("const") && self.peek_at(1).is_some_and(|t| t.is_ident("fn"))
                    || self.at_ident("unsafe")
                    || self.at_ident("async")
                {
                    self.bump();
                }
                if self.at_ident("fn") {
                    fns.push(self.parse_fn(attrs.test || cfg_test));
                } else if self.at_ident("type") || self.at_ident("const") {
                    while let Some(t) = self.peek() {
                        if t.is_punct(';') {
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                if self.pos == before {
                    self.bump();
                }
            }
        }
        ImplDef {
            type_name,
            trait_name,
            fns,
            cfg_test,
        }
    }

    /// Head identifier of an impl target path (`foo::Bar<T>` → `Bar`).
    fn impl_path_head(&mut self) -> String {
        let mut last = String::new();
        // Leading `&`/`mut`/lifetimes on the type.
        while self
            .peek()
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.kind == TokenKind::Lifetime)
        {
            self.bump();
        }
        while let Some(t) = self.peek() {
            if t.kind == TokenKind::Ident {
                last = t.text.clone();
                self.bump();
                if self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                    self.bump();
                    self.bump();
                    continue;
                }
                if self.at_punct('<') {
                    self.skip_generics();
                }
                break;
            }
            break;
        }
        last
    }

    fn parse_mod(&mut self, cfg_test: bool) -> Option<Item> {
        self.eat_ident("mod");
        let name = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => return None,
        };
        if self.eat_punct(';') {
            return Some(Item::Other); // out-of-line module
        }
        if !self.at_punct('{') {
            return None;
        }
        self.bump();
        let items = self.parse_items(false);
        self.eat_punct('}');
        Some(Item::Mod(ModDef {
            name,
            cfg_test,
            items,
        }))
    }

    fn parse_use(&mut self) -> Item {
        self.eat_ident("use");
        let mut paths = Vec::new();
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(&mut prefix, &mut paths);
        self.eat_punct(';');
        Item::Use(UseDef { paths })
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, out: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.peek() {
                Some(t) if t.kind == TokenKind::Ident => {
                    if t.text == "as" {
                        // Alias: keep the original path, skip the alias.
                        self.bump();
                        self.bump();
                        continue;
                    }
                    prefix.push(t.text.clone());
                    self.bump();
                }
                Some(t) if t.is_punct('*') => {
                    prefix.push("*".to_string());
                    self.bump();
                }
                Some(t) if t.is_punct('{') => {
                    self.bump();
                    loop {
                        match self.peek() {
                            None => break,
                            Some(t) if t.is_punct('}') => {
                                self.bump();
                                break;
                            }
                            _ => {}
                        }
                        self.parse_use_tree(prefix, out);
                        self.eat_punct(',');
                    }
                    prefix.truncate(depth_at_entry);
                    return;
                }
                _ => break,
            }
            if self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                self.bump();
                self.bump();
                continue;
            }
            break;
        }
        if prefix.len() > depth_at_entry {
            out.push(prefix.join("::"));
        }
        prefix.truncate(depth_at_entry);
    }

    // ---- statements and expressions -------------------------------------

    fn parse_block(&mut self) -> Block {
        let mut stmts = Vec::new();
        if !self.eat_punct('{') {
            return Block { stmts };
        }
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct('}') => {
                    self.bump();
                    break;
                }
                Some(t) if t.is_punct(';') => {
                    self.bump();
                    continue;
                }
                _ => {}
            }
            let before = self.pos;
            if let Some(stmt) = self.parse_stmt() {
                stmts.push(stmt);
            }
            if self.pos == before {
                self.bump();
            }
        }
        Block { stmts }
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        let t = self.peek()?;
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "let" => return Some(self.parse_let()),
                "return" => {
                    let line = t.line;
                    self.bump();
                    if self.at_punct(';') || self.at_punct('}') {
                        return Some(Stmt::Return(None, line));
                    }
                    let e = self.parse_expr(true);
                    self.eat_punct(';');
                    return Some(Stmt::Return(Some(e), line));
                }
                "fn" | "struct" | "impl" | "use" | "mod" | "enum" | "trait" | "const"
                | "static" | "type" | "macro_rules" => {
                    // `const` could start a const-block expression in
                    // theory; treat as item (none in this workspace).
                    return self.parse_item().map(|i| Stmt::Item(Box::new(i)));
                }
                _ => {}
            }
        }
        if t.is_punct('#') {
            // Statement-level attribute (e.g. #[allow]): consume, retry.
            self.parse_attrs();
            return self.parse_stmt();
        }
        let e = self.parse_expr(true);
        self.eat_punct(';');
        Some(Stmt::Expr(e))
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.eat_ident("let");
        let names = self.parse_pattern_names(&['=', ':', ';']);
        let ty = if self.eat_punct(':') {
            Some(self.type_text())
        } else {
            None
        };
        let init = if self.eat_punct('=') {
            Some(self.parse_expr(true))
        } else {
            None
        };
        // `let ... else { }` — the diverging block needs no modelling.
        if self.eat_ident("else") && self.at_punct('{') {
            let blk = self.parse_block();
            let _ = blk;
        }
        self.eat_punct(';');
        Stmt::Let {
            names,
            ty,
            init,
            line,
        }
    }

    /// Collect binding names from a pattern, stopping at any of `stops`
    /// at depth 0. Idents immediately followed by `(`/`{`/`::` are
    /// constructors/paths, not bindings.
    fn parse_pattern_names(&mut self, stops: &[char]) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if depth == 0 && stops.iter().any(|&c| t.is_punct(c)) {
                break;
            }
            // `else` ends a let-pattern; `in` ends a for-pattern; `=`
            // handled via stops.
            if depth == 0 && (t.is_ident("else") || t.is_ident("in")) {
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
                self.bump();
                continue;
            }
            if t.is_punct(')') || t.is_punct(']') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
                self.bump();
                continue;
            }
            if t.kind == TokenKind::Ident {
                let skip = matches!(t.text.as_str(), "mut" | "ref" | "_" | "box");
                let next_is_ctor = self.peek_at(1).is_some_and(|n| {
                    n.is_punct('(')
                        || n.is_punct('{')
                        || (n.is_punct(':') && self.peek_at(2).is_some_and(|m| m.is_punct(':')))
                });
                if !skip && !next_is_ctor {
                    names.push(t.text.clone());
                }
                if self.peek_at(1).is_some_and(|n| n.is_punct('{')) {
                    // Struct pattern: consume its braced body shallowly,
                    // collecting binding idents inside.
                    self.bump();
                    let mut b = 0usize;
                    while let Some(t) = self.peek() {
                        if t.is_punct('{') {
                            b += 1;
                        } else if t.is_punct('}') {
                            b -= 1;
                            if b == 0 {
                                self.bump();
                                break;
                            }
                        } else if t.kind == TokenKind::Ident
                            && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                        {
                            names.push(t.text.clone());
                        }
                        self.bump();
                    }
                    continue;
                }
            }
            self.bump();
        }
        names
    }

    /// Parse an expression. `allow_struct` gates `Path { .. }` literal
    /// parsing (off in `if`/`while`/`match`-scrutinee/`for`-iter heads).
    fn parse_expr(&mut self, allow_struct: bool) -> Expr {
        self.parse_assign(allow_struct)
    }

    fn parse_assign(&mut self, allow_struct: bool) -> Expr {
        let lhs = self.parse_binary(allow_struct);
        // `=` or compound `op=` (the tokenizer yields single puncts).
        if self.at_punct('=') && !self.peek_at(1).is_some_and(|t| t.is_punct('=')) {
            let line = self.line();
            self.bump();
            let value = self.parse_expr(allow_struct);
            return Expr::Assign {
                target: Box::new(lhs),
                op: None,
                value: Box::new(value),
                line,
            };
        }
        let compound = matches!(self.peek(), Some(t) if "+-*/%^&|".contains(&t.text))
            && self.peek_at(1).is_some_and(|t| t.is_punct('='))
            // Not `==`, `!=`, `<=`, `>=`; `&=` vs `&&`; avoid `a & = b`.
            && !self.peek_at(2).is_some_and(|t| t.is_punct('='));
        if compound {
            let op = self.peek().map(|t| t.text.clone()).unwrap_or_default();
            let line = self.line();
            self.bump();
            self.bump();
            let value = self.parse_expr(allow_struct);
            return Expr::Assign {
                target: Box::new(lhs),
                op: Some(op),
                value: Box::new(value),
                line,
            };
        }
        lhs
    }

    fn parse_binary(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        let first = self.parse_unary(allow_struct);
        let mut parts = vec![first];
        let mut ops = Vec::new();
        while let Some(op) = self.binary_op_here() {
            let e = self.parse_unary(allow_struct);
            ops.push(op);
            parts.push(e);
        }
        if parts.len() == 1 {
            return parts.into_iter().next().unwrap_or(Expr::Unknown(line));
        }
        Expr::Binary { parts, ops, line }
    }

    /// If the cursor is at a binary operator, consume and return it.
    fn binary_op_here(&mut self) -> Option<String> {
        let t = self.peek()?;
        if t.kind != TokenKind::Punct {
            return None;
        }
        let c = t.text.chars().next()?;
        let next = self.peek_at(1);
        let two = |p: &mut Self, s: &str| {
            p.bump();
            p.bump();
            Some(s.to_string())
        };
        match c {
            '+' | '-' | '*' | '/' | '%' | '^' => {
                if next.is_some_and(|t| t.is_punct('=')) {
                    return None; // compound assignment, handled above
                }
                self.bump();
                Some(c.to_string())
            }
            '=' if next.is_some_and(|t| t.is_punct('=')) => two(self, "=="),
            '!' if next.is_some_and(|t| t.is_punct('=')) => two(self, "!="),
            '&' => {
                if next.is_some_and(|t| t.is_punct('&')) {
                    return two(self, "&&");
                }
                if next.is_some_and(|t| t.is_punct('=')) {
                    return None;
                }
                self.bump();
                Some("&".to_string())
            }
            '|' => {
                if next.is_some_and(|t| t.is_punct('|')) {
                    return two(self, "||");
                }
                if next.is_some_and(|t| t.is_punct('=')) {
                    return None;
                }
                self.bump();
                Some("|".to_string())
            }
            '<' => {
                if next.is_some_and(|t| t.is_punct('=')) {
                    return two(self, "<=");
                }
                if next.is_some_and(|t| t.is_punct('<')) {
                    return two(self, "<<");
                }
                self.bump();
                Some("<".to_string())
            }
            '>' => {
                if next.is_some_and(|t| t.is_punct('=')) {
                    return two(self, ">=");
                }
                if next.is_some_and(|t| t.is_punct('>')) {
                    return two(self, ">>");
                }
                self.bump();
                Some(">".to_string())
            }
            '.' if next.is_some_and(|t| t.is_punct('.')) => {
                // Range `..` / `..=`.
                self.bump();
                self.bump();
                self.eat_punct('=');
                Some("..".to_string())
            }
            _ => None,
        }
    }

    fn parse_unary(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        if self.at_punct('&') && !self.peek_at(1).is_some_and(|t| t.is_punct('&')) {
            self.bump();
            self.eat_ident("mut");
            let e = self.parse_unary(allow_struct);
            return Expr::Unary {
                expr: Box::new(e),
                line,
            };
        }
        if self.at_punct('*') || self.at_punct('!') || self.at_punct('-') {
            self.bump();
            let e = self.parse_unary(allow_struct);
            return Expr::Unary {
                expr: Box::new(e),
                line,
            };
        }
        let mut e = self.parse_postfix(allow_struct);
        // Casts bind tighter than binary ops: `x as f64 + y`.
        while self.at_ident("as") {
            let line = self.line();
            self.bump();
            let mut ty = String::new();
            // A cast type: path + optional generics; stop conservatively.
            while let Some(t) = self.peek() {
                if t.kind == TokenKind::Ident {
                    ty.push_str(&t.text);
                    self.bump();
                    if self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                        ty.push_str("::");
                        self.bump();
                        self.bump();
                        continue;
                    }
                    if self.at_punct('<') {
                        self.skip_generics();
                    }
                }
                break;
            }
            e = Expr::Cast {
                expr: Box::new(e),
                ty,
                line,
            };
        }
        e
    }

    fn parse_postfix(&mut self, allow_struct: bool) -> Expr {
        let mut e = self.parse_primary(allow_struct);
        loop {
            if self.at_punct('.') {
                // Not a range (ranges are consumed as binary ops).
                if self.peek_at(1).is_some_and(|t| t.is_punct('.')) {
                    break;
                }
                let line = self.line();
                self.bump();
                match self.peek() {
                    Some(t) if t.kind == TokenKind::Ident => {
                        let name = t.text.clone();
                        self.bump();
                        if name == "await" {
                            continue;
                        }
                        // Turbofish.
                        let mut turbofish = None;
                        if self.at_punct(':')
                            && self.peek_at(1).is_some_and(|t| t.is_punct(':'))
                            && self.peek_at(2).is_some_and(|t| t.is_punct('<'))
                        {
                            self.bump();
                            self.bump();
                            let start = self.pos;
                            self.skip_generics();
                            let text: String = self.toks[start..self.pos]
                                .iter()
                                .map(|t| t.text.as_str())
                                .collect();
                            // Drop the enclosing angle brackets: the
                            // stored text is the type list itself.
                            let text = text
                                .strip_prefix('<')
                                .unwrap_or(&text)
                                .strip_suffix('>')
                                .unwrap_or(&text)
                                .to_string();
                            turbofish = Some(text);
                        }
                        if self.at_punct('(') {
                            let args = self.parse_call_args();
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                method: name,
                                turbofish,
                                args,
                                line,
                            };
                        } else {
                            e = Expr::Field {
                                base: Box::new(e),
                                name,
                                line,
                            };
                        }
                    }
                    Some(t) if t.kind == TokenKind::Number => {
                        let name = t.text.clone();
                        self.bump();
                        e = Expr::Field {
                            base: Box::new(e),
                            name,
                            line,
                        };
                    }
                    _ => break,
                }
                continue;
            }
            if self.at_punct('(') {
                let line = e.line();
                let args = self.parse_call_args();
                // Call on a non-path expression (e.g. a closure call):
                // model as a method-less call via MethodCall "call".
                e = match e {
                    Expr::Path { segs, .. } => Expr::Call {
                        callee: segs,
                        args,
                        line,
                    },
                    other => Expr::MethodCall {
                        recv: Box::new(other),
                        method: "__call".to_string(),
                        turbofish: None,
                        args,
                        line,
                    },
                };
                continue;
            }
            if self.at_punct('[') {
                let line = self.line();
                self.bump();
                let index = if self.at_punct(']') {
                    Expr::Unknown(line)
                } else {
                    self.parse_expr(true)
                };
                self.eat_punct(']');
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                    line,
                };
                continue;
            }
            if self.at_punct('?') {
                let line = self.line();
                self.bump();
                e = Expr::Try {
                    expr: Box::new(e),
                    line,
                };
                continue;
            }
            break;
        }
        e
    }

    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct('(') {
            return args;
        }
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct(')') => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            let before = self.pos;
            args.push(self.parse_expr(true));
            self.eat_punct(',');
            if self.pos == before {
                self.bump();
            }
        }
        args
    }

    fn parse_primary(&mut self, allow_struct: bool) -> Expr {
        let Some(t) = self.peek() else {
            return Expr::Unknown(0);
        };
        let line = t.line;
        // Literals.
        if matches!(t.kind, TokenKind::Number | TokenKind::Str) {
            let text = t.text.clone();
            self.bump();
            return Expr::Lit { text, line };
        }
        if t.kind == TokenKind::Lifetime {
            // Loop label: `'outer: loop { .. }`.
            self.bump();
            self.eat_punct(':');
            return self.parse_primary(allow_struct);
        }
        // Grouping / tuples.
        if t.is_punct('(') {
            self.bump();
            let mut items = Vec::new();
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct(')') => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                let before = self.pos;
                items.push(self.parse_expr(true));
                self.eat_punct(',');
                if self.pos == before {
                    self.bump();
                }
            }
            if items.len() == 1 {
                return items.into_iter().next().unwrap_or(Expr::Unknown(line));
            }
            return Expr::Tuple { items, line };
        }
        if t.is_punct('[') {
            self.bump();
            let mut items = Vec::new();
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct(']') => {
                        self.bump();
                        break;
                    }
                    Some(t) if t.is_punct(';') => {
                        // `[elem; N]` repetition.
                        self.bump();
                        continue;
                    }
                    _ => {}
                }
                let before = self.pos;
                items.push(self.parse_expr(true));
                self.eat_punct(',');
                if self.pos == before {
                    self.bump();
                }
            }
            return Expr::ArrayLit { items, line };
        }
        if t.is_punct('{') {
            let block = self.parse_block();
            return Expr::Block(block, line);
        }
        // Closures.
        if t.is_punct('|') || t.is_ident("move") {
            let after_move = if t.is_ident("move") { 1 } else { 0 };
            let is_closure = self
                .peek_at(after_move)
                .is_some_and(|t| t.is_punct('|'));
            if is_closure {
                if after_move == 1 {
                    self.bump(); // move
                }
                return self.parse_closure(line);
            }
        }
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "if" => return self.parse_if(),
                "match" => return self.parse_match(),
                "for" => return self.parse_for(),
                "while" => return self.parse_while(),
                "loop" => {
                    self.bump();
                    let body = self.parse_block();
                    return Expr::Loop { body, line };
                }
                "break" | "continue" => {
                    self.bump();
                    // Optional label / value.
                    if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                        self.bump();
                    }
                    if !(self.at_punct(';') || self.at_punct('}') || self.at_punct(')')) {
                        let _ = self.parse_expr(allow_struct);
                    }
                    return Expr::Unknown(line);
                }
                "return" => {
                    // Value-position `return e` (e.g. a match arm):
                    // modelled as the pseudo-macro `return!(e)` so
                    // dataflow can route `e` into the fn's return.
                    self.bump();
                    if !(self.at_punct(';') || self.at_punct('}') || self.at_punct(')')) {
                        let e = self.parse_expr(allow_struct);
                        return Expr::Macro {
                            name: "return".to_string(),
                            args: vec![e],
                            line,
                        };
                    }
                    return Expr::Unknown(line);
                }
                "true" | "false" => {
                    let text = t.text.clone();
                    self.bump();
                    return Expr::Lit { text, line };
                }
                "unsafe" => {
                    self.bump();
                    if self.at_punct('{') {
                        let block = self.parse_block();
                        return Expr::Block(block, line);
                    }
                    return Expr::Unknown(line);
                }
                _ => {}
            }
            return self.parse_path_expr(allow_struct);
        }
        self.bump();
        Expr::Unknown(line)
    }

    fn parse_closure(&mut self, line: u32) -> Expr {
        // At `|` (params) or `||`.
        let mut params = Vec::new();
        self.eat_punct('|');
        if !self.eat_punct('|') {
            // Non-empty parameter list up to the closing `|`.
            let mut depth = 0usize;
            let mut expect_name = true;
            while let Some(t) = self.peek() {
                if depth == 0 && t.is_punct('|') {
                    self.bump();
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && t.is_punct(',') {
                    expect_name = true;
                } else if depth == 0 && t.is_punct(':') {
                    expect_name = false; // a type annotation follows
                } else if depth == 0
                    && expect_name
                    && t.kind == TokenKind::Ident
                    && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                {
                    params.push(t.text.clone());
                    expect_name = false;
                } else if depth == 1
                    && expect_name
                    && t.kind == TokenKind::Ident
                    && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                {
                    // Tuple-pattern params: |(k, v)|.
                    params.push(t.text.clone());
                }
                self.bump();
            }
        }
        // Optional return type `-> T`.
        if self.at_punct('-') && self.peek_at(1).is_some_and(|t| t.is_punct('>')) {
            self.bump();
            self.bump();
            let _ = self.type_text();
        }
        let body = self.parse_expr(true);
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }

    fn parse_if(&mut self) -> Expr {
        let line = self.line();
        self.eat_ident("if");
        let mut binds = Vec::new();
        if self.eat_ident("let") {
            binds = self.parse_pattern_names(&['=']);
            self.eat_punct('=');
        }
        let cond = self.parse_expr(false);
        let then_branch = self.parse_block();
        let else_branch = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.parse_if()))
            } else {
                let blk = self.parse_block();
                Some(Box::new(Expr::Block(blk, line)))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            binds,
            then_branch,
            else_branch,
            line,
        }
    }

    fn parse_while(&mut self) -> Expr {
        let line = self.line();
        self.eat_ident("while");
        let mut binds = Vec::new();
        if self.eat_ident("let") {
            binds = self.parse_pattern_names(&['=']);
            self.eat_punct('=');
        }
        let cond = self.parse_expr(false);
        let body = self.parse_block();
        Expr::While {
            cond: Box::new(cond),
            binds,
            body,
            line,
        }
    }

    fn parse_for(&mut self) -> Expr {
        let line = self.line();
        self.eat_ident("for");
        let names = self.parse_pattern_names(&[]);
        self.eat_ident("in");
        let iter = self.parse_expr(false);
        let body = self.parse_block();
        Expr::For {
            names,
            iter: Box::new(iter),
            body,
            line,
        }
    }

    fn parse_match(&mut self) -> Expr {
        let line = self.line();
        self.eat_ident("match");
        let scrutinee = self.parse_expr(false);
        let mut arms = Vec::new();
        if self.eat_punct('{') {
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct('}') => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                // Pattern (optionally guarded) up to `=>`.
                let mut binds = Vec::new();
                let mut depth = 0usize;
                while let Some(t) = self.peek() {
                    if depth == 0 && t.is_punct('=') && self.peek_at(1).is_some_and(|n| n.is_punct('>'))
                    {
                        self.bump();
                        self.bump();
                        break;
                    }
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth = depth.saturating_sub(1);
                    } else if t.kind == TokenKind::Ident
                        && !matches!(t.text.as_str(), "mut" | "ref" | "_" | "if")
                    {
                        let next_is_ctor = self.peek_at(1).is_some_and(|n| {
                            n.is_punct('(')
                                || n.is_punct('{')
                                || (n.is_punct(':')
                                    && self.peek_at(2).is_some_and(|m| m.is_punct(':')))
                        });
                        if !next_is_ctor {
                            binds.push(t.text.clone());
                        }
                    }
                    self.bump();
                }
                let body = self.parse_expr(true);
                self.eat_punct(',');
                arms.push((binds, body));
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }

    fn parse_path_expr(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        let mut segs = Vec::new();
        let mut turbofish_tail = false;
        while let Some(t) = self.peek() {
            if t.kind != TokenKind::Ident {
                break;
            }
            segs.push(t.text.clone());
            self.bump();
            if self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                self.bump();
                self.bump();
                if self.at_punct('<') {
                    // `Vec::<T>::new` — skip the turbofish, continue.
                    self.skip_generics();
                    turbofish_tail = true;
                    if self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        let _ = turbofish_tail;
        if segs.is_empty() {
            return Expr::Unknown(line);
        }
        // Macro call `name!(...)` / `name![...]` / `name!{...}`.
        if self.at_punct('!')
            && self
                .peek_at(1)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
        {
            self.bump();
            let name = segs.join("::");
            let args = self.parse_macro_args();
            return Expr::Macro { name, args, line };
        }
        // Struct literal.
        if allow_struct && self.at_punct('{') {
            let looks_like_struct = segs
                .last()
                .is_some_and(|s| s.chars().next().is_some_and(char::is_uppercase))
                && self.peek_at(1).is_some_and(|t| {
                    (t.kind == TokenKind::Ident
                        && self
                            .peek_at(2)
                            .is_some_and(|n| n.is_punct(':') || n.is_punct(',') || n.is_punct('}')))
                        || t.is_punct('}')
                        || t.is_punct('.')
                });
            if looks_like_struct {
                return self.parse_struct_lit(segs, line);
            }
        }
        Expr::Path { segs, line }
    }

    fn parse_macro_args(&mut self) -> Vec<Expr> {
        // At `(`, `[`, or `{`: parse comma-separated expressions
        // best-effort inside the group.
        let close = match self.peek() {
            Some(t) if t.is_punct('(') => ')',
            Some(t) if t.is_punct('[') => ']',
            Some(t) if t.is_punct('{') => '}',
            _ => return Vec::new(),
        };
        self.bump();
        let mut args = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct(close) => {
                    self.bump();
                    break;
                }
                Some(t) if t.is_punct(',') || t.is_punct(';') => {
                    self.bump();
                    continue;
                }
                _ => {}
            }
            let before = self.pos;
            args.push(self.parse_expr(true));
            if self.pos == before {
                self.bump();
            }
        }
        args
    }

    fn parse_struct_lit(&mut self, path: Vec<String>, line: u32) -> Expr {
        self.eat_punct('{');
        let mut fields = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct('}') => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            if self.at_punct('.') && self.peek_at(1).is_some_and(|t| t.is_punct('.')) {
                // `..base` — parse the base expression for its flow.
                self.bump();
                self.bump();
                let base = self.parse_expr(true);
                fields.push(("..".to_string(), base));
                self.eat_punct(',');
                continue;
            }
            let fname = match self.peek() {
                Some(t) if t.kind == TokenKind::Ident => {
                    let n = t.text.clone();
                    self.bump();
                    n
                }
                _ => {
                    self.bump();
                    continue;
                }
            };
            let value = if self.eat_punct(':') {
                self.parse_expr(true)
            } else {
                // Shorthand `Field { name }`.
                Expr::Path {
                    segs: vec![fname.clone()],
                    line,
                }
            };
            fields.push((fname, value));
            self.eat_punct(',');
        }
        Expr::StructLit { path, fields, line }
    }
}

/// Walk every function in `items` (free, impl, nested mods), calling
/// `f(owner_type, fn)` — `owner_type` is the impl type for methods.
pub fn visit_fns<'a>(items: &'a [Item], f: &mut impl FnMut(Option<&'a str>, &'a FnDef, bool)) {
    visit_fns_inner(items, false, f);
}

fn visit_fns_inner<'a>(
    items: &'a [Item],
    in_test_mod: bool,
    f: &mut impl FnMut(Option<&'a str>, &'a FnDef, bool),
) {
    for item in items {
        match item {
            Item::Fn(fd) => f(None, fd, in_test_mod),
            Item::Impl(imp) => {
                for fd in &imp.fns {
                    f(Some(&imp.type_name), fd, in_test_mod || imp.cfg_test);
                }
            }
            Item::Mod(m) => visit_fns_inner(&m.items, in_test_mod || m.cfg_test, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn parse(src: &str) -> ParsedFile {
        parse_file("test.rs", "test", &tokenize(src))
    }

    fn only_fn(file: &ParsedFile) -> &FnDef {
        for item in &file.items {
            if let Item::Fn(f) = item {
                return f;
            }
        }
        panic!("no fn parsed");
    }

    #[test]
    fn parses_fn_signature() {
        let f = parse("pub fn foo(a: u32, b: &FxHashMap<K, V>) -> Vec<f64> { a }");
        let fd = only_fn(&f);
        assert_eq!(fd.name, "foo");
        assert_eq!(fd.params.len(), 2);
        assert_eq!(fd.params[0].name, "a");
        assert!(fd.params[1].ty.contains("FxHashMap"));
        assert!(fd.ret_ty.as_deref().unwrap_or("").contains("Vec"));
        assert!(fd.body.is_some());
    }

    #[test]
    fn parses_impl_methods_and_receiver() {
        let f = parse("impl Foo { fn bar(&self, x: u32) -> u32 { self.y + x } }");
        let Item::Impl(imp) = &f.items[0] else {
            panic!("expected impl");
        };
        assert_eq!(imp.type_name, "Foo");
        assert_eq!(imp.fns[0].name, "bar");
        assert_eq!(imp.fns[0].params[0].name, "self");
    }

    #[test]
    fn parses_trait_impl_type() {
        let f = parse("impl EvolutionMeasure for ClassChangeCount { fn id(&self) -> MeasureId { MeasureId::new(\"x\") } }");
        let Item::Impl(imp) = &f.items[0] else {
            panic!("expected impl");
        };
        assert_eq!(imp.type_name, "ClassChangeCount");
        assert_eq!(imp.trait_name.as_deref(), Some("EvolutionMeasure"));
    }

    #[test]
    fn parses_struct_fields() {
        let f = parse("struct S { pub a: FxHashMap<TermId, f64>, b: Mutex<Vec<u8>> }");
        let Item::Struct(s) = &f.items[0] else {
            panic!("expected struct");
        };
        assert_eq!(s.fields.len(), 2);
        assert!(s.fields[0].1.contains("FxHashMap"));
        assert!(s.fields[1].1.contains("Mutex"));
    }

    #[test]
    fn parses_method_chain() {
        let f = parse("fn f(m: &FxHashMap<u32, f64>) -> f64 { m.values().copied().sum::<f64>() }");
        let fd = only_fn(&f);
        let Some(body) = &fd.body else {
            panic!("body")
        };
        let Stmt::Expr(e) = &body.stmts[0] else {
            panic!("expr stmt")
        };
        let Expr::MethodCall {
            method, turbofish, recv, ..
        } = e
        else {
            panic!("method call, got {e:?}")
        };
        assert_eq!(method, "sum");
        assert_eq!(turbofish.as_deref(), Some("f64"));
        let Expr::MethodCall { method, .. } = recv.as_ref() else {
            panic!("chained")
        };
        assert_eq!(method, "copied");
    }

    #[test]
    fn parses_for_loop_over_reference() {
        let f = parse("fn f(m: &FxHashSet<u32>) { for &x in m { use_it(x); } }");
        let fd = only_fn(&f);
        let Stmt::Expr(Expr::For { names, iter, .. }) =
            &fd.body.as_ref().expect("body").stmts[0]
        else {
            panic!("for loop")
        };
        assert_eq!(names, &["x"]);
        assert!(matches!(iter.as_ref(), Expr::Path { segs, .. } if segs == &["m"]));
    }

    #[test]
    fn parses_struct_literal_and_shorthand() {
        let f = parse("fn f() -> P { P { from, to, digest: d(x) } }");
        let fd = only_fn(&f);
        let Stmt::Expr(Expr::StructLit { path, fields, .. }) =
            &fd.body.as_ref().expect("body").stmts[0]
        else {
            panic!("struct literal")
        };
        assert_eq!(path, &["P"]);
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].0, "from");
        assert!(matches!(&fields[2].1, Expr::Call { callee, .. } if callee == &["d"]));
    }

    #[test]
    fn if_condition_does_not_eat_block_as_struct_lit() {
        let f = parse("fn f(x: Foo) -> u32 { if x.bar { 1 } else { 2 } }");
        let fd = only_fn(&f);
        let Stmt::Expr(Expr::If { cond, .. }) = &fd.body.as_ref().expect("body").stmts[0] else {
            panic!("if expr")
        };
        assert!(matches!(cond.as_ref(), Expr::Field { .. }));
    }

    #[test]
    fn parses_closures_with_params() {
        let f = parse("fn f(v: Vec<u32>) -> Vec<u32> { v.iter().map(|&(k, w)| k + w).collect() }");
        let fd = only_fn(&f);
        let Stmt::Expr(Expr::MethodCall { recv, method, .. }) =
            &fd.body.as_ref().expect("body").stmts[0]
        else {
            panic!("collect")
        };
        assert_eq!(method, "collect");
        let Expr::MethodCall { args, .. } = recv.as_ref() else {
            panic!("map")
        };
        let Expr::Closure { params, .. } = &args[0] else {
            panic!("closure")
        };
        assert_eq!(params, &["k", "w"]);
    }

    #[test]
    fn parses_use_tree() {
        let f = parse("use std::time::{SystemTime, Instant};\nuse evorec_kb::FxHashMap;");
        let Item::Use(u) = &f.items[0] else {
            panic!("use")
        };
        assert!(u.paths.contains(&"std::time::SystemTime".to_string()));
        assert!(u.paths.contains(&"std::time::Instant".to_string()));
    }

    #[test]
    fn marks_test_functions_and_modules() {
        let f = parse(
            "#[test]\nfn t() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn helper() {} }\nfn normal() {}",
        );
        let mut seen = Vec::new();
        visit_fns(&f.items, &mut |_, fd, in_test| {
            seen.push((fd.name.clone(), fd.is_test || in_test));
        });
        assert!(seen.contains(&("t".to_string(), true)));
        assert!(seen.contains(&("helper".to_string(), true)));
        assert!(seen.contains(&("normal".to_string(), false)));
    }

    #[test]
    fn parses_match_arms_with_bindings() {
        let f = parse("fn f(o: Option<u32>) -> u32 { match o { Some(v) => v, None => 0 } }");
        let fd = only_fn(&f);
        let Stmt::Expr(Expr::Match { arms, .. }) = &fd.body.as_ref().expect("body").stmts[0]
        else {
            panic!("match")
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].0, vec!["v".to_string()]);
    }

    #[test]
    fn parses_compound_assignment() {
        let f = parse("fn f() { let mut acc = 0.0; acc += x; }");
        let fd = only_fn(&f);
        let Stmt::Expr(Expr::Assign { op, .. }) = &fd.body.as_ref().expect("body").stmts[1]
        else {
            panic!("assign")
        };
        assert_eq!(op.as_deref(), Some("+"));
    }

    #[test]
    fn tolerates_exotic_items_without_losing_following_fns() {
        let f = parse(
            "enum E { A, B(u32) }\ntrait T { fn default_method(&self) {} }\nconst X: u32 = 3;\nfn after() {}",
        );
        let mut names = Vec::new();
        visit_fns(&f.items, &mut |_, fd, _| names.push(fd.name.clone()));
        assert!(names.contains(&"after".to_string()));
    }

    #[test]
    fn parses_let_else_without_derailing() {
        let f = parse("fn f(o: Option<u32>) -> u32 { let Some(v) = o else { return 0; }; v }");
        let fd = only_fn(&f);
        let Stmt::Let { names, .. } = &fd.body.as_ref().expect("body").stmts[0] else {
            panic!("let")
        };
        assert_eq!(names, &["v"]);
        assert_eq!(fd.body.as_ref().expect("body").stmts.len(), 2);
    }
}
