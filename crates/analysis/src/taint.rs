//! Interprocedural determinism-taint analysis.
//!
//! **Sources** introduce nondeterminism: iteration over hash-ordered
//! containers (`FxHashMap`/`FxHashSet`/`HashMap`/`HashSet`), wall-clock
//! reads (`SystemTime::now`, `Instant::now`, `.elapsed()`), unseeded
//! RNG construction (`thread_rng`, `from_entropy`, `rand::random`),
//! and thread identity (`thread::current`).
//!
//! Taint has two levels. **Order** taint means a *sequence* depends on
//! hash order; it is cleansed by order-erasing operations — total-order
//! sorts, collection into keyed containers (`BTreeMap`/`BTreeSet`/
//! `TripleStore` erase order deterministically, hash maps defer it to
//! the next iteration), commutative integer folds (`+`, `^`, `|`,
//! `&`), and order-free reductions (`len`, `count`, `any`, `contains`).
//! **Value** taint means the *bits of a value* depend on
//! nondeterminism: clock/RNG/thread reads are born at Value, and
//! floating-point accumulation over an Order-tainted sequence is
//! *promoted* to Value (float addition is not associative, so the sum's
//! bits depend on iteration order). Value taint survives sorting — no
//! reordering can undo it. The `evorec-obs` recording surface
//! (`Tracer`, `SpanGuard`, `Histogram` and friends) is a registered
//! *cleanser*: the tracer clock's reads terminate in the metrics plane
//! (histograms, the trace ring) and the handles it returns are
//! sequence ids, so obs-typed calls carry no taint out — see
//! `is_obs_plane` below.
//!
//! **Sinks** are the replay surface: fingerprint construction
//! (Order-sensitive), `LiveContext`/lineage publishes (Order), codec
//! encodes (Order), and report/ranking emission. `from_scores` sorts
//! its input with a total comparator, so it only fires on Value taint;
//! raw report struct literals fire on either level.
//!
//! Propagation is interprocedural: each function gets a summary —
//! which params flow to the return (and whether their taint is
//! promoted on the way), and which params reach sinks inside — and
//! summaries are iterated to a fixpoint across the whole workspace.
//! Violations carry the full source → call-chain → sink trace.

use crate::audit::{AuditFinding, Severity};
use crate::callgraph::{bind_closure_params, infer_expr, TypeEnv};
use crate::parser::{Block, Expr, Stmt};
use crate::symbols::Symbols;
use crate::ty::Ty;
use std::collections::HashMap;

/// Taint level: `Order` (a sequence depends on hash order) or `Value`
/// (a value's bits depend on nondeterminism). `Value` is stronger.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Sequence order is nondeterministic; values are not.
    Order,
    /// Value bits are nondeterministic. Never cleansed by reordering.
    Value,
}

/// Token identity: a concrete source site, or a caller argument.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tok {
    /// A real source, keyed by `kind@file:line`.
    Src(String),
    /// Taint of parameter `i` at the given *origin* level.
    Param(usize, Level),
}

/// One taint token with its current level and source→here trace.
#[derive(Clone, Debug)]
pub struct TokEntry {
    /// Identity (dedup key together with `level`).
    pub tok: Tok,
    /// Current level (≥ the origin level for params).
    pub level: Level,
    /// Human-readable steps from the source to this point.
    pub trace: Vec<String>,
}

/// A join-semilattice taint set.
#[derive(Clone, Debug, Default)]
pub struct Taint {
    /// Entries, deduped by `(tok, level)` keeping the shortest trace.
    pub toks: Vec<TokEntry>,
}

/// Trace steps are capped so pathological chains stay readable.
const MAX_TRACE: usize = 12;

impl Taint {
    fn src(kind: &str, site: &str, level: Level) -> Taint {
        Taint {
            toks: vec![TokEntry {
                tok: Tok::Src(format!("{kind}@{site}")),
                level,
                trace: vec![format!("{kind} at {site}")],
            }],
        }
    }

    fn param(ix: usize) -> Taint {
        Taint {
            toks: vec![
                TokEntry {
                    tok: Tok::Param(ix, Level::Order),
                    level: Level::Order,
                    trace: Vec::new(),
                },
                TokEntry {
                    tok: Tok::Param(ix, Level::Value),
                    level: Level::Value,
                    trace: Vec::new(),
                },
            ],
        }
    }

    fn join(&mut self, other: &Taint) {
        for e in &other.toks {
            self.insert(e.clone());
        }
    }

    fn insert(&mut self, entry: TokEntry) {
        for existing in &mut self.toks {
            if existing.tok == entry.tok && existing.level == entry.level {
                if entry.trace.len() < existing.trace.len() {
                    existing.trace = entry.trace;
                }
                return;
            }
        }
        self.toks.push(entry);
    }

    /// All entries promoted to Value (float accumulation), with a
    /// trace note at the promotion site.
    fn promoted(&self, note: &str) -> Taint {
        let mut out = Taint::default();
        for e in &self.toks {
            let mut t = e.clone();
            if t.level == Level::Order {
                t.level = Level::Value;
                push_step(&mut t.trace, note);
            }
            out.insert(t);
        }
        out
    }

    /// Order entries removed (sorts, keyed collection); Value persists.
    fn cleansed_order(&self) -> Taint {
        Taint {
            toks: self
                .toks
                .iter()
                .filter(|e| e.level == Level::Value)
                .cloned()
                .collect(),
        }
    }

    /// Entries at exactly `level`.
    fn at_level(&self, level: Level) -> Vec<&TokEntry> {
        self.toks.iter().filter(|e| e.level == level).collect()
    }

    /// Entries satisfying a sink's minimum level.
    fn firing(&self, min: Level) -> Vec<&TokEntry> {
        self.toks.iter().filter(|e| e.level >= min).collect()
    }
}

fn push_step(trace: &mut Vec<String>, step: &str) {
    if trace.len() < MAX_TRACE {
        trace.push(step.to_string());
    }
}

// ---- summaries -----------------------------------------------------------

/// A sink reachable from a parameter inside some function.
#[derive(Clone, Debug)]
pub struct ParamSink {
    /// Parameter index whose taint reaches the sink.
    pub param: usize,
    /// Level the argument must carry for the sink to fire.
    pub origin: Level,
    /// Violated rule id.
    pub rule: &'static str,
    /// Sink file (repo-relative).
    pub path: String,
    /// Sink line.
    pub line: u32,
    /// Trace steps from the parameter to the sink.
    pub suffix: Vec<String>,
}

/// Per-function dataflow summary.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Tokens flowing to the return value.
    pub ret: Vec<TokEntry>,
    /// Sinks reachable from parameters.
    pub sinks: Vec<ParamSink>,
}

impl Summary {
    /// Trace-insensitive signature for fixpoint comparison.
    fn signature(&self) -> Vec<(String, u8)> {
        let mut sig: Vec<(String, u8)> = self
            .ret
            .iter()
            .map(|e| (format!("r{:?}", e.tok), e.level as u8))
            .chain(self.sinks.iter().map(|s| {
                (
                    format!("s{}:{:?}:{}:{}:{}", s.param, s.origin, s.rule, s.path, s.line),
                    0,
                )
            }))
            .collect();
        sig.sort();
        sig.dedup();
        sig
    }
}

// ---- sink table ----------------------------------------------------------

struct SinkHit {
    rule: &'static str,
    min: Level,
    desc: String,
}

/// Sink for a call/method by name, if any.
fn call_sink(name: &str) -> Option<(&'static str, Level)> {
    match name {
        "digest_step" => Some(("taint-into-fingerprint", Level::Order)),
        "encode_delta" => Some(("taint-into-codec", Level::Order)),
        "publish" | "publish_lineage" => Some(("taint-into-publish", Level::Order)),
        // `from_scores` sorts with a total comparator: sequence order
        // is erased, only value-level taint survives into the report.
        "from_scores" => Some(("taint-into-report", Level::Value)),
        _ => None,
    }
}

/// Sink struct literals: raw report/fingerprint construction.
fn struct_sink(name: &str) -> Option<(&'static str, Level)> {
    match name {
        "ContextFingerprint" => Some(("taint-into-fingerprint", Level::Order)),
        "Recommendation" | "GroupRecommendation" | "MeasureReport" | "TrendDiff"
        | "MeasureTrend" => Some(("taint-into-report", Level::Order)),
        _ => None,
    }
}

/// Methods that begin iteration over their receiver.
fn is_iter_starter(name: &str) -> bool {
    matches!(
        name,
        "iter"
            | "iter_mut"
            | "into_iter"
            | "keys"
            | "values"
            | "values_mut"
            | "into_keys"
            | "into_values"
            | "drain"
    )
}

/// Order-free reductions: the result depends only on the *set* of
/// elements, never on iteration order or float rounding.
fn is_full_cleanse(name: &str) -> bool {
    matches!(
        name,
        "len" | "count" | "is_empty" | "contains" | "contains_key" | "any" | "all" | "capacity"
    )
}

/// In-place sorts (the project's `nan-sort` lint already guarantees
/// total comparators, so every sort is order-erasing).
fn is_sort(name: &str) -> bool {
    name == "sort" || name.starts_with("sort_by") || name.starts_with("sort_unstable")
}

/// The observability plane (`evorec-obs`) and the metrics-retention
/// plane above it (`evorec-telemetry`) are *terminal* for
/// nondeterministic values — registered cleansers, not sources.
/// Span timings read from the tracer clock land in latency
/// histograms and the bounded trace ring; scrape timestamps, derived
/// rates, rollups, health reports and flight events land in the
/// telemetry rings — and all of them are only ever rendered; they
/// never feed back into fingerprints, publishes, codecs or rankings.
/// The `SpanHandle`s that do come back out of the recording surface
/// are atomic-counter sequence ids, not clock values. Cleansing at
/// the type boundary (instead of letting `Tracer::start`'s internal
/// `Instant::now` read taint every caller through its summary) keeps
/// the audit precise: a real wall-clock leak into a sink still fires,
/// because the cleanse is scoped to the obs/telemetry types.
fn is_obs_plane(head: Option<&str>) -> bool {
    matches!(
        head,
        Some("Tracer")
            | Some("SpanGuard")
            | Some("SpanHandle")
            | Some("Histogram")
            | Some("HistogramSnapshot")
            | Some("MetricsRegistry")
            | Some("MetricsSnapshot")
            | Some("MonotonicClock")
            | Some("LogicalClock")
            | Some("TelemetryCollector")
            | Some("TelemetryDriver")
            | Some("SeriesStore")
            | Some("SeriesBuf")
            | Some("HealthEngine")
            | Some("FlightRecorder")
    )
}

/// The HTTP serving edge (`evorec-serve`) is likewise terminal for
/// nondeterministic values: request timings (clock reads) land in the
/// edge's latency histograms and `X-Evorec-Timing` headers, token
/// buckets consume clock deltas, and permits/decisions are control
/// flow — none of it feeds fingerprints, publishes, codecs or
/// rankings. The engine calls the edge makes (`serve`, `batch`) take
/// request *data*, which the source rules track independently of
/// these types.
fn is_serve_plane(head: Option<&str>) -> bool {
    matches!(
        head,
        Some("AdmissionController")
            | Some("InFlightPermit")
            | Some("ServerStats")
            | Some("HttpServer")
            | Some("ConnReader")
    )
}

/// Keyed containers erase insertion order (deterministically for the
/// ordered ones; hash maps defer it to the next iteration, which
/// re-sources).
fn is_keyed_container(ty: &Ty) -> bool {
    matches!(
        ty.peeled().head(),
        Some("BTreeMap") | Some("BTreeSet") | Some("TripleStore") | Some("FxHashMap")
            | Some("FxHashSet") | Some("HashMap") | Some("HashSet")
    )
}

// ---- the analysis --------------------------------------------------------

/// Run the taint pass over the whole workspace.
pub fn run(sym: &Symbols) -> Vec<AuditFinding> {
    let mut sums: Vec<Summary> = (0..sym.fns.len()).map(|_| Summary::default()).collect();
    // Fixpoint over summaries (test fns excluded: not serve code).
    for _pass in 0..12 {
        let mut changed = false;
        for ix in 0..sym.fns.len() {
            if sym.fns[ix].is_test || sym.fns[ix].def.body.is_none() {
                continue;
            }
            let next = analyze_fn(sym, &sums, ix, None);
            if next.signature() != sums[ix].signature() {
                sums[ix] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Reporting pass with converged summaries.
    let mut findings = Vec::new();
    for ix in 0..sym.fns.len() {
        if sym.fns[ix].is_test || sym.fns[ix].def.body.is_none() {
            continue;
        }
        analyze_fn(sym, &sums, ix, Some(&mut findings));
    }
    dedup_findings(findings)
}

fn dedup_findings(findings: Vec<AuditFinding>) -> Vec<AuditFinding> {
    let mut seen: HashMap<(String, String, u32), usize> = HashMap::new();
    let mut out: Vec<AuditFinding> = Vec::new();
    for f in findings {
        let key = (f.rule.to_string(), f.path.clone(), f.line);
        match seen.get(&key) {
            Some(&ix) => {
                if f.chain.len() < out[ix].chain.len() {
                    out[ix] = f;
                }
            }
            None => {
                seen.insert(key, out.len());
                out.push(f);
            }
        }
    }
    out
}

/// Analyze one function body; returns its summary, appending findings
/// for real-source sink hits when `findings` is provided.
fn analyze_fn(
    sym: &Symbols,
    sums: &[Summary],
    ix: usize,
    findings: Option<&mut Vec<AuditFinding>>,
) -> Summary {
    let info = &sym.fns[ix];
    let mut fx = Fx {
        sym,
        sums,
        tenv: TypeEnv::new(),
        taints: vec![HashMap::new()],
        loop_ctx: Vec::new(),
        sort_backing: vec![HashMap::new()],
        ret: Taint::default(),
        summary: Summary::default(),
        findings,
        path: sym.files[info.file].path.clone(),
    };
    for (pix, (p, ty)) in info.def.params.iter().zip(&info.param_tys).enumerate() {
        fx.tenv.bind(&p.name, ty.clone());
        fx.taints[0].insert(p.name.clone(), Taint::param(pix));
    }
    let body = info.def.body.as_ref().expect("checked by caller");
    let tail = fx.eval_block(body);
    if info.def.ret_ty.is_some() {
        let mut ret = fx.ret.clone();
        ret.join(&tail);
        fx.ret = ret;
    }
    let mut summary = fx.summary;
    summary.ret = fx.ret.toks;
    // Dedup param→sink entries (loop bodies are analyzed twice).
    let mut seen: HashMap<(usize, Level, &str, String, u32), usize> = HashMap::new();
    let mut sinks: Vec<ParamSink> = Vec::new();
    for s in summary.sinks {
        let key = (s.param, s.origin, s.rule, s.path.clone(), s.line);
        match seen.get(&key) {
            Some(&i) => {
                if s.suffix.len() < sinks[i].suffix.len() {
                    sinks[i] = s;
                }
            }
            None => {
                seen.insert(key, sinks.len());
                sinks.push(s);
            }
        }
    }
    summary.sinks = sinks;
    summary
}

struct Fx<'a, 'b> {
    sym: &'b Symbols<'a>,
    sums: &'b [Summary],
    tenv: TypeEnv,
    taints: Vec<HashMap<String, Taint>>,
    /// Order-level taints of enclosing loops' iteration sequences.
    loop_ctx: Vec<Taint>,
    /// Loop variable → root of the container it iterates (scoped like
    /// `taints`): sorting the loop variable in place sorts an element
    /// of that container, which is the build-then-sort idiom.
    sort_backing: Vec<HashMap<String, String>>,
    ret: Taint,
    summary: Summary,
    findings: Option<&'b mut Vec<AuditFinding>>,
    path: String,
}

impl Fx<'_, '_> {
    fn site(&self, line: u32) -> String {
        format!("{}:{line}", self.path)
    }

    fn lookup(&self, name: &str) -> Taint {
        for scope in self.taints.iter().rev() {
            if let Some(t) = scope.get(name) {
                return t.clone();
            }
        }
        Taint::default()
    }

    fn bind(&mut self, name: &str, taint: Taint) {
        if let Some(top) = self.taints.last_mut() {
            top.insert(name.to_string(), taint);
        }
    }

    /// Join `taint` into the scope where `name` is defined (falling
    /// back to the innermost scope).
    fn join_var(&mut self, name: &str, taint: &Taint) {
        for scope in self.taints.iter_mut().rev() {
            if let Some(t) = scope.get_mut(name) {
                t.join(taint);
                return;
            }
        }
        if let Some(top) = self.taints.last_mut() {
            top.entry(name.to_string())
                .or_default()
                .join(taint);
        }
    }

    fn push_scope(&mut self) {
        self.tenv.push();
        self.taints.push(HashMap::new());
        self.sort_backing.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.tenv.pop();
        self.taints.pop();
        self.sort_backing.pop();
    }

    /// The container root a loop variable was iterated out of, if any.
    fn sort_backing_of(&self, name: &str) -> Option<String> {
        for scope in self.sort_backing.iter().rev() {
            if let Some(root) = scope.get(name) {
                return Some(root.clone());
            }
        }
        None
    }

    /// The environment key an lvalue expression mutates, if traceable:
    /// `x` → `x`, `self.f` → `self.f`, any deeper projection → the
    /// root binding.
    fn root_key(expr: &Expr) -> Option<String> {
        match expr {
            Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].clone()),
            Expr::Field { base, name, .. } => {
                if let Expr::Path { segs, .. } = base.as_ref() {
                    if segs.len() == 1 && segs[0] == "self" {
                        return Some(format!("self.{name}"));
                    }
                }
                Self::root_key(base)
            }
            Expr::Index { base, .. }
            | Expr::Unary { expr: base, .. }
            | Expr::MethodCall { recv: base, .. } => Self::root_key(base),
            _ => None,
        }
    }

    fn joined_loop_ctx(&self) -> Taint {
        let mut t = Taint::default();
        for ctx in &self.loop_ctx {
            t.join(ctx);
        }
        t
    }

    /// Check a sink fed by `taint`: real sources become findings,
    /// param tokens become summary entries for callers.
    fn hit_sink(&mut self, hit: &SinkHit, line: u32, taint: &Taint) {
        let site = self.site(line);
        let sink_step = format!("{} at {site}", hit.desc);
        for entry in taint.firing(hit.min) {
            match &entry.tok {
                Tok::Src(_) => {
                    if let Some(findings) = self.findings.as_deref_mut() {
                        let mut chain = entry.trace.clone();
                        push_step(&mut chain, &sink_step);
                        findings.push(AuditFinding {
                            rule: hit.rule,
                            path: self.path.clone(),
                            line,
                            message: format!(
                                "nondeterminism reaches {}: {}",
                                hit.desc,
                                entry.trace.first().map(String::as_str).unwrap_or("tainted data")
                            ),
                            chain,
                            severity: Severity::Deny,
                        });
                    }
                }
                Tok::Param(pix, origin) => {
                    let mut suffix = entry.trace.clone();
                    push_step(&mut suffix, &sink_step);
                    self.summary.sinks.push(ParamSink {
                        param: *pix,
                        origin: *origin,
                        rule: hit.rule,
                        path: self.path.clone(),
                        line,
                        suffix,
                    });
                }
            }
        }
    }

    /// Apply a callee summary at a call site.
    fn apply_summary(
        &mut self,
        callee: usize,
        line: u32,
        arg_taints: &[Taint],
    ) -> Taint {
        let sums = self.sums;
        let callee_name = self.sym.fns[callee].qual_name();
        let call_site = self.site(line);
        let call_step = format!("into {callee_name} (called at {call_site})");
        let pass_step = format!("passed to {callee_name} (called at {call_site})");
        let ret_step = format!("returned by {callee_name} (called at {call_site})");
        let mut result = Taint::default();
        let sum = &sums[callee];
        for entry in &sum.ret {
            match &entry.tok {
                Tok::Src(_) => {
                    let mut e = entry.clone();
                    push_step(&mut e.trace, &ret_step);
                    result.insert(e);
                }
                Tok::Param(pix, origin) => {
                    let Some(arg) = arg_taints.get(*pix) else {
                        continue;
                    };
                    for a in arg.at_level(*origin) {
                        let mut e = a.clone();
                        e.level = entry.level; // callee may promote
                        push_step(&mut e.trace, &call_step);
                        if entry.level > *origin {
                            push_step(&mut e.trace, &format!(
                                "promoted to value-level inside {callee_name}"
                            ));
                        }
                        result.insert(e);
                    }
                }
            }
        }
        // Wire param→sink flows through this call.
        for ps in &sum.sinks {
            let Some(arg) = arg_taints.get(ps.param) else {
                continue;
            };
            for a in arg.at_level(ps.origin) {
                match &a.tok {
                    Tok::Src(_) => {
                        if let Some(findings) = self.findings.as_deref_mut() {
                            let mut chain = a.trace.clone();
                            push_step(&mut chain, &pass_step);
                            for s in &ps.suffix {
                                push_step(&mut chain, s);
                            }
                            findings.push(AuditFinding {
                                rule: ps.rule,
                                path: ps.path.clone(),
                                line: ps.line,
                                message: format!(
                                    "nondeterminism flows through {} into a {} sink: {}",
                                    callee_name,
                                    ps.rule,
                                    a.trace.first().map(String::as_str).unwrap_or("tainted data")
                                ),
                                chain,
                                severity: Severity::Deny,
                            });
                        }
                    }
                    Tok::Param(outer, origin2) => {
                        let mut suffix = a.trace.clone();
                        push_step(&mut suffix, &pass_step);
                        for s in &ps.suffix {
                            push_step(&mut suffix, s);
                        }
                        self.summary.sinks.push(ParamSink {
                            param: *outer,
                            origin: *origin2,
                            rule: ps.rule,
                            path: ps.path.clone(),
                            line: ps.line,
                            suffix,
                        });
                    }
                }
            }
        }
        result
    }

    // ---- evaluation ------------------------------------------------------

    fn eval_block(&mut self, block: &Block) -> Taint {
        self.push_scope();
        let mut last = Taint::default();
        for stmt in &block.stmts {
            last = Taint::default();
            match stmt {
                Stmt::Let {
                    names, ty, init, ..
                } => {
                    let annotated = ty.as_deref().map(Ty::parse);
                    if let Some(init) = init {
                        let t = self.eval_expr(init, annotated.as_ref());
                        let inferred = infer_expr(self.sym, &self.tenv, init, annotated.as_ref());
                        let bound_ty = annotated.unwrap_or(inferred);
                        for name in names {
                            self.bind(name, t.clone());
                        }
                        bind_types(&mut self.tenv, names, &bound_ty);
                    } else {
                        for name in names {
                            self.bind(name, Taint::default());
                        }
                        if let Some(ty) = annotated {
                            bind_types(&mut self.tenv, names, &ty);
                        }
                    }
                }
                Stmt::Expr(e) => {
                    last = self.eval_expr(e, None);
                }
                Stmt::Return(Some(e), _) => {
                    let t = self.eval_expr(e, None);
                    self.ret.join(&t);
                }
                Stmt::Return(None, _) | Stmt::Item(_) => {}
            }
        }
        self.pop_scope();
        last
    }

    fn eval_expr(&mut self, expr: &Expr, expected: Option<&Ty>) -> Taint {
        match expr {
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    self.lookup(&segs[0])
                } else {
                    Taint::default()
                }
            }
            Expr::Lit { .. } | Expr::Unknown(_) => Taint::default(),
            Expr::Field { base, name, .. } => {
                if let Expr::Path { segs, .. } = base.as_ref() {
                    if segs.len() == 1 && segs[0] == "self" {
                        let mut t = self.lookup(&format!("self.{name}"));
                        t.join(&self.lookup("self"));
                        return t;
                    }
                }
                self.eval_expr(base, None)
            }
            Expr::Unary { expr, .. } => self.eval_expr(expr, expected),
            Expr::Try { expr, .. } | Expr::Cast { expr, .. } => self.eval_expr(expr, None),
            Expr::Tuple { items, .. } | Expr::ArrayLit { items, .. } => {
                let mut t = Taint::default();
                for e in items {
                    t.join(&self.eval_expr(e, None));
                }
                t
            }
            Expr::Binary { parts, .. } => {
                let mut t = Taint::default();
                for p in parts {
                    t.join(&self.eval_expr(p, None));
                }
                t
            }
            Expr::Index { base, index, .. } => {
                let mut t = self.eval_expr(base, None);
                t.join(&self.eval_expr(index, None));
                t
            }
            Expr::Block(block, _) => self.eval_block(block),
            Expr::If {
                cond,
                binds,
                then_branch,
                else_branch,
                ..
            } => {
                let ct = self.eval_expr(cond, None);
                self.push_scope();
                if !binds.is_empty() {
                    let ty = infer_expr(self.sym, &self.tenv, cond, None);
                    bind_types(&mut self.tenv, binds, &ty);
                    for b in binds {
                        self.bind(b, ct.clone());
                    }
                }
                let mut t = self.eval_block(then_branch);
                self.pop_scope();
                if let Some(e) = else_branch {
                    t.join(&self.eval_expr(e, expected));
                }
                t
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let st = self.eval_expr(scrutinee, None);
                let ty = infer_expr(self.sym, &self.tenv, scrutinee, None);
                let mut t = Taint::default();
                for (binds, body) in arms {
                    self.push_scope();
                    bind_types(&mut self.tenv, binds, &ty);
                    for b in binds {
                        self.bind(b, st.clone());
                    }
                    t.join(&self.eval_expr(body, expected));
                    self.pop_scope();
                }
                t
            }
            Expr::For {
                names, iter, body, line,
            } => {
                let mut it = self.eval_expr(iter, None);
                let ity = infer_expr(self.sym, &self.tenv, iter, None);
                if ity.is_unordered_container() {
                    it.join(&Taint::src(
                        &format!(
                            "hash-order iteration of {}",
                            ity.peeled().head().unwrap_or("hash container")
                        ),
                        &self.site(*line),
                        Level::Order,
                    ));
                }
                let elem_ty = ity.element();
                // Loop context: the order-level taints of the sequence.
                let ctx = Taint {
                    toks: it.at_level(Level::Order).into_iter().cloned().collect(),
                };
                self.loop_ctx.push(ctx);
                // Two passes to observe loop-carried taint.
                for _ in 0..2 {
                    self.push_scope();
                    bind_types(&mut self.tenv, names, &elem_ty);
                    for n in names {
                        self.bind(n, it.clone());
                    }
                    if names.len() == 1 {
                        if let Some(backing) = Self::root_key(iter) {
                            if let Some(scope) = self.sort_backing.last_mut() {
                                scope.insert(names[0].clone(), backing);
                            }
                        }
                    }
                    self.eval_block(body);
                    self.pop_scope();
                }
                self.loop_ctx.pop();
                Taint::default()
            }
            Expr::While {
                cond, binds, body, ..
            } => {
                let ct = self.eval_expr(cond, None);
                for _ in 0..2 {
                    self.push_scope();
                    if !binds.is_empty() {
                        let ty = infer_expr(self.sym, &self.tenv, cond, None);
                        bind_types(&mut self.tenv, binds, &ty);
                        for b in binds {
                            self.bind(b, ct.clone());
                        }
                    }
                    self.eval_block(body);
                    self.pop_scope();
                }
                Taint::default()
            }
            Expr::Loop { body, .. } => {
                for _ in 0..2 {
                    self.eval_block(body);
                }
                Taint::default()
            }
            Expr::Closure { params, body, .. } => {
                self.push_scope();
                for p in params {
                    self.bind(p, Taint::default());
                }
                let t = self.eval_expr(body, None);
                self.pop_scope();
                t
            }
            Expr::Macro { name, args, .. } => {
                let mut t = Taint::default();
                for a in args {
                    t.join(&self.eval_expr(a, None));
                }
                if name == "return" {
                    self.ret.join(&t);
                    return Taint::default();
                }
                t
            }
            Expr::StructLit { path, fields, line } => self.eval_struct_lit(path, fields, *line),
            Expr::Assign {
                target, op, value, line,
            } => self.eval_assign(target, op.as_deref(), value, *line),
            Expr::Call { callee, args, line } => self.eval_call(callee, args, *line),
            Expr::MethodCall {
                recv,
                method,
                turbofish,
                args,
                line,
            } => self.eval_method(recv, method, turbofish.as_deref(), args, *line, expected),
        }
    }

    fn eval_struct_lit(
        &mut self,
        path: &[String],
        fields: &[(String, Expr)],
        line: u32,
    ) -> Taint {
        let type_name = path.last().map(String::as_str).unwrap_or("");
        let sink = struct_sink(type_name);
        let mut t = Taint::default();
        for (fname, value) in fields {
            let expected = if fname == ".." {
                Ty::Unknown
            } else {
                self.sym.field_ty(type_name, fname)
            };
            let ft = self.eval_expr(value, Some(&expected));
            if let Some((rule, min)) = sink {
                self.hit_sink(
                    &SinkHit {
                        rule,
                        min,
                        desc: format!("`{type_name}` construction (field `{fname}`)"),
                    },
                    line,
                    &ft,
                );
            }
            t.join(&ft);
        }
        t
    }

    fn eval_assign(
        &mut self,
        target: &Expr,
        op: Option<&str>,
        value: &Expr,
        _line: u32,
    ) -> Taint {
        // Evaluate the target for side-effect sinks (e.g. indexing a
        // sink receiver) without treating it as a read.
        let target_ty = infer_expr(self.sym, &self.tenv, target, None);
        let vt = self.eval_expr(value, Some(&target_ty));
        let Some(root) = Self::root_key(target) else {
            return Taint::default();
        };
        let value_ty = infer_expr(self.sym, &self.tenv, value, None);
        let float = target_ty.is_float() || value_ty.is_float() || has_float_lit(value);
        match op {
            None => {
                // Plain assignment. Inside a hash-ordered loop, which
                // iteration wins a conditional write is itself
                // order-dependent (argmax/selection patterns).
                let mut t = vt;
                let ctx = self.joined_loop_ctx();
                t.join(&ctx);
                if matches!(target, Expr::Path { .. }) && self.loop_ctx.is_empty() {
                    self.bind(&root, t);
                } else {
                    self.join_var(&root, &t);
                }
            }
            Some(op) if float && matches!(op, "+" | "-" | "*" | "/") => {
                // Float accumulation: order-dependent rounding promotes
                // order taint (operand *and* enclosing loop) to Value.
                let mut acc = vt;
                acc.join(&self.joined_loop_ctx());
                let promoted =
                    acc.promoted("float accumulation promotes order-taint to value-taint");
                self.join_var(&root, &promoted);
            }
            Some("+" | "-" | "*" | "^" | "&" | "|") => {
                // Commutative integer accumulation is order-free: the
                // sequence taint is erased, value taint persists.
                self.join_var(&root, &vt.cleansed_order());
            }
            Some(_) => {
                let mut t = vt;
                t.join(&self.joined_loop_ctx());
                self.join_var(&root, &t);
            }
        }
        Taint::default()
    }

    fn eval_call(&mut self, callee: &[String], args: &[Expr], line: u32) -> Taint {
        let arg_taints: Vec<Taint> = args.iter().map(|a| self.eval_expr(a, None)).collect();
        let name = callee.last().map(String::as_str).unwrap_or("");
        // Sources.
        if name == "now"
            && callee
                .iter()
                .any(|s| s == "SystemTime" || s == "Instant")
        {
            return Taint::src("wall-clock read", &self.site(line), Level::Value);
        }
        if name == "thread_rng" || name == "from_entropy" {
            return Taint::src("unseeded RNG", &self.site(line), Level::Value);
        }
        if name == "random" && callee.len() >= 2 && callee.contains(&"rand".to_string()) {
            return Taint::src("unseeded RNG", &self.site(line), Level::Value);
        }
        if name == "current" && callee.contains(&"thread".to_string()) {
            return Taint::src("thread identity", &self.site(line), Level::Value);
        }
        // Cleanser: the free `span(tracer, name, parent)` helper and
        // obs-type associated constructors (`Tracer::monotonic`,
        // `SpanGuard::disabled`, …) are the terminal metrics plane —
        // see `is_obs_plane`.
        if name == "span" && !args.is_empty()
            || callee.len() >= 2
                && (is_obs_plane(callee.get(callee.len() - 2).map(String::as_str))
                    || is_serve_plane(callee.get(callee.len() - 2).map(String::as_str)))
        {
            return Taint::default();
        }
        // Sinks by name.
        if let Some((rule, min)) = call_sink(name) {
            let mut joined = Taint::default();
            for t in &arg_taints {
                joined.join(t);
            }
            self.hit_sink(
                &SinkHit {
                    rule,
                    min,
                    desc: format!("`{name}` call"),
                },
                line,
                &joined,
            );
        }
        if let Some(ix) = self.sym.resolve_call(callee) {
            return self.apply_summary(ix, line, &arg_taints);
        }
        let mut t = Taint::default();
        for a in &arg_taints {
            t.join(a);
        }
        t
    }

    #[allow(clippy::too_many_lines)]
    fn eval_method(
        &mut self,
        recv: &Expr,
        method: &str,
        turbofish: Option<&str>,
        args: &[Expr],
        line: u32,
        expected: Option<&Ty>,
    ) -> Taint {
        let mut rt = self.eval_expr(recv, None);
        let recv_ty = infer_expr(self.sym, &self.tenv, recv, None);
        let elem_ty = recv_ty.element();

        // Source: starting an iteration over a hash-ordered container.
        if is_iter_starter(method) && recv_ty.is_unordered_container() {
            rt.join(&Taint::src(
                &format!(
                    "hash-order iteration of {}",
                    recv_ty.peeled().head().unwrap_or("hash container")
                ),
                &self.site(line),
                Level::Order,
            ));
        }
        // Source: clock reads off time values.
        if matches!(method, "elapsed" | "duration_since")
            && matches!(recv_ty.peeled().head(), Some("Instant") | Some("SystemTime"))
        {
            return Taint::src("wall-clock read", &self.site(line), Level::Value);
        }

        // Evaluate arguments; closures see the receiver's element.
        let mut arg_taints: Vec<Taint> = Vec::with_capacity(args.len());
        for a in args {
            if let Expr::Closure { params, body, .. } = a {
                self.push_scope();
                bind_closure_params(&mut self.tenv, params, &elem_ty);
                for p in params {
                    self.bind(p, rt.clone());
                }
                let t = self.eval_expr(body, None);
                self.pop_scope();
                arg_taints.push(t);
            } else {
                arg_taints.push(self.eval_expr(a, None));
            }
        }

        // Cleanser: any method on an obs-plane receiver (`Tracer`,
        // `SpanGuard`, `Histogram`, …) returns untainted data — span
        // timings stay in the metrics plane and handles are sequence
        // ids, so the clock read inside `Tracer::start` never leaks
        // Value taint into callers through its summary.
        if is_obs_plane(recv_ty.peeled().head()) || is_serve_plane(recv_ty.peeled().head()) {
            return Taint::default();
        }

        // Sinks: named calls and hasher writes.
        let sink = call_sink(method).or_else(|| {
            if method.starts_with("write")
                && recv_ty
                    .peeled()
                    .head()
                    .is_some_and(|h| h.contains("Hasher"))
            {
                Some(("taint-into-fingerprint", Level::Order))
            } else {
                None
            }
        });
        if let Some((rule, min)) = sink {
            let mut joined = Taint::default();
            for t in &arg_taints {
                joined.join(t);
            }
            self.hit_sink(
                &SinkHit {
                    rule,
                    min,
                    desc: format!("`{method}` call"),
                },
                line,
                &joined,
            );
        }

        // Workspace method: apply its summary (receiver is param 0).
        if let Some(ixc) = self.sym.resolve_method(&recv_ty, method) {
            let mut all = Vec::with_capacity(arg_taints.len() + 1);
            all.push(rt.clone());
            all.extend(arg_taints.iter().cloned());
            return self.apply_summary(ixc, line, &all);
        }

        // Structural std-method transfer rules.
        let joined_args = {
            let mut t = Taint::default();
            for a in &arg_taints {
                t.join(a);
            }
            t
        };
        if is_sort(method) {
            if let Some(root) = Self::root_key(recv) {
                let cleansed = self.lookup(&root).cleansed_order();
                self.join_sorted(&root, cleansed);
                // `for list in &mut c { list.sort(); }` — the
                // build-then-sort idiom erases the order taint of the
                // backing container, not just the loop variable. (The
                // workspace sorts the outer container too whenever its
                // own order matters, so cleansing the root here is the
                // intended reading, not an over-approximation.)
                if let Some(backing) = self.sort_backing_of(&root) {
                    let cleansed = self.lookup(&backing).cleansed_order();
                    self.join_sorted(&backing, cleansed);
                }
            }
            return Taint::default();
        }
        if is_full_cleanse(method) {
            return Taint::default();
        }
        match method {
            // Mutating inserts: sequence position matters for Vec-like
            // receivers (including the enclosing loop's order), not for
            // keyed containers.
            "push" | "push_back" | "push_front" | "insert" | "extend" | "append"
            | "push_str" | "insert_str" => {
                if let Some(root) = Self::root_key(recv) {
                    let mut add = joined_args;
                    if is_keyed_container(&recv_ty) {
                        add = add.cleansed_order();
                    } else {
                        add.join(&self.joined_loop_ctx());
                    }
                    self.join_var(&root, &add);
                }
                Taint::default()
            }
            "collect" => {
                let target = match turbofish {
                    Some(t) => Ty::parse(t),
                    None => expected.cloned().unwrap_or(Ty::Unknown),
                };
                if is_keyed_container(&target) {
                    rt.cleansed_order()
                } else {
                    rt
                }
            }
            "sum" | "product" => {
                let sum_ty = turbofish.map(Ty::parse).unwrap_or(elem_ty.clone());
                if sum_ty.is_float() {
                    rt.promoted("float reduction promotes order-taint to value-taint")
                } else if sum_ty == Ty::Unknown {
                    rt
                } else {
                    rt.cleansed_order()
                }
            }
            "fold" => {
                let mut init = arg_taints.first().cloned().unwrap_or_default();
                match fold_kind(args.get(1), &elem_ty) {
                    FoldKind::Commutative => {
                        init.join(&rt.cleansed_order());
                        init
                    }
                    FoldKind::FloatAccum => {
                        init.join(
                            &rt.promoted("float fold promotes order-taint to value-taint"),
                        );
                        init
                    }
                    FoldKind::OrderSensitive => {
                        init.join(&rt);
                        init.join(&joined_args);
                        init
                    }
                }
            }
            "max" | "min" | "max_by" | "min_by" | "max_by_key" | "min_by_key" => {
                // Selection by a total order: result is the same
                // extremum whatever the iteration order.
                rt.cleansed_order()
            }
            _ => {
                let mut t = rt;
                t.join(&joined_args);
                t
            }
        }
    }

    /// Rebind `root` entirely (sorts replace the order component).
    fn join_sorted(&mut self, root: &str, cleansed: Taint) {
        for scope in self.taints.iter_mut().rev() {
            if scope.contains_key(root) {
                scope.insert(root.to_string(), cleansed);
                return;
            }
        }
        self.bind(root, cleansed);
    }
}

/// Bind destructured names' types (mirrors taint binding).
fn bind_types(tenv: &mut TypeEnv, names: &[String], ty: &Ty) {
    let ty = if ty.peeled().head() == Some("Option") {
        ty.arg0()
    } else {
        ty.clone()
    };
    if names.len() == 1 {
        tenv.bind(&names[0], ty);
        return;
    }
    for (ix, n) in names.iter().enumerate() {
        tenv.bind(n, ty.tuple_field(ix));
    }
}

enum FoldKind {
    Commutative,
    FloatAccum,
    OrderSensitive,
}

/// Classify a fold closure: commutative integer/bitwise folds and
/// float `max`/`min` erase order; float `+`/`*` promote; anything else
/// is conservatively order-sensitive.
fn fold_kind(closure: Option<&Expr>, elem_ty: &Ty) -> FoldKind {
    let Some(Expr::Closure { body, .. }) = closure else {
        // `fold(init, f64::max)`-style path argument.
        if let Some(Expr::Path { segs, .. }) = closure {
            if matches!(segs.last().map(String::as_str), Some("max") | Some("min")) {
                return FoldKind::Commutative;
            }
        }
        return FoldKind::OrderSensitive;
    };
    match body.as_ref() {
        Expr::Binary { ops, .. } => {
            if ops.iter().all(|op| matches!(op.as_str(), "^" | "|" | "&")) {
                return FoldKind::Commutative;
            }
            if ops.iter().all(|op| matches!(op.as_str(), "+" | "*")) {
                if elem_ty.is_float() || has_float_lit(body) {
                    return FoldKind::FloatAccum;
                }
                return FoldKind::Commutative;
            }
            FoldKind::OrderSensitive
        }
        Expr::MethodCall { method, .. } => match method.as_str() {
            "max" | "min" => FoldKind::Commutative,
            "wrapping_add" | "wrapping_mul" => FoldKind::Commutative,
            _ => FoldKind::OrderSensitive,
        },
        _ => FoldKind::OrderSensitive,
    }
}

/// Any floating-point literal in the expression tree?
fn has_float_lit(expr: &Expr) -> bool {
    match expr {
        Expr::Lit { text, .. } => {
            text.starts_with(|c: char| c.is_ascii_digit())
                && (text.contains('.') || text.ends_with("f64") || text.ends_with("f32"))
        }
        Expr::Binary { parts, .. } => parts.iter().any(has_float_lit),
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => has_float_lit(expr),
        Expr::MethodCall { recv, args, .. } => {
            has_float_lit(recv) || args.iter().any(has_float_lit)
        }
        Expr::Call { args, .. } => args.iter().any(has_float_lit),
        _ => false,
    }
}
