//! A miniature structural type model for the audit passes.
//!
//! Types are parsed from the *text* the parser captured (field
//! annotations, parameter and return types, casts, turbofish) into a
//! small tree: named types with generic arguments, tuples, and
//! `Unknown`. The model answers the questions the analyses ask —
//! "is this an unordered container?", "what does iterating it yield?",
//! "what does `.values()` return?" — and degrades to `Unknown`
//! anywhere the answer isn't clear. `Unknown` never classifies as
//! unordered, a lock, or a float, so typing gaps weaken the audit
//! conservatively instead of producing false findings.

/// A structural type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ty {
    /// A named type with top-level generic arguments
    /// (`FxHashMap<TermId, f64>` → head `FxHashMap`, two args).
    Named {
        /// Final path segment, generics stripped.
        head: String,
        /// Top-level generic arguments.
        args: Vec<Ty>,
    },
    /// A tuple type.
    Tuple(Vec<Ty>),
    /// Anything unparseable or unresolvable.
    Unknown,
}

/// Transparent wrappers peeled before classification.
const WRAPPERS: [&str; 10] = [
    "Arc",
    "Rc",
    "Box",
    "Ref",
    "RefMut",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "ManuallyDrop",
    "Pin",
];

/// Hash-ordered containers: iteration order is an implementation
/// detail, never a contract — the audit's primary taint source.
const UNORDERED: [&str; 4] = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"];

/// Order-defining containers: collecting into one erases sequence
/// order (the canonical cleanser). `TripleStore` is BTreeSet-backed.
const ORDERED_TARGETS: [&str; 3] = ["BTreeMap", "BTreeSet", "TripleStore"];

impl Ty {
    /// A named type without generic arguments.
    pub fn named(head: &str) -> Ty {
        Ty::Named {
            head: head.to_string(),
            args: Vec::new(),
        }
    }

    /// Parse a type from captured source text.
    pub fn parse(text: &str) -> Ty {
        let mut p = TyParser {
            chars: text.chars().collect(),
            pos: 0,
        };
        p.parse_ty()
    }

    /// The head identifier, if named.
    pub fn head(&self) -> Option<&str> {
        match self {
            Ty::Named { head, .. } => Some(head.as_str()),
            _ => None,
        }
    }

    /// Peel transparent wrappers (`Arc<Mutex<T>>` → `Mutex<T>`).
    pub fn peeled(&self) -> &Ty {
        let mut ty = self;
        loop {
            match ty {
                Ty::Named { head, args }
                    if WRAPPERS.contains(&head.as_str()) && args.len() == 1 =>
                {
                    ty = &args[0];
                }
                _ => return ty,
            }
        }
    }

    /// `true` for hash-ordered maps/sets (after peeling wrappers).
    pub fn is_unordered_container(&self) -> bool {
        self.peeled()
            .head()
            .is_some_and(|h| UNORDERED.contains(&h))
    }

    /// `true` for containers whose `collect` target erases order.
    pub fn is_ordered_collect_target(&self) -> bool {
        self.peeled()
            .head()
            .is_some_and(|h| ORDERED_TARGETS.contains(&h))
    }

    /// `true` for `Mutex`/`RwLock` (after peeling `Arc` etc.).
    pub fn is_lock(&self) -> bool {
        self.peeled()
            .head()
            .is_some_and(|h| h == "Mutex" || h == "RwLock")
    }

    /// `true` for floating-point types.
    pub fn is_float(&self) -> bool {
        self.peeled()
            .head()
            .is_some_and(|h| h == "f64" || h == "f32")
    }

    /// What one iteration step yields (`for x in <ty>` / `.iter()`).
    pub fn element(&self) -> Ty {
        let ty = self.peeled();
        let Ty::Named { head, args } = ty else {
            return Ty::Unknown;
        };
        match head.as_str() {
            "FxHashMap" | "HashMap" | "BTreeMap" if args.len() == 2 => {
                Ty::Tuple(vec![args[0].clone(), args[1].clone()])
            }
            "FxHashSet" | "HashSet" | "BTreeSet" | "Vec" | "VecDeque" | "BinaryHeap"
            | "Option" | "Iterator" | "Slice" => args.first().cloned().unwrap_or(Ty::Unknown),
            "TripleStore" => Ty::named("Triple"),
            _ => Ty::Unknown,
        }
    }

    /// The first generic argument (`Option<T>` / `Vec<T>` → `T`).
    pub fn arg0(&self) -> Ty {
        match self.peeled() {
            Ty::Named { args, .. } => args.first().cloned().unwrap_or(Ty::Unknown),
            _ => Ty::Unknown,
        }
    }

    /// The second generic argument (`Map<K, V>` → `V`).
    pub fn arg1(&self) -> Ty {
        match self.peeled() {
            Ty::Named { args, .. } => args.get(1).cloned().unwrap_or(Ty::Unknown),
            _ => Ty::Unknown,
        }
    }

    /// Wrap as an iterator yielding `elem`.
    pub fn iterator_of(elem: Ty) -> Ty {
        Ty::Named {
            head: "Iterator".to_string(),
            args: vec![elem],
        }
    }

    /// Tuple field access for destructuring (`(k, v)` patterns).
    pub fn tuple_field(&self, ix: usize) -> Ty {
        match self.peeled() {
            Ty::Tuple(items) => items.get(ix).cloned().unwrap_or(Ty::Unknown),
            _ => Ty::Unknown,
        }
    }
}

struct TyParser {
    chars: Vec<char>,
    pos: usize,
}

impl TyParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn skip_prefixes(&mut self) {
        loop {
            self.skip_ws();
            match self.peek() {
                Some('&') | Some('*') => {
                    self.pos += 1;
                    continue;
                }
                Some('\'') => {
                    // Lifetime.
                    self.pos += 1;
                    while self
                        .peek()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    {
                        self.pos += 1;
                    }
                    continue;
                }
                _ => {}
            }
            let rest: String = self.chars[self.pos..]
                .iter()
                .take(6)
                .collect();
            let eaten = if rest.starts_with("mut ")
                || rest.starts_with("mut&")
                || rest.starts_with("dyn ")
            {
                3
            } else if rest.starts_with("impl ") || rest.starts_with("impl\t") {
                4
            } else if rest.starts_with("const ") {
                5
            } else {
                break;
            };
            self.pos += eaten;
        }
    }

    fn parse_ty(&mut self) -> Ty {
        self.skip_prefixes();
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        None | Some(')') => {
                            if self.peek().is_some() {
                                self.pos += 1;
                            }
                            break;
                        }
                        Some(',') => {
                            self.pos += 1;
                            continue;
                        }
                        _ => items.push(self.parse_ty()),
                    }
                }
                if items.len() == 1 {
                    items.into_iter().next().unwrap_or(Ty::Unknown)
                } else {
                    Ty::Tuple(items)
                }
            }
            Some('[') => {
                // Slice/array: `[T]` / `[T; N]` → element container.
                self.pos += 1;
                let elem = self.parse_ty();
                while self.peek().is_some_and(|c| c != ']') {
                    self.pos += 1;
                }
                if self.peek() == Some(']') {
                    self.pos += 1;
                }
                Ty::Named {
                    head: "Slice".to_string(),
                    args: vec![elem],
                }
            }
            Some(c) if c.is_alphabetic() || c == '_' => self.parse_path_ty(),
            _ => {
                // Unparseable: consume one char so callers can't loop.
                if self.peek().is_some() {
                    self.pos += 1;
                }
                Ty::Unknown
            }
        }
    }

    fn parse_path_ty(&mut self) -> Ty {
        let mut head;
        loop {
            let mut seg = String::new();
            while self
                .peek()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                seg.push(self.chars[self.pos]);
                self.pos += 1;
            }
            head = seg;
            self.skip_ws();
            if self.peek() == Some(':')
                && self.chars.get(self.pos + 1) == Some(&':')
            {
                self.pos += 2;
                self.skip_ws();
                continue;
            }
            break;
        }
        let mut args = Vec::new();
        self.skip_ws();
        if self.peek() == Some('<') {
            self.pos += 1;
            loop {
                self.skip_ws();
                match self.peek() {
                    None | Some('>') => {
                        if self.peek().is_some() {
                            self.pos += 1;
                        }
                        break;
                    }
                    Some(',') => {
                        self.pos += 1;
                        continue;
                    }
                    _ => {}
                }
                // Associated-type form `Item = T`.
                let mark = self.pos;
                let mut name = String::new();
                while self
                    .peek()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    name.push(self.chars[self.pos]);
                    self.pos += 1;
                }
                self.skip_ws();
                if !name.is_empty() && self.peek() == Some('=') {
                    self.pos += 1;
                    args.push(self.parse_ty());
                } else {
                    self.pos = mark;
                    let before = self.pos;
                    args.push(self.parse_ty());
                    if self.pos == before {
                        self.pos += 1; // safety: always progress
                    }
                }
                // Skip any trailing bound syntax (`+ Send`).
                while self.peek().is_some_and(|c| c != ',' && c != '>') {
                    if self.peek() == Some('<') {
                        // Nested generics in a bound: balance them.
                        let mut depth = 0i32;
                        while let Some(c) = self.peek() {
                            if c == '<' {
                                depth += 1;
                            } else if c == '>' {
                                depth -= 1;
                                if depth == 0 {
                                    self.pos += 1;
                                    break;
                                }
                            }
                            self.pos += 1;
                        }
                    } else {
                        self.pos += 1;
                    }
                }
            }
        }
        if head.is_empty() {
            return Ty::Unknown;
        }
        // `impl Iterator<Item = T>` parses here with head `Iterator`.
        Ty::Named { head, args }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_map_with_args() {
        let ty = Ty::parse("FxHashMap<TermId, f64>");
        assert_eq!(ty.head(), Some("FxHashMap"));
        assert!(ty.is_unordered_container());
        assert_eq!(ty.element(), Ty::Tuple(vec![Ty::named("TermId"), Ty::named("f64")]));
        assert!(ty.arg1().is_float());
    }

    #[test]
    fn peels_refs_and_wrappers() {
        let ty = Ty::parse("&'a Arc<Mutex<Vec<u8>>>");
        assert!(ty.peeled().is_lock());
        assert_eq!(ty.peeled().arg0().head(), Some("Vec"));
    }

    #[test]
    fn nested_map_value_type() {
        let ty = Ty::parse("FxHashMap<TermId, FxHashMap<(TermId, TermId), u64>>");
        let inner = ty.arg1();
        assert!(inner.is_unordered_container());
        assert_eq!(
            inner.element(),
            Ty::Tuple(vec![
                Ty::Tuple(vec![Ty::named("TermId"), Ty::named("TermId")]),
                Ty::named("u64")
            ])
        );
    }

    #[test]
    fn impl_iterator_item() {
        let ty = Ty::parse("impl Iterator<Item = ((TermId, TermId), u64)> + '_");
        assert_eq!(ty.head(), Some("Iterator"));
        let elem = ty.element();
        assert_eq!(elem.tuple_field(1), Ty::named("u64"));
    }

    #[test]
    fn ordered_targets() {
        assert!(Ty::parse("BTreeMap<u32, u32>").is_ordered_collect_target());
        assert!(Ty::parse("TripleStore").is_ordered_collect_target());
        assert!(!Ty::parse("Vec<u32>").is_ordered_collect_target());
        assert!(!Ty::parse("FxHashMap<u32, u32>").is_ordered_collect_target());
    }

    #[test]
    fn slice_and_tuple() {
        let ty = Ty::parse("&[f64]");
        assert!(ty.element().is_float());
        let tup = Ty::parse("(TermId, f64)");
        assert!(tup.tuple_field(1).is_float());
    }

    #[test]
    fn unknown_is_inert() {
        let ty = Ty::parse("");
        assert_eq!(ty, Ty::Unknown);
        assert!(!ty.is_unordered_container());
        assert!(!ty.is_lock());
        assert!(!ty.is_float());
    }
}
