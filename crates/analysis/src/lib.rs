//! Static analysis for the evorec workspace: the `evorec-lint` rule
//! engine.
//!
//! See [`rules`] for the invariants enforced and [`tokenizer`] for the
//! lightweight Rust lexer everything is built on (no external
//! dependencies — the workspace builds fully offline).

pub mod allowlist;
pub mod rules;
pub mod tokenizer;

pub use allowlist::Allowlist;
pub use rules::{lint_source, Finding};
