//! Static analysis for the evorec workspace: the `evorec-lint` rule
//! engine and the `evorec-audit` workspace-global analyses.
//!
//! Two tools share this crate (and its dependency-free tokenizer — the
//! workspace builds fully offline):
//!
//! * **`evorec-lint`** — token-local rules, one file at a time. See
//!   [`rules`] for the invariants enforced.
//! * **`evorec-audit`** — a tolerant [`parser`] over the same tokens,
//!   a workspace [`symbols`] table, a cross-crate [`callgraph`], and
//!   three global passes on top: determinism [`taint`] (unordered
//!   iteration / clocks / RNG flowing into fingerprints, publishes,
//!   codecs and reports), [`panics`] reachability from the public
//!   serve surface, and [`locks`] order inference cross-checked
//!   against the `// lint: lock-order` annotations. [`audit`] wires
//!   the pipeline together.
//!
//! Both tools share the [`allowlist`] machinery (mandatory reasons,
//! stale entries fail) and emit the same `--json` finding shape via
//! [`json`].

pub mod allowlist;
pub mod audit;
pub mod callgraph;
pub mod json;
pub mod locks;
pub mod panics;
pub mod parser;
pub mod rules;
pub mod symbols;
pub mod taint;
pub mod tokenizer;
pub mod ty;

pub use allowlist::Allowlist;
pub use audit::{AuditFinding, Severity};
pub use rules::{lint_source, Finding};
