//! Lock-order inference: derive the lock-acquisition graph from the
//! AST and cross-check it against the workspace's `// lint: lock-order`
//! annotations.
//!
//! PR 6's token-level `lock-order` rule could only check that locks
//! *named in an annotation* are first-acquired in the declared order
//! within one function. This pass goes the other way: it finds every
//! nested acquisition from the call graph — including ones nobody
//! annotated — and requires the annotation to exist and agree. Cycles
//! in the acquisition graph (the actual deadlock condition) are
//! detected globally, across functions, using a may-acquire fixpoint
//! over the call graph.
//!
//! An acquisition is a `.lock()` / `.read()` / `.write()` call whose
//! receiver's inferred type is `Mutex` or `RwLock`. Guard lifetimes
//! follow the workspace idiom: a `let`-bound guard lives to the end of
//! its block (or an explicit `drop(guard)`), anything else is a
//! temporary that dies at the end of its statement. Locks the type
//! inference cannot see acquire nothing — a parser or typing gap makes
//! this pass miss, never misfire.
//!
//! Rules:
//!
//! | rule                    | severity | meaning |
//! |-------------------------|----------|---------|
//! | `lock-order-undeclared` | deny     | a nested acquisition with no matching `// lint: lock-order A < B` annotation in the file (or contradicting one) |
//! | `lock-order-cycle`      | deny     | the global acquisition graph has a cycle |
//! | `lock-annotation-unused`| warn     | a declared order matches no observed nested acquisition |

use crate::audit::{AuditFinding, Severity};
use crate::callgraph::{bind_closure_params, infer_expr, FnFacts, TypeEnv};
use crate::parser::{Block, Expr, Stmt};
use crate::symbols::Symbols;
use crate::tokenizer::Token;
use crate::ty::Ty;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Methods that acquire a guard on `Mutex` / `RwLock`.
const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// One `// lint: lock-order A < B` annotation.
struct Annotation {
    first: String,
    second: String,
    line: u32,
}

/// Scan a file's comment tokens for lock-order annotations.
fn parse_annotations(tokens: &[Token]) -> Vec<Annotation> {
    let mut out = Vec::new();
    for tok in tokens {
        if !tok.is_comment() {
            continue;
        }
        // Doc comments quote the annotation grammar when documenting
        // it; only plain comments declare an order.
        let text = tok.text.as_str();
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = text.find("lint: lock-order") else {
            continue;
        };
        let rest = &text[pos + "lint: lock-order".len()..];
        let Some((a, b)) = rest.split_once('<') else {
            continue;
        };
        let (a, b) = (a.trim(), b.trim().trim_end_matches("*/").trim_end());
        let is_ident =
            |s: &str| !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_');
        if !is_ident(a) || !is_ident(b) {
            continue;
        }
        out.push(Annotation {
            first: a.to_string(),
            second: b.to_string(),
            line: tok.line,
        });
    }
    out
}

/// A currently-held guard during the body walk.
struct Held {
    /// Bare lock name (field or binding) — what annotations use.
    bare: String,
    /// Owner-qualified name (`Type.field`) — the cycle-graph node.
    qual: String,
    /// Binding name for `let`-bound guards, `None` for temporaries.
    guard: Option<String>,
    /// Still held? (released entries stay in place so scope lengths
    /// remain valid indices).
    alive: bool,
}

/// One observed nested acquisition: `from` was held when `to` was
/// acquired.
struct LockEdge {
    from_bare: String,
    from_qual: String,
    to_bare: String,
    to_qual: String,
    /// File index of the acquisition site.
    file: usize,
    /// 1-based line of the inner acquisition (or the call, for
    /// call-graph edges).
    line: u32,
    /// Callee name for edges inferred through a call, `None` for
    /// direct nested acquisitions.
    via: Option<String>,
}

/// A workspace call made while holding a lock.
struct HeldCall {
    held_bare: String,
    held_qual: String,
    callee: usize,
    file: usize,
    line: u32,
}

/// Walker state for one function body.
struct Lx<'a, 'b> {
    sym: &'b Symbols<'a>,
    env: TypeEnv,
    file: usize,
    held: Vec<Held>,
    /// Owner-qualified locks acquired anywhere in this body.
    direct: BTreeSet<String>,
    edges: &'b mut Vec<LockEdge>,
    held_calls: &'b mut Vec<HeldCall>,
}

impl Lx<'_, '_> {
    /// Derive `(bare, qual)` labels for a lock receiver expression.
    fn lock_label(&self, recv: &Expr) -> Option<(String, String)> {
        match recv {
            Expr::Field { base, name, .. } => {
                let qual = match infer_expr(self.sym, &self.env, base, None).peeled().head() {
                    Some(owner) => format!("{owner}.{name}"),
                    None => name.clone(),
                };
                Some((name.clone(), qual))
            }
            Expr::Path { segs, .. } => {
                let name = segs.last()?.clone();
                Some((name.clone(), name))
            }
            _ => None,
        }
    }

    /// Record an acquisition: edges from every held lock, then push
    /// the new guard. Returns its index in `held`.
    fn acquire(&mut self, bare: String, qual: String, line: u32) -> usize {
        for h in self.held.iter().filter(|h| h.alive) {
            self.edges.push(LockEdge {
                from_bare: h.bare.clone(),
                from_qual: h.qual.clone(),
                to_bare: bare.clone(),
                to_qual: qual.clone(),
                file: self.file,
                line,
                via: None,
            });
        }
        self.direct.insert(qual.clone());
        self.held.push(Held {
            bare,
            qual,
            guard: None,
            alive: true,
        });
        self.held.len() - 1
    }

    /// Release every guard at index `from` or later (end of statement
    /// or block).
    fn release_from(&mut self, from: usize) {
        for h in &mut self.held[from..] {
            h.alive = false;
        }
    }

    fn walk_block(&mut self, block: &Block) {
        let scope = self.held.len();
        self.env.push();
        for stmt in &block.stmts {
            self.walk_stmt(stmt);
        }
        self.env.pop();
        self.release_from(scope);
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        let start = self.held.len();
        match stmt {
            Stmt::Let {
                names, ty, init, ..
            } => {
                let annotated = ty.as_deref().map(Ty::parse);
                if let Some(init) = init {
                    self.walk_expr(init);
                    let inferred = infer_expr(self.sym, &self.env, init, annotated.as_ref());
                    bind_names(&mut self.env, names, &annotated.unwrap_or(inferred));
                    // Temporaries die with the statement; a guard bound
                    // directly by this `let` survives to end of block.
                    self.release_from(start);
                    if names.len() == 1 {
                        if let Some((bare, qual, _)) = self.direct_acquisition(init) {
                            self.held.push(Held {
                                bare,
                                qual,
                                guard: Some(names[0].clone()),
                                alive: true,
                            });
                        }
                    }
                } else if let Some(ty) = annotated {
                    bind_names(&mut self.env, names, &ty);
                }
            }
            Stmt::Expr(e) => {
                // `drop(guard)` releases a named guard early.
                if let Expr::Call { callee, args, .. } = e {
                    if callee.len() == 1 && callee[0] == "drop" && args.len() == 1 {
                        if let Expr::Path { segs, .. } = &args[0] {
                            if let Some(name) = segs.last() {
                                for h in &mut self.held {
                                    if h.guard.as_deref() == Some(name) {
                                        h.alive = false;
                                    }
                                }
                            }
                        }
                    }
                }
                self.walk_expr(e);
                self.release_from(start);
            }
            Stmt::Return(Some(e), _) => {
                self.walk_expr(e);
                self.release_from(start);
            }
            Stmt::Return(None, _) | Stmt::Item(_) => {}
        }
    }

    /// If `e` is itself a lock acquisition, return its labels and line
    /// — *without* recording it (the walk already did). Deliberately
    /// does not look through unary wrappers: `let v = *self.m.read();`
    /// copies a value out of a *temporary* guard, it does not bind one.
    fn direct_acquisition(&self, e: &Expr) -> Option<(String, String, u32)> {
        match e {
            Expr::MethodCall {
                recv, method, line, ..
            } if LOCK_METHODS.contains(&method.as_str()) => {
                let recv_ty = infer_expr(self.sym, &self.env, recv, None);
                if !recv_ty.peeled().is_lock() {
                    return None;
                }
                let (bare, qual) = self.lock_label(recv)?;
                Some((bare, qual, *line))
            }
            _ => None,
        }
    }

    fn walk_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Call { callee, args, line } => {
                for a in args {
                    self.walk_expr(a);
                }
                if let Some(ix) = self.sym.resolve_call(callee) {
                    self.record_held_call(ix, *line);
                }
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
                ..
            } => {
                self.walk_expr(recv);
                let recv_ty = infer_expr(self.sym, &self.env, recv, None);
                if LOCK_METHODS.contains(&method.as_str()) && recv_ty.peeled().is_lock() {
                    if let Some((bare, qual)) = self.lock_label(recv) {
                        self.acquire(bare, qual, *line);
                    }
                } else if let Some(ix) = self.sym.resolve_method(&recv_ty, method) {
                    self.record_held_call(ix, *line);
                }
                let elem = recv_ty.element();
                for a in args {
                    if let Expr::Closure { params, body, .. } = a {
                        self.env.push();
                        bind_closure_params(&mut self.env, params, &elem);
                        self.walk_expr(body);
                        self.env.pop();
                    } else {
                        self.walk_expr(a);
                    }
                }
            }
            Expr::Field { base, .. }
            | Expr::Cast { expr: base, .. }
            | Expr::Unary { expr: base, .. }
            | Expr::Try { expr: base, .. } => self.walk_expr(base),
            Expr::Index { base, index, .. } => {
                self.walk_expr(base);
                self.walk_expr(index);
            }
            Expr::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.walk_expr(v);
                }
            }
            Expr::Closure { params, body, .. } => {
                self.env.push();
                for p in params {
                    self.env.bind(p, Ty::Unknown);
                }
                self.walk_expr(body);
                self.env.pop();
            }
            Expr::For {
                names, iter, body, ..
            } => {
                self.walk_expr(iter);
                let elem = infer_expr(self.sym, &self.env, iter, None).element();
                self.env.push();
                bind_names(&mut self.env, names, &elem);
                self.walk_block(body);
                self.env.pop();
            }
            Expr::While {
                cond, binds, body, ..
            } => {
                self.walk_expr(cond);
                self.env.push();
                if !binds.is_empty() {
                    let ty = infer_expr(self.sym, &self.env, cond, None);
                    bind_names(&mut self.env, binds, &ty);
                }
                self.walk_block(body);
                self.env.pop();
            }
            Expr::Loop { body, .. } => self.walk_block(body),
            Expr::If {
                cond,
                binds,
                then_branch,
                else_branch,
                ..
            } => {
                self.walk_expr(cond);
                self.env.push();
                if !binds.is_empty() {
                    let ty = infer_expr(self.sym, &self.env, cond, None);
                    bind_names(&mut self.env, binds, &ty);
                }
                self.walk_block(then_branch);
                self.env.pop();
                if let Some(e) = else_branch {
                    self.walk_expr(e);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.walk_expr(scrutinee);
                let ty = infer_expr(self.sym, &self.env, scrutinee, None);
                for (binds, body) in arms {
                    self.env.push();
                    bind_names(&mut self.env, binds, &ty);
                    self.walk_expr(body);
                    self.env.pop();
                }
            }
            Expr::Assign { target, value, .. } => {
                self.walk_expr(target);
                self.walk_expr(value);
            }
            Expr::Binary { parts, .. } => {
                for p in parts {
                    self.walk_expr(p);
                }
            }
            Expr::Macro { args, .. } | Expr::Tuple { items: args, .. }
            | Expr::ArrayLit { items: args, .. } => {
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::Block(b, _) => self.walk_block(b),
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Unknown(_) => {}
        }
    }

    /// Record a workspace call made while at least one lock is held.
    fn record_held_call(&mut self, callee: usize, line: u32) {
        for h in self.held.iter().filter(|h| h.alive) {
            self.held_calls.push(HeldCall {
                held_bare: h.bare.clone(),
                held_qual: h.qual.clone(),
                callee,
                file: self.file,
                line,
            });
        }
    }
}

/// Bind pattern names against a type (single name gets the whole type,
/// `Some(x)` patterns see the `Option` payload, tuples bind
/// positionally).
fn bind_names(env: &mut TypeEnv, names: &[String], ty: &Ty) {
    let ty = if ty.peeled().head() == Some("Option") {
        ty.arg0()
    } else {
        ty.clone()
    };
    if names.len() == 1 {
        env.bind(&names[0], ty);
        return;
    }
    for (ix, name) in names.iter().enumerate() {
        env.bind(name, ty.tuple_field(ix));
    }
}

/// Run the pass over every non-test function.
pub fn run(sym: &Symbols, facts: &[FnFacts], file_tokens: &[Vec<Token>]) -> Vec<AuditFinding> {
    let mut edges = Vec::new();
    let mut held_calls = Vec::new();
    let mut direct: Vec<BTreeSet<String>> = Vec::with_capacity(sym.fns.len());
    for info in &sym.fns {
        let mut lx = Lx {
            sym,
            env: TypeEnv::new(),
            file: info.file,
            held: Vec::new(),
            direct: BTreeSet::new(),
            edges: &mut edges,
            held_calls: &mut held_calls,
        };
        if let Some(body) = &info.def.body {
            if !info.is_test {
                for (p, ty) in info.def.params.iter().zip(&info.param_tys) {
                    lx.env.bind(&p.name, ty.clone());
                }
                lx.walk_block(body);
            }
        }
        direct.push(lx.direct);
    }

    // May-acquire fixpoint over the call graph: a function may acquire
    // everything it acquires directly plus everything its callees may.
    let mut may = direct;
    for _ in 0..32 {
        let mut changed = false;
        for ix in 0..may.len() {
            let mut add: Vec<String> = Vec::new();
            for call in &facts[ix].calls {
                for q in &may[call.callee] {
                    if !may[ix].contains(q) {
                        add.push(q.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                may[ix].extend(add);
            }
        }
        if !changed {
            break;
        }
    }

    // Calls while holding turn into call-graph edges against everything
    // the callee may acquire (self edges through calls are fixpoint
    // noise — re-entering `Shard.map` on a *different* shard is fine —
    // so only direct self edges count).
    let mut callee_may: Vec<LockEdge> = Vec::new();
    for hc in &held_calls {
        for q in &may[hc.callee] {
            if *q == hc.held_qual {
                continue;
            }
            callee_may.push(LockEdge {
                from_bare: hc.held_bare.clone(),
                from_qual: hc.held_qual.clone(),
                to_bare: q.rsplit('.').next().unwrap_or(q).to_string(),
                to_qual: q.clone(),
                file: hc.file,
                line: hc.line,
                via: Some(sym.fns[hc.callee].qual_name()),
            });
        }
    }
    edges.extend(callee_may);

    // Annotations per file.
    let annotations: Vec<Vec<Annotation>> =
        file_tokens.iter().map(|t| parse_annotations(t)).collect();
    let mut used: Vec<Vec<bool>> = annotations.iter().map(|a| vec![false; a.len()]).collect();

    let mut findings = Vec::new();
    let mut reported: BTreeSet<(String, String, u32)> = BTreeSet::new();
    for e in &edges {
        if e.via.is_some() {
            continue; // call-graph edges feed the cycle check only
        }
        let file_ann = &annotations[e.file];
        let declared = file_ann
            .iter()
            .position(|a| a.first == e.from_bare && a.second == e.to_bare);
        if let Some(ix) = declared {
            used[e.file][ix] = true;
            continue;
        }
        let key = (e.from_qual.clone(), e.to_qual.clone(), e.line);
        if !reported.insert(key) {
            continue;
        }
        let contradicted = file_ann
            .iter()
            .any(|a| a.first == e.to_bare && a.second == e.from_bare);
        let message = if contradicted {
            format!(
                "`{}` acquired while `{}` is held, contradicting the declared order `// lint: lock-order {} < {}`",
                e.to_qual, e.from_qual, e.to_bare, e.from_bare
            )
        } else {
            format!(
                "`{}` acquired while `{}` is held with no declared order; add `// lint: lock-order {} < {}` (or restructure)",
                e.to_qual, e.from_qual, e.from_bare, e.to_bare
            )
        };
        findings.push(AuditFinding {
            rule: "lock-order-undeclared",
            path: sym.files[e.file].path.clone(),
            line: e.line,
            message,
            chain: vec![format!(
                "`{}` held at {}:{} when `{}` is acquired",
                e.from_qual, sym.files[e.file].path, e.line, e.to_qual
            )],
            severity: Severity::Deny,
        });
    }

    findings.extend(find_cycles(sym, &edges));

    for (fi, anns) in annotations.iter().enumerate() {
        for (ai, ann) in anns.iter().enumerate() {
            if used[fi][ai] {
                continue;
            }
            findings.push(AuditFinding {
                rule: "lock-annotation-unused",
                path: sym.files[fi].path.clone(),
                line: ann.line,
                message: format!(
                    "declared lock order `{} < {}` matches no observed nested acquisition",
                    ann.first, ann.second
                ),
                chain: Vec::new(),
                severity: Severity::Warn,
            });
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Detect cycles in the qualified acquisition graph (DFS, reporting
/// each distinct cycle node-set once).
fn find_cycles(sym: &Symbols, edges: &[LockEdge]) -> Vec<AuditFinding> {
    let mut graph: BTreeMap<&str, BTreeMap<&str, &LockEdge>> = BTreeMap::new();
    for e in edges {
        graph
            .entry(e.from_qual.as_str())
            .or_default()
            .entry(e.to_qual.as_str())
            .or_insert(e);
    }
    let nodes: Vec<&str> = graph.keys().copied().collect();
    let mut state: HashMap<&str, u8> = HashMap::new(); // 0 unvisited, 1 on stack, 2 done
    let mut stack: Vec<&str> = Vec::new();
    let mut findings = Vec::new();
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();

    fn dfs<'g>(
        node: &'g str,
        graph: &BTreeMap<&'g str, BTreeMap<&'g str, &'g LockEdge>>,
        state: &mut HashMap<&'g str, u8>,
        stack: &mut Vec<&'g str>,
        sym: &Symbols,
        seen: &mut BTreeSet<Vec<String>>,
        findings: &mut Vec<AuditFinding>,
    ) {
        state.insert(node, 1);
        stack.push(node);
        if let Some(succs) = graph.get(node) {
            for (&succ, &edge) in succs {
                match state.get(succ).copied().unwrap_or(0) {
                    0 => dfs(succ, graph, state, stack, sym, seen, findings),
                    1 => {
                        // Back edge: the cycle is the stack suffix from
                        // `succ` plus this edge.
                        let start = stack.iter().position(|&n| n == succ).unwrap_or(0);
                        let cycle: Vec<String> =
                            stack[start..].iter().map(|s| s.to_string()).collect();
                        let mut key = cycle.clone();
                        key.sort();
                        if !seen.insert(key) {
                            continue;
                        }
                        let mut chain: Vec<String> = cycle
                            .windows(2)
                            .map(|w| format!("`{}` acquired before `{}`", w[0], w[1]))
                            .collect();
                        chain.push(match &edge.via {
                            Some(callee) => format!(
                                "`{}` acquired before `{}` (through call to {} at {}:{})",
                                node, succ, callee, sym.files[edge.file].path, edge.line
                            ),
                            None => format!(
                                "`{}` acquired before `{}` at {}:{}",
                                node, succ, sym.files[edge.file].path, edge.line
                            ),
                        });
                        findings.push(AuditFinding {
                            rule: "lock-order-cycle",
                            path: sym.files[edge.file].path.clone(),
                            line: edge.line,
                            message: format!(
                                "lock acquisition cycle: {} -> `{}`",
                                cycle
                                    .iter()
                                    .map(|n| format!("`{n}`"))
                                    .collect::<Vec<_>>()
                                    .join(" -> "),
                                succ
                            ),
                            chain,
                            severity: Severity::Deny,
                        });
                    }
                    _ => {}
                }
            }
        }
        stack.pop();
        state.insert(node, 2);
    }

    for node in nodes {
        if state.get(node).copied().unwrap_or(0) == 0 {
            dfs(
                node,
                &graph,
                &mut state,
                &mut stack,
                sym,
                &mut seen_cycles,
                &mut findings,
            );
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::collect_facts;
    use crate::parser::{parse_file, ParsedFile};
    use crate::tokenizer::tokenize;

    fn audit(src: &str) -> Vec<AuditFinding> {
        let tokens = tokenize(src);
        let files: Vec<ParsedFile> = vec![parse_file("a.rs", "test", &tokens)];
        let sym = Symbols::build(&files);
        let facts = collect_facts(&sym);
        run(&sym, &facts, &[tokens])
    }

    #[test]
    fn declared_nesting_is_clean() {
        let findings = audit(
            "// lint: lock-order writer < map\n\
             pub struct S { writer: Mutex<()>, map: RwLock<u32> }\n\
             impl S {\n\
                 pub fn go(&self) {\n\
                     let _w = self.writer.lock();\n\
                     let mut g = self.map.write();\n\
                     *g += 1;\n\
                 }\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn undeclared_nesting_is_denied() {
        let findings = audit(
            "pub struct S { a: Mutex<()>, b: Mutex<()> }\n\
             impl S {\n\
                 pub fn go(&self) {\n\
                     let _a = self.a.lock();\n\
                     let _b = self.b.lock();\n\
                 }\n\
             }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "lock-order-undeclared");
        assert_eq!(findings[0].severity, Severity::Deny);
    }

    #[test]
    fn temporary_guard_releases_at_statement_end() {
        // The `read()` temporary dies with its statement, so the later
        // `write()` is not a nested acquisition.
        let findings = audit(
            "pub struct S { map: RwLock<u32> }\n\
             impl S {\n\
                 pub fn go(&self) -> u32 {\n\
                     let v = *self.map.read();\n\
                     *self.map.write() = v + 1;\n\
                     v\n\
                 }\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn dropped_guard_is_released() {
        let findings = audit(
            "pub struct S { a: Mutex<()>, b: Mutex<()> }\n\
             impl S {\n\
                 pub fn go(&self) {\n\
                     let g = self.a.lock();\n\
                     drop(g);\n\
                     let _b = self.b.lock();\n\
                 }\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn contradicting_order_names_the_annotation() {
        let findings = audit(
            "// lint: lock-order a < b\n\
             pub struct S { a: Mutex<()>, b: Mutex<()> }\n\
             impl S {\n\
                 pub fn go(&self) {\n\
                     let _b = self.b.lock();\n\
                     let _a = self.a.lock();\n\
                 }\n\
             }",
        );
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "lock-order-undeclared" && f.message.contains("contradicting")),
            "{findings:?}"
        );
    }

    #[test]
    fn cross_function_cycle_is_detected() {
        // `first` nests a<b directly; `second` holds b and calls a
        // helper that may acquire a: b -> a through the call graph.
        let findings = audit(
            "// lint: lock-order a < b\n\
             pub struct S { a: Mutex<()>, b: Mutex<()> }\n\
             impl S {\n\
                 pub fn first(&self) {\n\
                     let _a = self.a.lock();\n\
                     let _b = self.b.lock();\n\
                 }\n\
                 pub fn touch_a(&self) { let _a = self.a.lock(); }\n\
                 pub fn second(&self) {\n\
                     let _b = self.b.lock();\n\
                     self.touch_a();\n\
                 }\n\
             }",
        );
        assert!(
            findings.iter().any(|f| f.rule == "lock-order-cycle"),
            "{findings:?}"
        );
    }

    #[test]
    fn unused_annotation_warns() {
        let findings = audit(
            "// lint: lock-order x < y\n\
             pub struct S { x: Mutex<()>, y: Mutex<()> }\n\
             impl S { pub fn only_x(&self) { let _x = self.x.lock(); } }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "lock-annotation-unused");
        assert_eq!(findings[0].severity, Severity::Warn);
    }
}
