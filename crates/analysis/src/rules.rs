//! The invariant rules `evorec-lint` enforces, as token-pattern
//! matchers over [`crate::tokenizer`] output.
//!
//! | rule id           | invariant |
//! |-------------------|-----------|
//! | `nan-sort`        | no `partial_cmp` inside a sort/min/max comparator (NaN makes the comparator non-total → `unwrap` panics or ordering corrupts); use `total_cmp` or `Ord::cmp` |
//! | `hot-path-panic`  | no `.unwrap()` / `.expect(...)` / `panic!` in non-test code of the hot-path crates (core, stream, windows, adapt, kb); `assert!` remains the sanctioned precondition idiom |
//! | `relaxed-publish` | no `Ordering::Relaxed` in a statement that publishes a pointer (`AtomicPtr`/`into_raw`/`from_raw`) or touches a field annotated `// lint: publishes` |
//! | `unbounded-queue` | no unbounded queue construction (`mpsc::channel`, `unbounded(..)`, `unbounded_channel`) — backpressure is load-bearing, use `BoundedLog` |
//! | `sleep-in-test`   | no `std::thread::sleep` in tests — sleeping races the scheduler; block on a primitive or spin on a counter |
//! | `lock-order`      | within any one function, locks named in a `// lint: lock-order A < B` annotation must be first-acquired in that order |
//!
//! # Annotation grammar
//!
//! Annotations are ordinary line comments starting with `lint:`:
//!
//! * `// lint: lock-order A < B` — declares the acquisition order for
//!   the named lock fields, checked per function body file-wide.
//! * `// lint: publishes` — placed directly above a field declaration;
//!   marks that field as participating in pointer/epoch publication, so
//!   `Relaxed` ordering on it becomes a finding.

use crate::tokenizer::{tokenize, Token, TokenKind};

/// One diagnostic: a rule violated at a source position.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable rule identifier (used in allowlist entries).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the remediation.
    pub message: String,
}

/// How the file under lint is classified (derived from its path by the
/// binary; explicit here so the engine is testable on bare strings).
#[derive(Clone, Copy, Debug, Default)]
pub struct FileClass {
    /// In a hot-path crate's `src/` (core/stream/windows/adapt/kb):
    /// the `hot-path-panic` rule applies outside test regions.
    pub hot_path: bool,
    /// An integration-test file (under a `tests/` directory): the
    /// whole file is test context for `sleep-in-test`.
    pub test_file: bool,
}

/// Lint one source file. Pure function of the text and its class.
pub fn lint_source(source: &str, class: FileClass) -> Vec<Finding> {
    let tokens = tokenize(source);
    // Code-token view: rule patterns never span comments.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let test_regions = find_test_regions(&tokens, &code);
    let annotations = parse_annotations(&tokens);
    let mut findings = Vec::new();
    check_nan_sort(&tokens, &code, &mut findings);
    if class.hot_path {
        check_hot_path_panic(&tokens, &code, &test_regions, &mut findings);
    }
    check_relaxed_publish(&tokens, &code, &annotations, &mut findings);
    check_unbounded_queue(&tokens, &code, &mut findings);
    check_sleep_in_test(&tokens, &code, &test_regions, class, &mut findings);
    check_lock_order(&tokens, &code, &annotations, &mut findings);
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

// ---- test-region detection ----------------------------------------------

/// Token-index ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`
/// items.
fn find_test_regions(tokens: &[Token], code: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut k = 0usize;
    while k + 1 < code.len() {
        if !(tokens[code[k]].is_punct('#') && tokens[code[k + 1]].is_punct('[')) {
            k += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let attr_start = code[k];
        let mut depth = 0usize;
        let mut j = k + 1;
        let mut attr_idents: Vec<&str> = Vec::new();
        while j < code.len() {
            let t = &tokens[code[j]];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokenKind::Ident {
                attr_idents.push(&t.text);
            }
            j += 1;
        }
        let is_test_attr = attr_idents.first() == Some(&"test")
            || (attr_idents.first() == Some(&"cfg")
                && attr_idents.contains(&"test")
                && !attr_idents.contains(&"not"));
        if !is_test_attr {
            k = j;
            continue;
        }
        // The attribute's item extends to its matching closing brace —
        // or to a `;` for brace-less items (`#[cfg(test)] use ...;`).
        let mut brace_depth = 0usize;
        let mut end = code[j];
        let mut m = j + 1;
        while m < code.len() {
            let t = &tokens[code[m]];
            if brace_depth == 0 && t.is_punct(';') {
                end = code[m];
                break;
            }
            if t.is_punct('{') {
                brace_depth += 1;
            } else if t.is_punct('}') {
                brace_depth -= 1;
                if brace_depth == 0 {
                    end = code[m];
                    break;
                }
            }
            m += 1;
        }
        if m >= code.len() {
            end = tokens.len() - 1;
        }
        regions.push((attr_start, end));
        k = m + 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| s <= idx && idx <= e)
}

// ---- annotations --------------------------------------------------------

struct Annotations {
    /// `(a, b)` pairs from `lock-order a < b`: a before b.
    lock_orders: Vec<(String, String)>,
    /// Field names annotated `// lint: publishes`.
    publish_fields: Vec<String>,
}

fn parse_annotations(tokens: &[Token]) -> Annotations {
    let mut lock_orders = Vec::new();
    let mut publish_fields = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/').trim();
        let Some(directive) = body.strip_prefix("lint:") else {
            continue;
        };
        let directive = directive.trim();
        if let Some(rest) = directive.strip_prefix("lock-order") {
            if let Some((a, b)) = rest.split_once('<') {
                lock_orders.push((a.trim().to_string(), b.trim().to_string()));
            }
        } else if directive == "publishes" {
            // The annotated field is the next code identifier, skipping
            // visibility qualifiers (`pub`, `pub(crate)`, ...).
            if let Some(name) = tokens[i + 1..]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .find(|t| !matches!(t.text.as_str(), "pub" | "crate" | "super" | "in" | "self"))
            {
                publish_fields.push(name.text.clone());
            }
        }
    }
    Annotations {
        lock_orders,
        publish_fields,
    }
}

// ---- rules --------------------------------------------------------------

const SORT_METHODS: [&str; 7] = [
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
    "select_nth_unstable_by",
    "partition_by",
];

fn check_nan_sort(tokens: &[Token], code: &[usize], findings: &mut Vec<Finding>) {
    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || !SORT_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        let Some(&open) = code.get(k + 1) else {
            continue;
        };
        if !tokens[open].is_punct('(') {
            continue;
        }
        // Scan the comparator argument (paren-matched) for partial_cmp.
        let mut depth = 0usize;
        for &j in &code[k + 1..] {
            let t = &tokens[j];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("partial_cmp") {
                findings.push(Finding {
                    rule: "nan-sort",
                    line: t.line,
                    col: t.col,
                    message: "partial_cmp in a sort comparator is NaN-unsafe (non-total \
                              order panics or corrupts the sort); use f64::total_cmp or Ord::cmp"
                        .to_string(),
                });
            }
        }
    }
}

fn check_hot_path_panic(
    tokens: &[Token],
    code: &[usize],
    test_regions: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || in_regions(test_regions, i) {
            continue;
        }
        let next_is = |ch| {
            code.get(k + 1)
                .is_some_and(|&n| tokens[n].is_punct(ch))
        };
        let prev_is_dot = k > 0 && tokens[code[k - 1]].is_punct('.');
        let (hit, advice) = match t.text.as_str() {
            "unwrap" | "expect" if prev_is_dot && next_is('(') => (
                true,
                "return a Result, use let-else/unwrap_or, or assert! the precondition",
            ),
            "panic" if next_is('!') => (
                true,
                "return an error or make the precondition an assert! with context",
            ),
            _ => (false, ""),
        };
        if hit {
            findings.push(Finding {
                rule: "hot-path-panic",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` in non-test hot-path code can abort serving; {advice}",
                    t.text
                ),
            });
        }
    }
}

/// Statement span around code-position `k`: back to the previous
/// `;`/`{`/`}` and forward to the next `;` (brace-aware only forward).
fn statement_span(tokens: &[Token], code: &[usize], k: usize) -> (usize, usize) {
    let mut start = k;
    while start > 0 {
        let t = &tokens[code[start - 1]];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    let mut end = k;
    while end + 1 < code.len() {
        let t = &tokens[code[end]];
        if t.is_punct(';') {
            break;
        }
        end += 1;
    }
    (start, end)
}

fn check_relaxed_publish(
    tokens: &[Token],
    code: &[usize],
    annotations: &Annotations,
    findings: &mut Vec<Finding>,
) {
    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if !t.is_ident("Relaxed") {
            continue;
        }
        let (start, end) = statement_span(tokens, code, k);
        let stmt_idents: Vec<&str> = code[start..=end]
            .iter()
            .filter(|&&j| tokens[j].kind == TokenKind::Ident)
            .map(|&j| tokens[j].text.as_str())
            .collect();
        let pointerish = stmt_idents
            .iter()
            .any(|s| matches!(*s, "AtomicPtr" | "into_raw" | "from_raw"));
        let published_field = annotations
            .publish_fields
            .iter()
            .find(|f| stmt_idents.contains(&f.as_str()));
        if pointerish || published_field.is_some() {
            let what = published_field.map_or_else(
                || "a raw-pointer publication".to_string(),
                |f| format!("field `{f}` (annotated `lint: publishes`)"),
            );
            findings.push(Finding {
                rule: "relaxed-publish",
                line: t.line,
                col: t.col,
                message: format!(
                    "Ordering::Relaxed on {what} gives readers no visibility guarantee \
                     for the data behind the publication; use Acquire/Release (or SeqCst)"
                ),
            });
        }
    }
}

fn check_unbounded_queue(tokens: &[Token], code: &[usize], findings: &mut Vec<Finding>) {
    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |ch| {
            code.get(k + 1)
                .is_some_and(|&n| tokens[n].is_punct(ch))
        };
        let prev2_ident = |name: &str| {
            k >= 2
                && tokens[code[k - 1]].is_punct(':')
                && tokens[code[k - 2]].is_punct(':')
                && k >= 3
                && tokens[code[k - 3]].is_ident(name)
        };
        let hit = match t.text.as_str() {
            "channel" if next_is('(') && prev2_ident("mpsc") => true,
            "unbounded" | "unbounded_channel" if next_is('(') => true,
            _ => false,
        };
        if hit {
            findings.push(Finding {
                rule: "unbounded-queue",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` constructs an unbounded queue — a slow consumer then buffers \
                     without limit; use BoundedLog (or another bounded primitive) so \
                     backpressure reaches producers",
                    t.text
                ),
            });
        }
    }
}

fn check_sleep_in_test(
    tokens: &[Token],
    code: &[usize],
    test_regions: &[(usize, usize)],
    class: FileClass,
    findings: &mut Vec<Finding>,
) {
    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if !t.is_ident("sleep") {
            continue;
        }
        let is_thread_sleep = k >= 3
            && tokens[code[k - 1]].is_punct(':')
            && tokens[code[k - 2]].is_punct(':')
            && tokens[code[k - 3]].is_ident("thread");
        if !is_thread_sleep {
            continue;
        }
        if class.test_file || in_regions(test_regions, i) {
            findings.push(Finding {
                rule: "sleep-in-test",
                line: t.line,
                col: t.col,
                message: "thread::sleep in a test races the scheduler (flaky under load, \
                          slow always); block on the primitive under test or spin on an \
                          observable counter with yield_now"
                    .to_string(),
            });
        }
    }
}

fn check_lock_order(
    tokens: &[Token],
    code: &[usize],
    annotations: &Annotations,
    findings: &mut Vec<Finding>,
) {
    if annotations.lock_orders.is_empty() {
        return;
    }
    // Function bodies: `fn name ... {` to the matching `}`.
    let mut k = 0usize;
    while k < code.len() {
        if !tokens[code[k]].is_ident("fn") {
            k += 1;
            continue;
        }
        // Find the body's opening brace (signatures contain no `{`; a
        // `;` first means a trait/extern declaration without body).
        let mut open = None;
        let mut j = k + 1;
        while j < code.len() {
            let t = &tokens[code[j]];
            if t.is_punct('{') {
                open = Some(j);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            k = j + 1;
            continue;
        };
        let mut depth = 0usize;
        let mut close = open;
        for (m, &idx) in code.iter().enumerate().skip(open) {
            let t = &tokens[idx];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = m;
                    break;
                }
            }
        }
        // First acquisition position of each annotated lock name:
        // `name . lock|read|write (`.
        let mut first_acq: Vec<(&str, usize, &Token)> = Vec::new();
        for m in open..=close {
            let t = &tokens[code[m]];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let is_acq = code.get(m + 1).is_some_and(|&d| tokens[d].is_punct('.'))
                && code.get(m + 2).is_some_and(|&f| {
                    tokens[f].is_ident("lock")
                        || tokens[f].is_ident("read")
                        || tokens[f].is_ident("write")
                })
                && code.get(m + 3).is_some_and(|&p| tokens[p].is_punct('('));
            if is_acq && !first_acq.iter().any(|(n, _, _)| *n == t.text.as_str()) {
                first_acq.push((t.text.as_str(), m, t));
            }
        }
        for (a, b) in &annotations.lock_orders {
            let pos_a = first_acq.iter().find(|(n, _, _)| n == a);
            let pos_b = first_acq.iter().find(|(n, _, _)| n == b);
            if let (Some((_, ka, _)), Some((_, kb, tb))) = (pos_a, pos_b) {
                if kb < ka {
                    findings.push(Finding {
                        rule: "lock-order",
                        line: tb.line,
                        col: tb.col,
                        message: format!(
                            "`{b}` acquired before `{a}`, violating the declared order \
                             `lock-order {a} < {b}` — inverted acquisition deadlocks \
                             against a thread following the declared order"
                        ),
                    });
                }
            }
        }
        k = close + 1;
    }
}
