//! A lightweight Rust lexer — just enough fidelity for invariant
//! linting.
//!
//! The rules in [`crate::rules`] are token-pattern matchers, so the
//! lexer's job is to make token boundaries trustworthy: string and
//! character literals must not leak their contents as code (a
//! `"partial_cmp"` in a message is not a call), comments must be
//! preserved verbatim (the annotation grammar lives there), lifetimes
//! must not be confused with char literals, and `1..n` ranges must not
//! be swallowed into number literals. It is *not* a full lexer: exotic
//! forms it cannot classify degrade to single-character punctuation
//! tokens, which at worst makes a rule miss — never misfire on — a
//! pattern.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `unwrap`).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// A numeric literal (`42`, `0x1f`, `1_000`, `2.5e3`).
    Number,
    /// A string, raw-string, byte-string, or char literal. Contents are
    /// deliberately opaque to the rules.
    Str,
    /// A `// ...` comment, text preserved (annotations live here).
    LineComment,
    /// A `/* ... */` comment (nesting handled), text preserved.
    BlockComment,
    /// A single punctuation character (`.`, `(`, `<`, ...).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// `true` for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// `true` when this is an [`TokenKind::Ident`] with exactly `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// `true` when this is a [`TokenKind::Punct`] with exactly `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(ch)
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `source` into a token stream (comments included).
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            tokens.push(Token {
                kind: TokenKind::LineComment,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            loop {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push('/');
                        text.push('*');
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        text.push('*');
                        text.push('/');
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            break;
                        }
                    }
                    (Some(c), _) => {
                        text.push(c);
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            tokens.push(Token {
                kind: TokenKind::BlockComment,
                text,
                line,
                col,
            });
            continue;
        }
        // Raw / byte strings: r"...", r#"..."#, br"...", b"...".
        if matches!(c, 'r' | 'b') {
            if let Some(text) = try_string_prefix(&mut cur) {
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
                continue;
            }
        }
        if c == '"' {
            let text = lex_quoted(&mut cur);
            tokens.push(Token {
                kind: TokenKind::Str,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '\'' {
            let token = lex_char_or_lifetime(&mut cur, line, col);
            tokens.push(token);
            continue;
        }
        if c.is_ascii_digit() {
            let text = lex_number(&mut cur);
            tokens.push(Token {
                kind: TokenKind::Number,
                text,
                line,
                col,
            });
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        cur.bump();
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    tokens
}

/// At an `r`/`b`: if it starts a raw/byte string literal, consume and
/// return it; otherwise leave the cursor untouched (it is an ident).
fn try_string_prefix(cur: &mut Cursor) -> Option<String> {
    let mut ahead = 1;
    if cur.peek(0) == Some('b') && cur.peek(1) == Some('r') {
        ahead = 2;
    }
    let mut hashes = 0usize;
    while cur.peek(ahead) == Some('#') {
        ahead += 1;
        hashes += 1;
    }
    if cur.peek(ahead) != Some('"') {
        return None;
    }
    let raw = ahead > 1 || cur.peek(0) == Some('r');
    let mut text = String::new();
    for _ in 0..=ahead {
        text.push(cur.bump()?);
    }
    if !raw {
        // b"..." — ordinary escape rules.
        text.push_str(&lex_quoted_body(cur));
        return Some(text);
    }
    // Raw: ends at `"` followed by `hashes` hashes; no escapes.
    loop {
        let c = cur.bump()?;
        text.push(c);
        if c == '"' && (0..hashes).all(|i| cur.peek(i) == Some('#')) {
            for _ in 0..hashes {
                text.push(cur.bump()?);
            }
            return Some(text);
        }
    }
}

/// Consume a `"`-delimited string with escapes, opening quote included.
fn lex_quoted(cur: &mut Cursor) -> String {
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q);
    }
    text.push_str(&lex_quoted_body(cur));
    text
}

fn lex_quoted_body(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
            continue;
        }
        if c == '"' {
            break;
        }
    }
    text
}

/// At a `'`: disambiguate char literal (`'a'`, `'\n'`) from lifetime
/// (`'a`, `'static`).
fn lex_char_or_lifetime(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let is_char = match cur.peek(1) {
        Some('\\') => true,
        Some(c) if is_ident_start(c) => cur.peek(2) == Some('\''),
        Some(_) => true, // '(' , '.', digits ... always char literals
        None => true,
    };
    let mut text = String::new();
    if is_char {
        if let Some(q) = cur.bump() {
            text.push(q);
        }
        while let Some(c) = cur.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(escaped) = cur.bump() {
                    text.push(escaped);
                }
                continue;
            }
            if c == '\'' {
                break;
            }
        }
        return Token {
            kind: TokenKind::Str,
            text,
            line,
            col,
        };
    }
    if let Some(q) = cur.bump() {
        text.push(q);
    }
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token {
        kind: TokenKind::Lifetime,
        text,
        line,
        col,
    }
}

/// Consume a number. `1..n` must not swallow the range dots, while
/// `2.5` and `1e-3` stay single tokens.
fn lex_number(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
            // Exponent sign: 1e-3 / 2.5E+10.
            if (c == 'e' || c == 'E')
                && !text.starts_with("0x")
                && matches!(cur.peek(0), Some('+') | Some('-'))
                && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                text.push(cur.bump().unwrap_or('-'));
            }
            continue;
        }
        if c == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) && !text.contains('.') {
            text.push(c);
            cur.bump();
            continue;
        }
        break;
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("foo.unwrap()");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "foo".to_string()),
                (TokenKind::Punct, ".".to_string()),
                (TokenKind::Ident, "unwrap".to_string()),
                (TokenKind::Punct, "(".to_string()),
                (TokenKind::Punct, ")".to_string()),
            ]
        );
    }

    #[test]
    fn strings_are_opaque() {
        let toks = kinds(r#"let m = "call .unwrap() here";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; x"###);
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Str));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2, "two 'a lifetimes: {toks:?}");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(chars.len(), 2, "'x' and '\\n': {toks:?}");
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { let f = 2.5; let h = 0x1f; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "10"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "2.5"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "0x1f"));
        assert_eq!(
            toks.iter().filter(|(_, t)| t == ".").count(),
            2,
            "the range's two dots survive as punctuation"
        );
    }

    #[test]
    fn comments_preserved_for_annotations() {
        let toks = kinds("struct S {\n    // lint: lock-order writer < map\n    writer: u32,\n}");
        assert!(toks.iter().any(
            |(k, t)| *k == TokenKind::LineComment && t.contains("lock-order writer < map")
        ));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "code"));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = tokenize("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
