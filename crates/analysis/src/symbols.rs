//! Workspace symbol table: every struct and function across the
//! parsed files, indexed for call resolution.
//!
//! Method resolution is heuristic (there is no trait solver): a method
//! call resolves when the receiver's type is known and an impl of that
//! type defines the method, or — as a fallback — when the method name
//! is workspace-unique and not a common std name. Unresolved calls
//! simply produce no call-graph edge; all downstream analyses treat a
//! missing edge as "no flow", keeping parser/typing gaps conservative.

use crate::parser::{FnDef, Item, ParsedFile, StructDef};
use crate::ty::Ty;
use std::collections::HashMap;

/// Method names too common for the unique-name fallback: resolving
/// `x.get(..)` to some workspace `get` by name alone would be wrong
/// far more often than right.
const COMMON_METHODS: [&str; 24] = [
    "new", "default", "len", "is_empty", "iter", "into_iter", "get", "insert", "remove", "push",
    "pop", "clear", "clone", "contains", "next", "extend", "from", "into", "as_ref", "as_mut",
    "write", "read", "lock", "id",
];

/// One function known to the workspace.
pub struct FnInfo<'a> {
    /// Index of the defining file in [`Symbols::files`].
    pub file: usize,
    /// Impl type name for methods, `None` for free functions.
    pub owner: Option<&'a str>,
    /// The parsed definition.
    pub def: &'a FnDef,
    /// `true` for `#[test]` fns or fns in `#[cfg(test)]` scopes.
    pub is_test: bool,
    /// Parsed parameter types, in order (receivers get the owner type).
    pub param_tys: Vec<Ty>,
    /// Parsed return type (`Unknown` for `()`).
    pub ret_ty: Ty,
}

impl FnInfo<'_> {
    /// `path:line` label for diagnostics.
    pub fn site(&self, files: &[ParsedFile]) -> String {
        format!("{}:{}", files[self.file].path, self.def.line)
    }

    /// `Type::name` or bare `name`.
    pub fn qual_name(&self) -> String {
        match self.owner {
            Some(t) => format!("{t}::{}", self.def.name),
            None => self.def.name.clone(),
        }
    }
}

/// The workspace symbol table.
pub struct Symbols<'a> {
    /// The parsed files, in audit order.
    pub files: &'a [ParsedFile],
    /// Every function, test or not.
    pub fns: Vec<FnInfo<'a>>,
    /// Struct definitions by type name (first definition wins).
    pub structs: HashMap<&'a str, &'a StructDef>,
    /// `(owner type, method name)` → fn index.
    pub by_owner: HashMap<(String, String), usize>,
    /// Free functions by name.
    pub free_by_name: HashMap<&'a str, Vec<usize>>,
    /// Methods by bare name (for the unique-name fallback).
    pub methods_by_name: HashMap<&'a str, Vec<usize>>,
}

impl<'a> Symbols<'a> {
    /// Index the parsed files.
    pub fn build(files: &'a [ParsedFile]) -> Symbols<'a> {
        let mut sym = Symbols {
            files,
            fns: Vec::new(),
            structs: HashMap::new(),
            by_owner: HashMap::new(),
            free_by_name: HashMap::new(),
            methods_by_name: HashMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            index_items(&mut sym, fi, &file.items, false);
        }
        // Resolve receiver parameter types now that owners are known.
        for ix in 0..sym.fns.len() {
            let owner = sym.fns[ix].owner.map(str::to_string);
            let mut tys = Vec::with_capacity(sym.fns[ix].def.params.len());
            for p in &sym.fns[ix].def.params {
                if p.name == "self" && p.ty.is_empty() {
                    tys.push(owner.as_deref().map_or(Ty::Unknown, Ty::named));
                } else {
                    tys.push(Ty::parse(&p.ty));
                }
            }
            let ret = match sym.fns[ix].def.ret_ty.as_deref() {
                None => Ty::Unknown,
                Some(t) => {
                    let ty = Ty::parse(t);
                    // `-> Self` means the impl type.
                    if ty.head() == Some("Self") {
                        owner.as_deref().map_or(Ty::Unknown, Ty::named)
                    } else {
                        ty
                    }
                }
            };
            sym.fns[ix].param_tys = tys;
            sym.fns[ix].ret_ty = ret;
        }
        sym
    }

    /// Resolve a path call `a::b::name(..)`.
    pub fn resolve_call(&self, segs: &[String]) -> Option<usize> {
        let name = segs.last()?;
        if segs.len() >= 2 {
            let qualifier = &segs[segs.len() - 2];
            if qualifier.chars().next().is_some_and(char::is_uppercase) {
                // `Type::method` associated call.
                return self
                    .by_owner
                    .get(&(qualifier.clone(), name.clone()))
                    .copied();
            }
            // `module::free_fn` — fall through to free lookup.
        }
        match self.free_by_name.get(name.as_str()) {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }

    /// Resolve `recv.method(..)` given the receiver's inferred type.
    pub fn resolve_method(&self, recv_ty: &Ty, method: &str) -> Option<usize> {
        if let Some(head) = recv_ty.peeled().head() {
            if let Some(&ix) = self.by_owner.get(&(head.to_string(), method.to_string())) {
                return Some(ix);
            }
            // A known receiver type that simply doesn't define the
            // method: don't fall back to name matching — it's a std
            // or shim method we model (or ignore) structurally.
            if self.structs.contains_key(head) {
                return None;
            }
        }
        if COMMON_METHODS.contains(&method) {
            return None;
        }
        match self.methods_by_name.get(method) {
            Some(v) if v.len() == 1 && !self.free_by_name.contains_key(method) => Some(v[0]),
            _ => None,
        }
    }

    /// Field type of `type_head.field`, if the struct is known.
    pub fn field_ty(&self, type_head: &str, field: &str) -> Ty {
        let Some(sd) = self.structs.get(type_head) else {
            return Ty::Unknown;
        };
        for (name, ty) in &sd.fields {
            if name == field {
                return Ty::parse(ty);
            }
        }
        Ty::Unknown
    }
}

fn index_items<'a>(sym: &mut Symbols<'a>, fi: usize, items: &'a [Item], in_test: bool) {
    for item in items {
        match item {
            Item::Fn(fd) => {
                let ix = push_fn(sym, fi, None, fd, in_test);
                sym.free_by_name.entry(&fd.name).or_default().push(ix);
            }
            Item::Struct(sd) => {
                sym.structs.entry(&sd.name).or_insert(sd);
            }
            Item::Impl(imp) => {
                for fd in &imp.fns {
                    let ix = push_fn(sym, fi, Some(&imp.type_name), fd, in_test || imp.cfg_test);
                    sym.by_owner
                        .entry((imp.type_name.clone(), fd.name.clone()))
                        .or_insert(ix);
                    sym.methods_by_name.entry(&fd.name).or_default().push(ix);
                }
            }
            Item::Mod(m) => index_items(sym, fi, &m.items, in_test || m.cfg_test),
            _ => {}
        }
    }
}

fn push_fn<'a>(
    sym: &mut Symbols<'a>,
    fi: usize,
    owner: Option<&'a str>,
    fd: &'a FnDef,
    in_test: bool,
) -> usize {
    sym.fns.push(FnInfo {
        file: fi,
        owner,
        def: fd,
        is_test: fd.is_test || in_test,
        param_tys: Vec::new(),
        ret_ty: Ty::Unknown,
    });
    sym.fns.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::tokenizer::tokenize;

    fn build(srcs: &[(&str, &str)]) -> Vec<ParsedFile> {
        srcs.iter()
            .map(|(path, src)| parse_file(path, "test", &tokenize(src)))
            .collect()
    }

    #[test]
    fn resolves_methods_by_owner() {
        let files = build(&[(
            "a.rs",
            "pub struct Store { map: FxHashMap<u32, f64> }\n\
             impl Store { pub fn total(&self) -> f64 { 0.0 } }",
        )]);
        let sym = Symbols::build(&files);
        let ix = sym
            .resolve_method(&Ty::named("Store"), "total")
            .expect("resolved");
        assert_eq!(sym.fns[ix].qual_name(), "Store::total");
        assert!(sym.fns[ix].ret_ty.is_float());
        assert_eq!(sym.fns[ix].param_tys[0].head(), Some("Store"));
    }

    #[test]
    fn unique_name_fallback_skips_common_methods() {
        let files = build(&[(
            "a.rs",
            "impl Foo { pub fn exotic_helper(&self) {} pub fn get(&self) {} }",
        )]);
        let sym = Symbols::build(&files);
        assert!(sym.resolve_method(&Ty::Unknown, "exotic_helper").is_some());
        assert!(sym.resolve_method(&Ty::Unknown, "get").is_none());
    }

    #[test]
    fn resolves_associated_and_free_calls() {
        let files = build(&[(
            "a.rs",
            "pub fn helper() -> u32 { 3 }\nimpl Foo { pub fn new() -> Self { Foo } }",
        )]);
        let sym = Symbols::build(&files);
        let segs = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(sym.resolve_call(&segs(&["helper"])).is_some());
        assert!(sym.resolve_call(&segs(&["Foo", "new"])).is_some());
        assert!(sym.resolve_call(&segs(&["Foo", "missing"])).is_none());
        let new_ix = sym.resolve_call(&segs(&["Foo", "new"])).expect("new");
        assert_eq!(sym.fns[new_ix].ret_ty.head(), Some("Foo"));
    }

    #[test]
    fn field_types_resolve_through_structs() {
        let files = build(&[(
            "a.rs",
            "pub struct S { pub weights: FxHashMap<TermId, f64> }",
        )]);
        let sym = Symbols::build(&files);
        assert!(sym.field_ty("S", "weights").is_unordered_container());
        assert_eq!(sym.field_ty("S", "missing"), Ty::Unknown);
    }
}
