//! Breadth-first traversal: distances and k-hop neighbourhoods.

use crate::graph::{NodeIx, SchemaGraph};
use std::collections::VecDeque;

/// Distance marker for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Unweighted shortest-path distances from `source` to every node
/// ([`UNREACHABLE`] where no path exists).
pub fn bfs_distances(g: &SchemaGraph, source: NodeIx) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbours(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes within `radius` hops of `source`, excluding `source` itself,
/// in ascending index order. Radius 0 yields the empty set; radius 1 the
/// direct neighbours — the per-snapshot neighbourhood of the paper's
/// §II(b), generalised to any radius.
pub fn k_hop_neighbourhood(g: &SchemaGraph, source: NodeIx, radius: u32) -> Vec<NodeIx> {
    if radius == 0 {
        return Vec::new();
    }
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    let mut out = Vec::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du == radius {
            continue;
        }
        for &v in g.neighbours(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                out.push(v);
                queue.push_back(v);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Graph eccentricity helpers: the largest finite BFS distance from
/// `source`, or `None` if `source` reaches nothing.
pub fn eccentricity(g: &SchemaGraph, source: NodeIx) -> Option<u32> {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != UNREACHABLE && d > 0)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::TermId;

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    /// 0-1-2-3 path plus isolate 4.
    fn path() -> SchemaGraph {
        SchemaGraph::from_edges(
            vec![t(0), t(1), t(2), t(3), t(4)],
            &[(t(0), t(1)), (t(1), t(2)), (t(2), t(3))],
        )
    }

    #[test]
    fn distances_along_path() {
        let g = path();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, UNREACHABLE]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, UNREACHABLE]);
    }

    #[test]
    fn isolate_reaches_nothing() {
        let g = path();
        let d = bfs_distances(&g, 4);
        assert_eq!(d[4], 0);
        assert!(d[..4].iter().all(|&x| x == UNREACHABLE));
        assert_eq!(eccentricity(&g, 4), None);
    }

    #[test]
    fn k_hop_radii() {
        let g = path();
        assert!(k_hop_neighbourhood(&g, 1, 0).is_empty());
        assert_eq!(k_hop_neighbourhood(&g, 1, 1), vec![0, 2]);
        assert_eq!(k_hop_neighbourhood(&g, 1, 2), vec![0, 2, 3]);
        assert_eq!(k_hop_neighbourhood(&g, 1, 9), vec![0, 2, 3]);
    }

    #[test]
    fn k_hop_excludes_source() {
        let g = path();
        for r in 0..4 {
            assert!(!k_hop_neighbourhood(&g, 2, r).contains(&2));
        }
    }

    #[test]
    fn eccentricity_of_path_ends() {
        let g = path();
        assert_eq!(eccentricity(&g, 0), Some(3));
        assert_eq!(eccentricity(&g, 1), Some(2));
    }

    #[test]
    fn cycle_distances_wrap_both_ways() {
        let nodes: Vec<TermId> = (0..6).map(t).collect();
        let edges: Vec<(TermId, TermId)> = (0..6).map(|i| (t(i), t((i + 1) % 6))).collect();
        let g = SchemaGraph::from_edges(nodes, &edges);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }
}
