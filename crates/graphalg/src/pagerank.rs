//! Personalised PageRank by power iteration.
//!
//! Used by the recommender's relatedness scoring (§III(a)): a user's
//! interest weights seed the teleport vector, and the stationary
//! distribution spreads that interest over the schema graph, so classes
//! *near* explicitly-interesting classes also score.

use crate::graph::{NodeIx, SchemaGraph};

/// Configuration for [`personalised_pagerank`].
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Probability of following an edge (vs teleporting). Typically 0.85.
    pub damping: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// L1 convergence threshold.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// Personalised PageRank with teleport mass concentrated on `seeds`
/// (`(node, weight)` pairs; weights are normalised internally). With an
/// empty seed set this degenerates to uniform PageRank. Dangling mass is
/// redistributed to the teleport vector. Returns a probability vector.
pub fn personalised_pagerank(
    g: &SchemaGraph,
    seeds: &[(NodeIx, f64)],
    config: PageRankConfig,
) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    // Build the (normalised) teleport vector.
    let mut teleport = vec![0.0; n];
    let positive: f64 = seeds.iter().map(|&(_, w)| w.max(0.0)).sum();
    if positive > 0.0 {
        for &(node, w) in seeds {
            if (node as usize) < n && w > 0.0 {
                teleport[node as usize] += w / positive;
            }
        }
        // Seeds may reference out-of-range nodes; renormalise what landed.
        let landed: f64 = teleport.iter().sum();
        if landed > 0.0 {
            for t in &mut teleport {
                *t /= landed;
            }
        } else {
            teleport.fill(1.0 / n as f64);
        }
    } else {
        teleport.fill(1.0 / n as f64);
    }

    let mut rank = teleport.clone();
    let mut next = vec![0.0; n];
    for _ in 0..config.max_iterations {
        // Edge-following mass.
        next.fill(0.0);
        let mut dangling = 0.0;
        for (u, &mass) in rank.iter().enumerate() {
            let d = g.degree(u as NodeIx);
            if d == 0 {
                dangling += mass;
                continue;
            }
            let share = mass / d as f64;
            for &v in g.neighbours(u as NodeIx) {
                next[v as usize] += share;
            }
        }
        let mut l1 = 0.0;
        for v in 0..n {
            let value =
                (1.0 - config.damping) * teleport[v] + config.damping * (next[v] + dangling * teleport[v]);
            l1 += (value - rank[v]).abs();
            next[v] = value;
        }
        std::mem::swap(&mut rank, &mut next);
        if l1 < config.tolerance {
            break;
        }
    }
    rank
}

/// Uniform PageRank (no personalisation).
pub fn pagerank(g: &SchemaGraph, config: PageRankConfig) -> Vec<f64> {
    personalised_pagerank(g, &[], config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::TermId;

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    fn graph(n: u32, edges: &[(u32, u32)]) -> SchemaGraph {
        SchemaGraph::from_edges(
            (0..n).map(t).collect(),
            &edges.iter().map(|&(a, b)| (t(a), t(b))).collect::<Vec<_>>(),
        )
    }

    fn sum(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn distribution_sums_to_one() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let r = pagerank(&g, PageRankConfig::default());
        assert!((sum(&r) - 1.0).abs() < 1e-6, "sum = {}", sum(&r));
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = pagerank(&g, PageRankConfig::default());
        for v in &r {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let r = pagerank(&g, PageRankConfig::default());
        for leaf in 1..5 {
            assert!(r[0] > r[leaf]);
        }
    }

    #[test]
    fn personalisation_biases_towards_seed() {
        // Path 0-1-2-3-4-5; seed on 0 must outrank the far end.
        let g = graph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let r = personalised_pagerank(&g, &[(0, 1.0)], PageRankConfig::default());
        assert!(r[0] > r[5]);
        assert!(r[1] > r[4], "mass decays with distance from the seed");
        assert!((sum(&r) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dangling_nodes_do_not_leak_mass() {
        let g = graph(3, &[(0, 1)]); // node 2 isolated (dangling)
        let r = pagerank(&g, PageRankConfig::default());
        assert!((sum(&r) - 1.0).abs() < 1e-6);
        assert!(r[2] > 0.0, "teleport keeps isolated nodes alive");
    }

    #[test]
    fn negative_and_foreign_seeds_ignored() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let r = personalised_pagerank(
            &g,
            &[(0, -5.0), (99, 3.0), (1, 1.0)],
            PageRankConfig::default(),
        );
        assert!((sum(&r) - 1.0).abs() < 1e-6);
        assert!(r[1] > r[0] && r[1] > r[2], "only the valid seed biases");
    }

    #[test]
    fn all_seed_mass_out_of_range_degenerates_to_uniform_teleport() {
        let g = graph(2, &[(0, 1)]);
        let biased = personalised_pagerank(&g, &[(7, 1.0)], PageRankConfig::default());
        let uniform = pagerank(&g, PageRankConfig::default());
        for (b, u) in biased.iter().zip(&uniform) {
            assert!((b - u).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph_is_empty() {
        let g = graph(0, &[]);
        assert!(pagerank(&g, PageRankConfig::default()).is_empty());
    }
}
