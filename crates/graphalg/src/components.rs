//! Connected components via union–find.

use crate::graph::{NodeIx, SchemaGraph};

/// Disjoint-set forest with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// `true` if `a` and `b` share a set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: u32) -> usize {
        let root = self.find(x);
        self.size[root as usize] as usize
    }
}

/// Component labelling of a graph.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component label per node (dense, 0-based).
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Size of each component, indexed by label.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Size of the largest component (0 for the empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Compute connected components of `g`.
pub fn connected_components(g: &SchemaGraph) -> Components {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    for u in g.node_indexes() {
        for &v in g.neighbours(u) {
            uf.union(u, v);
        }
    }
    let mut label_of_root = vec![u32::MAX; n];
    let mut labels = vec![0u32; n];
    let mut sizes = Vec::new();
    for u in 0..n as NodeIx {
        let root = uf.find(u);
        if label_of_root[root as usize] == u32::MAX {
            label_of_root[root as usize] = sizes.len() as u32;
            sizes.push(0);
        }
        let label = label_of_root[root as usize];
        labels[u as usize] = label;
        sizes[label as usize] += 1;
    }
    Components {
        labels,
        count: sizes.len(),
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::TermId;

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    fn graph(n: u32, edges: &[(u32, u32)]) -> SchemaGraph {
        SchemaGraph::from_edges(
            (0..n).map(t).collect(),
            &edges.iter().map(|&(a, b)| (t(a), t(b))).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn union_find_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "repeat union is a no-op");
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 2);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.size_of(0), 2);
        uf.union(0, 2);
        assert_eq!(uf.size_of(3), 4);
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn components_of_split_graph() {
        let g = graph(6, &[(0, 1), (1, 2), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.largest(), 3);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[1], c.labels[2]);
        assert_eq!(c.labels[3], c.labels[4]);
        assert_ne!(c.labels[0], c.labels[3]);
        assert_ne!(c.labels[0], c.labels[5]);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn fully_connected_graph_is_one_component() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert_eq!(c.largest(), 4);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = graph(0, &[]);
        let c = connected_components(&g);
        assert_eq!(c.count, 0);
        assert_eq!(c.largest(), 0);
    }

    #[test]
    fn edgeless_graph_is_all_singletons() {
        let g = graph(5, &[]);
        let c = connected_components(&g);
        assert_eq!(c.count, 5);
        assert_eq!(c.largest(), 1);
    }
}
