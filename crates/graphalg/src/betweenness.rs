//! Betweenness centrality (Brandes' algorithm), serial and parallel.
//!
//! The paper's §II(c): "the Betweenness of a class/node counts the number
//! of the shortest paths from all nodes to all others that pass through
//! that node". Brandes' accumulation computes exact betweenness for
//! unweighted graphs in O(V·E); the parallel variant partitions source
//! vertices across threads (each source's single-source pass is
//! independent) and sums the per-thread partial scores.

use crate::graph::{NodeIx, SchemaGraph};
use std::collections::VecDeque;

/// Exact betweenness centrality of every node (undirected convention:
/// each unordered pair counted once).
pub fn betweenness(g: &SchemaGraph) -> Vec<f64> {
    let mut scores = vec![0.0; g.node_count()];
    let mut workspace = Workspace::new(g.node_count());
    for s in g.node_indexes() {
        accumulate_from_source(g, s, &mut workspace, &mut scores);
    }
    for score in &mut scores {
        *score /= 2.0;
    }
    scores
}

/// Parallel betweenness over `threads` worker threads (values identical
/// to [`betweenness`] up to floating-point summation order).
pub fn betweenness_parallel(g: &SchemaGraph, threads: usize) -> Vec<f64> {
    let n = g.node_count();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n < 64 {
        return betweenness(g);
    }
    let chunk = n.div_ceil(threads);
    let partials: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let lo = worker * chunk;
            let hi = ((worker + 1) * chunk).min(n);
            handles.push(scope.spawn(move || {
                let mut scores = vec![0.0; n];
                let mut workspace = Workspace::new(n);
                for s in lo..hi {
                    accumulate_from_source(g, s as NodeIx, &mut workspace, &mut scores);
                }
                scores
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut scores = vec![0.0; n];
    for partial in partials {
        for (acc, x) in scores.iter_mut().zip(partial) {
            *acc += x;
        }
    }
    for score in &mut scores {
        *score /= 2.0;
    }
    scores
}

/// Reference O(V³)-ish implementation counting shortest paths through
/// each vertex directly. Exposed for differential testing only.
#[doc(hidden)]
pub fn betweenness_reference(g: &SchemaGraph) -> Vec<f64> {
    let n = g.node_count();
    let mut scores = vec![0.0; n];
    // For every ordered pair (s, t), count shortest s→t paths and how many
    // pass through each intermediate v, via path DP over BFS layers.
    for s in 0..n as NodeIx {
        let (dist, sigma) = bfs_counts(g, s);
        for t in 0..n as NodeIx {
            if t == s || dist[t as usize] == u32::MAX {
                continue;
            }
            // share of s-t shortest paths through v =
            //   sigma_s(v) * sigma_t(v) / sigma_s(t)  when
            //   d_s(v) + d_t(v) == d_s(t)
            let (dist_t, sigma_t) = bfs_counts(g, t);
            for v in 0..n as NodeIx {
                if v == s || v == t {
                    continue;
                }
                if dist[v as usize] != u32::MAX
                    && dist_t[v as usize] != u32::MAX
                    && dist[v as usize] + dist_t[v as usize] == dist[t as usize]
                {
                    scores[v as usize] +=
                        (sigma[v as usize] * sigma_t[v as usize]) / sigma[t as usize];
                }
            }
        }
    }
    for score in &mut scores {
        *score /= 2.0; // unordered pairs
    }
    scores
}

fn bfs_counts(g: &SchemaGraph, source: NodeIx) -> (Vec<u32>, Vec<f64>) {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut sigma = vec![0.0; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    sigma[source as usize] = 1.0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbours(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
            if dist[v as usize] == du + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }
    (dist, sigma)
}

/// Reusable per-source scratch buffers for Brandes' accumulation.
struct Workspace {
    dist: Vec<i64>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    preds: Vec<Vec<NodeIx>>,
    stack: Vec<NodeIx>,
    queue: VecDeque<NodeIx>,
}

impl Workspace {
    fn new(n: usize) -> Workspace {
        Workspace {
            dist: vec![-1; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            preds: vec![Vec::new(); n],
            stack: Vec::with_capacity(n),
            queue: VecDeque::new(),
        }
    }

    fn reset(&mut self) {
        self.dist.fill(-1);
        self.sigma.fill(0.0);
        self.delta.fill(0.0);
        for p in &mut self.preds {
            p.clear();
        }
        self.stack.clear();
        self.queue.clear();
    }
}

fn accumulate_from_source(
    g: &SchemaGraph,
    s: NodeIx,
    w: &mut Workspace,
    scores: &mut [f64],
) {
    w.reset();
    w.dist[s as usize] = 0;
    w.sigma[s as usize] = 1.0;
    w.queue.push_back(s);
    while let Some(u) = w.queue.pop_front() {
        w.stack.push(u);
        let du = w.dist[u as usize];
        for &v in g.neighbours(u) {
            if w.dist[v as usize] < 0 {
                w.dist[v as usize] = du + 1;
                w.queue.push_back(v);
            }
            if w.dist[v as usize] == du + 1 {
                w.sigma[v as usize] += w.sigma[u as usize];
                w.preds[v as usize].push(u);
            }
        }
    }
    while let Some(u) = w.stack.pop() {
        let coeff = (1.0 + w.delta[u as usize]) / w.sigma[u as usize];
        // preds[u] is drained via index loop to sidestep aliasing.
        for ix in 0..w.preds[u as usize].len() {
            let p = w.preds[u as usize][ix];
            w.delta[p as usize] += w.sigma[p as usize] * coeff;
        }
        if u != s {
            scores[u as usize] += w.delta[u as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::TermId;

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    fn graph(n: u32, edges: &[(u32, u32)]) -> SchemaGraph {
        SchemaGraph::from_edges(
            (0..n).map(t).collect(),
            &edges.iter().map(|&(a, b)| (t(a), t(b))).collect::<Vec<_>>(),
        )
    }

    fn assert_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (ix, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < 1e-9, "node {ix}: got {g}, want {w}");
        }
    }

    #[test]
    fn path_graph_centres_dominate() {
        // 0-1-2-3-4: node 2 lies on 0-3,0-4,1-3,1-4 ... exact values:
        // B(0)=B(4)=0, B(1)=B(3)=3, B(2)=4.
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_close(&betweenness(&g), &[0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_graph_hub_takes_all() {
        // Hub 0 with 4 leaves: B(hub) = C(4,2) = 6.
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_close(&betweenness(&g), &[6.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn cycle_spreads_evenly() {
        // C5: every node has equal betweenness 1.0 (two antipodal-ish
        // pairs route around each node once each: exact value 1.0).
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let b = betweenness(&g);
        for v in &b {
            assert!((v - b[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn complete_graph_has_zero_betweenness() {
        let edges: Vec<(u32, u32)> = (0..4)
            .flat_map(|i| ((i + 1)..4).map(move |j| (i, j)))
            .collect();
        let g = graph(4, &edges);
        assert_close(&betweenness(&g), &[0.0; 4]);
    }

    #[test]
    fn disconnected_components_independent() {
        let g = graph(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        assert_close(&betweenness(&g), &[0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn equal_shortest_paths_split_credit() {
        // Diamond: 0-1, 0-2, 1-3, 2-3. Two shortest 0→3 paths; nodes 1
        // and 2 each get 0.5.
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_close(&betweenness(&g), &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn brandes_matches_reference_on_random_graphs() {
        // Deterministic pseudo-random graphs via a tiny LCG.
        let mut state = 0x2545F491u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..5 {
            let n = 8 + (next() % 8);
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if next() % 3 == 0 {
                        edges.push((i, j));
                    }
                }
            }
            let g = graph(n, &edges);
            let fast = betweenness(&g);
            let slow = betweenness_reference(&g);
            for (ix, (f, s)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    (f - s).abs() < 1e-6,
                    "trial {trial}, node {ix}: brandes {f} vs reference {s}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        // Build a graph large enough to cross the parallel threshold.
        let n = 80u32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend((0..n / 4).map(|i| (i, n - 1 - i)));
        let g = graph(n, &edges);
        let serial = betweenness(&g);
        let parallel = betweenness_parallel(&g, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert!((s - p).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = graph(0, &[]);
        assert!(betweenness(&empty).is_empty());
        let single = graph(1, &[]);
        assert_close(&betweenness(&single), &[0.0]);
    }
}
