//! Bridging centrality (Hwang et al.): betweenness × bridging coefficient.
//!
//! The paper's §II(c): "a node with high Bridging Centrality is a node
//! connecting densely connected components in a graph". The bridging
//! coefficient of `v` is `(1/d(v)) / Σ_{w ∈ N(v)} 1/d(w)`; multiplying by
//! betweenness rewards nodes that both carry many shortest paths *and*
//! sit between (rather than inside) dense regions.

use crate::betweenness::betweenness;
use crate::graph::{NodeIx, SchemaGraph};

/// The bridging coefficient of every node. Nodes of degree 0 (or whose
/// neighbours all have degree 0, which cannot happen in an undirected
/// graph) get coefficient 0.
pub fn bridging_coefficient(g: &SchemaGraph) -> Vec<f64> {
    g.node_indexes()
        .map(|u| node_bridging_coefficient(g, u))
        .collect()
}

/// The bridging coefficient of one node.
pub fn node_bridging_coefficient(g: &SchemaGraph, u: NodeIx) -> f64 {
    let d = g.degree(u);
    if d == 0 {
        return 0.0;
    }
    let inv_sum: f64 = g
        .neighbours(u)
        .iter()
        .map(|&v| {
            let dv = g.degree(v);
            debug_assert!(dv > 0, "neighbour of a node has degree >= 1");
            1.0 / dv as f64
        })
        .sum();
    if inv_sum == 0.0 {
        0.0
    } else {
        (1.0 / d as f64) / inv_sum
    }
}

/// Bridging centrality: element-wise product of betweenness and bridging
/// coefficient.
pub fn bridging_centrality(g: &SchemaGraph) -> Vec<f64> {
    bridging_centrality_with(g, &betweenness(g))
}

/// Bridging centrality reusing a precomputed betweenness vector (must
/// have one entry per node).
pub fn bridging_centrality_with(g: &SchemaGraph, betweenness: &[f64]) -> Vec<f64> {
    assert_eq!(
        betweenness.len(),
        g.node_count(),
        "betweenness vector length must match node count"
    );
    bridging_coefficient(g)
        .into_iter()
        .zip(betweenness)
        .map(|(coef, b)| coef * b)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::TermId;

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    fn graph(n: u32, edges: &[(u32, u32)]) -> SchemaGraph {
        SchemaGraph::from_edges(
            (0..n).map(t).collect(),
            &edges.iter().map(|&(a, b)| (t(a), t(b))).collect::<Vec<_>>(),
        )
    }

    /// Two triangles joined by a bridge node:
    /// 0-1-2 triangle, 4-5-6 triangle, 3 connects 2 and 4.
    fn barbell() -> SchemaGraph {
        graph(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (4, 6),
            ],
        )
    }

    #[test]
    fn bridge_node_has_highest_bridging_centrality() {
        let g = barbell();
        let bc = bridging_centrality(&g);
        let best = (0..7).max_by(|&a, &b| bc[a].total_cmp(&bc[b])).unwrap();
        assert_eq!(best, 3, "the barbell bridge must win: {bc:?}");
    }

    #[test]
    fn coefficient_of_path_centre() {
        // Path 0-1-2: d(1)=2, neighbours have degree 1 each.
        // coef(1) = (1/2) / (1 + 1) = 0.25.
        let g = graph(3, &[(0, 1), (1, 2)]);
        let c = bridging_coefficient(&g);
        assert!((c[1] - 0.25).abs() < 1e-12);
        // Ends: d=1, neighbour degree 2 → (1/1)/(1/2) = 2.
        assert!((c[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_node_coefficient_zero() {
        let g = graph(2, &[]);
        assert_eq!(bridging_coefficient(&g), vec![0.0, 0.0]);
        assert_eq!(bridging_centrality(&g), vec![0.0, 0.0]);
    }

    #[test]
    fn with_variant_matches_direct() {
        let g = barbell();
        let direct = bridging_centrality(&g);
        let reused = bridging_centrality_with(&g, &betweenness(&g));
        assert_eq!(direct, reused);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn with_variant_rejects_mismatched_vector() {
        let g = barbell();
        let _ = bridging_centrality_with(&g, &[1.0, 2.0]);
    }

    #[test]
    fn regular_graph_has_uniform_coefficient() {
        // C4 cycle: all degrees 2 → coef = (1/2)/(1/2+1/2) = 0.5 for all.
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        for c in bridging_coefficient(&g) {
            assert!((c - 0.5).abs() < 1e-12);
        }
    }
}
