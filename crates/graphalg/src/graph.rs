//! Compact undirected graph over schema elements.

use evorec_kb::{FxHashMap, SchemaView, TermId};

/// Node index inside a [`SchemaGraph`] (dense, `u32`).
pub type NodeIx = u32;

/// An undirected graph whose nodes are schema terms (classes).
///
/// Built once per snapshot from a
/// [`SchemaView`](evorec_kb::SchemaView) and consumed by the
/// structural measures (betweenness, bridging centrality) of the paper's
/// §II(c). Node indexes are dense and deterministic (ascending term id),
/// so centrality vectors from two versions of the same knowledge base can
/// be joined by term.
#[derive(Clone, Debug, Default)]
pub struct SchemaGraph {
    nodes: Vec<TermId>,
    index: FxHashMap<TermId, NodeIx>,
    adj: Vec<Vec<NodeIx>>,
}

impl SchemaGraph {
    /// Build the class graph of a schema view: one node per class, one
    /// undirected edge per subsumption or property connection.
    pub fn from_schema_view(view: &SchemaView) -> SchemaGraph {
        let mut nodes: Vec<TermId> = view.classes().iter().copied().collect();
        nodes.sort_unstable();
        let mut g = SchemaGraph::with_nodes(nodes);
        for u in 0..g.nodes.len() {
            let term = g.nodes[u];
            for neighbour in view.adjacent_classes(term) {
                if let Some(&v) = g.index.get(&neighbour) {
                    g.adj[u].push(v);
                }
            }
        }
        for list in &mut g.adj {
            list.sort_unstable();
            list.dedup();
        }
        // adjacent_classes is symmetric, so adj is already undirected.
        g
    }

    /// Build from an explicit node set (sorted internally) and edge list.
    /// Edges mentioning unknown terms are ignored; self-loops dropped.
    pub fn from_edges(nodes: Vec<TermId>, edges: &[(TermId, TermId)]) -> SchemaGraph {
        let mut nodes = nodes;
        nodes.sort_unstable();
        nodes.dedup();
        let mut g = SchemaGraph::with_nodes(nodes);
        for &(a, b) in edges {
            if a == b {
                continue;
            }
            let (Some(&u), Some(&v)) = (g.index.get(&a), g.index.get(&b)) else {
                continue;
            };
            g.adj[u as usize].push(v);
            g.adj[v as usize].push(u);
        }
        for list in &mut g.adj {
            list.sort_unstable();
            list.dedup();
        }
        g
    }

    fn with_nodes(nodes: Vec<TermId>) -> SchemaGraph {
        let mut index = FxHashMap::with_capacity_and_hasher(nodes.len(), Default::default());
        for (ix, &term) in nodes.iter().enumerate() {
            index.insert(term, ix as NodeIx);
        }
        let adj = vec![Vec::new(); nodes.len()];
        SchemaGraph { nodes, index, adj }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// The term at node `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn term(&self, u: NodeIx) -> TermId {
        self.nodes[u as usize]
    }

    /// The node index of `term`, if present.
    pub fn node_of(&self, term: TermId) -> Option<NodeIx> {
        self.index.get(&term).copied()
    }

    /// Neighbours of node `u` (sorted, deduplicated).
    pub fn neighbours(&self, u: NodeIx) -> &[NodeIx] {
        &self.adj[u as usize]
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: NodeIx) -> usize {
        self.adj[u as usize].len()
    }

    /// All node indexes.
    pub fn node_indexes(&self) -> impl Iterator<Item = NodeIx> {
        0..self.nodes.len() as NodeIx
    }

    /// All node terms in index order.
    pub fn terms(&self) -> &[TermId] {
        &self.nodes
    }

    /// `(min, mean, max)` degree; zeros for the empty graph.
    pub fn degree_stats(&self) -> (usize, f64, usize) {
        if self.nodes.is_empty() {
            return (0, 0.0, 0);
        }
        let degrees: Vec<usize> = self.adj.iter().map(Vec::len).collect();
        let min = degrees.iter().copied().min().unwrap_or(0);
        let max = degrees.iter().copied().max().unwrap_or(0);
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        (min, mean, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    /// Path graph 0-1-2-3 plus isolated node 4.
    pub(crate) fn path_with_isolate() -> SchemaGraph {
        SchemaGraph::from_edges(
            vec![t(0), t(1), t(2), t(3), t(4)],
            &[(t(0), t(1)), (t(1), t(2)), (t(2), t(3))],
        )
    }

    #[test]
    fn from_edges_builds_undirected_adjacency() {
        let g = path_with_isolate();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbours(1), &[0, 2]);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn duplicate_edges_and_self_loops_dropped() {
        let g = SchemaGraph::from_edges(
            vec![t(0), t(1)],
            &[(t(0), t(1)), (t(1), t(0)), (t(0), t(0))],
        );
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn unknown_endpoints_ignored() {
        let g = SchemaGraph::from_edges(vec![t(0), t(1)], &[(t(0), t(9))]);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn node_term_mapping_is_sorted_dense() {
        let g = SchemaGraph::from_edges(vec![t(30), t(10), t(20)], &[(t(10), t(30))]);
        assert_eq!(g.terms(), &[t(10), t(20), t(30)]);
        assert_eq!(g.node_of(t(20)), Some(1));
        assert_eq!(g.term(0), t(10));
        assert_eq!(g.node_of(t(99)), None);
    }

    #[test]
    fn degree_stats_reports_extremes() {
        let g = path_with_isolate();
        let (min, mean, max) = g.degree_stats();
        assert_eq!(min, 0);
        assert_eq!(max, 2);
        assert!((mean - 6.0 / 5.0).abs() < 1e-12);
        let empty = SchemaGraph::default();
        assert_eq!(empty.degree_stats(), (0, 0.0, 0));
    }

    #[test]
    fn from_schema_view_mirrors_adjacency() {
        use evorec_kb::{Graph, Triple};
        let mut g = Graph::new();
        let a = g.iri("http://x/A");
        let b = g.iri("http://x/B");
        let c = g.iri("http://x/C");
        let v = *g.vocab();
        g.insert(Triple::new(a, v.rdfs_subclassof, b));
        g.insert(Triple::new(c, v.rdf_type, v.rdfs_class));
        let view = g.schema();
        let sg = SchemaGraph::from_schema_view(&view);
        assert_eq!(sg.node_count(), 3);
        assert_eq!(sg.edge_count(), 1);
        let ua = sg.node_of(a).unwrap();
        let ub = sg.node_of(b).unwrap();
        assert_eq!(sg.neighbours(ua), &[ub]);
        let uc = sg.node_of(c).unwrap();
        assert_eq!(sg.degree(uc), 0);
    }
}
