//! # evorec-graph — graph analytics over schema graphs
//!
//! The structural-measure substrate of the evolution-measure recommender
//! (ICDE'17 §II(c)). Provides:
//!
//! - [`SchemaGraph`] — a compact undirected class graph with
//!   deterministic dense node indexes;
//! - [`bfs_distances`] / [`k_hop_neighbourhood`] — traversal primitives
//!   behind the neighbourhood measures of §II(b);
//! - [`betweenness`] / [`betweenness_parallel`] — exact Brandes
//!   betweenness (the §II(c) Betweenness measure), with source
//!   partitioning across scoped threads;
//! - [`bridging_centrality`] — Hwang-style bridging centrality
//!   (the §II(c) Bridging Centrality measure);
//! - [`personalised_pagerank`] — spreading activation for the
//!   recommender's relatedness scoring (§III(a));
//! - [`connected_components`] / [`UnionFind`] — topology diagnostics.

#![warn(missing_docs)]

mod betweenness;
mod bfs;
mod bridging;
mod components;
mod graph;
mod pagerank;

pub use betweenness::{betweenness, betweenness_parallel, betweenness_reference};
pub use bfs::{bfs_distances, eccentricity, k_hop_neighbourhood, UNREACHABLE};
pub use bridging::{
    bridging_centrality, bridging_centrality_with, bridging_coefficient,
    node_bridging_coefficient,
};
pub use components::{connected_components, Components, UnionFind};
pub use graph::{NodeIx, SchemaGraph};
pub use pagerank::{pagerank, personalised_pagerank, PageRankConfig};
