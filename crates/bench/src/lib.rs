//! # evorec-bench — the experiment harness
//!
//! Regenerates every table/figure of EXPERIMENTS.md. The paper is a
//! vision paper without an evaluation section, so each experiment
//! operationalises a sentence-level claim (see DESIGN.md §4):
//!
//! | Id | Claim | Generator |
//! |----|-------|-----------|
//! | E1 | deltas bury humans; measures give overviews | [`experiments::e1`] |
//! | E2 | measures are feasible at KB scale | [`experiments::e2`] |
//! | E3 | measures are complementary viewpoints | [`experiments::e3`] |
//! | E4 | importance shift beats raw counting | [`experiments::e4`] |
//! | E5 | relatedness personalisation pays | [`experiments::e5`] |
//! | E6 | diversity is a set property (MMR sweep) | [`experiments::e6`] |
//! | E7 | group fairness strategies differ | [`experiments::e7`] |
//! | E8 | anonymity/utility trade-off | [`experiments::e8`] |
//! | E9 | transparency + archiving overheads | [`experiments::e9`] |
//! | E10 | neighbourhood radius ablation | [`experiments::e10`] |
//!
//! Run all of them with `cargo run -p evorec-bench --bin experiments
//! --release`, or a subset: `… --bin experiments e4 e8`.
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
