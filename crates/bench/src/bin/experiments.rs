//! Regenerate the EXPERIMENTS.md tables.
//!
//! Usage:
//! ```text
//! cargo run -p evorec-bench --bin experiments --release            # all
//! cargo run -p evorec-bench --bin experiments --release -- e4 e8  # subset
//! ```

use std::time::Instant;

fn main() {
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let run_all = requested.is_empty() || requested.iter().any(|a| a == "all");
    let started = Instant::now();
    let mut ran = 0;
    for (id, generate) in evorec_bench::experiments::all() {
        if run_all || requested.iter().any(|a| a == id) {
            let t0 = Instant::now();
            let table = generate();
            table.print();
            eprintln!("[{id} took {:.2}s]\n", t0.elapsed().as_secs_f64());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {requested:?}; known: e1..e10 or 'all'");
        std::process::exit(2);
    }
    eprintln!("ran {ran} experiment(s) in {:.2}s", started.elapsed().as_secs_f64());
}
