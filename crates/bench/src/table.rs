//! Minimal fixed-width table rendering for experiment output.

/// A printable experiment table: header row plus data rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with fixed-width columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (ix, cell) in row.iter().enumerate() {
                widths[ix] = widths[ix].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |\n", joined.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", rule.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format a `Duration` as fractional milliseconds.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| alpha |     1 |"));
        assert!(s.contains("|     b | 22222 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(pct(0.5), "50.0%");
        assert!(ms(std::time::Duration::from_millis(3)).starts_with("3.00"));
    }
}
