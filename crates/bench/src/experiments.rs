//! The E1–E10 experiment suite.
//!
//! Each function regenerates one table/figure of EXPERIMENTS.md; the
//! paper (a vision paper) has no tables or figures of its own, so every
//! experiment is pinned to a sentence-level claim instead — see
//! DESIGN.md §4 for the index. All experiments are deterministic.

use crate::table::{f1, f3, ms, pct, Table};
use evorec_core::{
    anonymity::anonymise, category_coverage, fairness_report, intra_set_distance,
    item_relatedness, relatedness::expansion_config, select_for_group, select_mmr,
    swap_refine, set_objective, DistanceMatrix, DistanceWeights, ExpandedProfile,
    GroupAggregation, Recommender, RelevanceMatrix, UserId, UserProfile,
};
use evorec_kb::TermId;
use evorec_measures::{
    similarity, EvolutionContext, EvolutionMeasure, MeasureRegistry, NeighbourhoodChangeCount,
};
use evorec_synth::workload::{clinical, curated_kb, social_feed};
use evorec_synth::{generate_population, GeneratedKb, PopulationConfig, Scenario, SchemaConfig};
use evorec_versioning::{Archive, ArchivePolicy, Justification, ProvenanceLedger};
use std::time::{Duration, Instant};

fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

fn hotspot_kb(classes: usize, seed: u64) -> (GeneratedKb, Vec<TermId>) {
    let mut kb = GeneratedKb::generate(SchemaConfig {
        classes,
        properties: (classes / 5).max(2),
        instances: classes * 5,
        instance_zipf: 1.0,
        links_per_instance: 2.0,
        seed,
    });
    let outcome = kb.evolve(
        &Scenario::Hotspot {
            focus_classes: 3,
            rate: 0.15,
            concentration: 0.9,
        },
        seed ^ 0xbeef,
    );
    (kb, outcome.focus_classes)
}

/// E1 — "Deltas vs overviews" (§I: deltas "include loads of
/// information"; measures "offer high-level overviews").
pub fn e1() -> Table {
    let mut table = Table::new(
        "E1: raw delta size vs top-10 measure overview",
        &[
            "classes", "base triples", "delta triples", "hl changes", "overview items",
            "compression",
        ],
    );
    for classes in [250usize, 500, 1000, 2000] {
        let world = curated_kb(classes, 1000 + classes as u64);
        let ctx = EvolutionContext::build(&world.kb.store, world.base(), world.head());
        // The overview a human actually reads: the top-10 of ONE
        // recommended measure (vs the full delta they'd read otherwise).
        let overview_items = 10usize.min(ctx.delta.size());
        let compression = ctx.delta.size() as f64 / overview_items.max(1) as f64;
        table.row(vec![
            classes.to_string(),
            world.kb.base_triples().to_string(),
            ctx.delta.size().to_string(),
            ctx.changes.len().to_string(),
            overview_items.to_string(),
            format!("{compression:.0}x"),
        ]);
    }
    table
}

/// E2 — measure computation cost vs knowledge-base size (§II implies
/// feasibility at KB scale).
pub fn e2() -> Table {
    let mut table = Table::new(
        "E2: per-measure wall time vs KB size",
        &["classes", "measure", "time", "scored"],
    );
    for classes in [200usize, 400, 800, 1600, 3200] {
        let (kb, _) = hotspot_kb(classes, 2000 + classes as u64);
        let head = kb.store.head().unwrap();
        for measure_id in [
            "class-change-count",
            "neighbourhood-change-count-r1",
            "betweenness-shift",
            "relevance-shift",
        ] {
            // Fresh context per timing so memoised centralities do not
            // leak work between measures.
            let ctx = EvolutionContext::build(&kb.store, kb.base_version, head);
            let registry = MeasureRegistry::standard();
            let measure = registry
                .get(&measure_id.into())
                .expect("standard measure")
                .clone();
            let (report, elapsed) = timed(|| measure.compute(&ctx));
            table.row(vec![
                classes.to_string(),
                measure_id.to_string(),
                ms(elapsed),
                report.len().to_string(),
            ]);
        }
    }
    table
}

/// E3 — measure complementarity (§II(d)/§III: "different views of
/// evolution … complementary viewpoints").
pub fn e3() -> Table {
    let (kb, _) = hotspot_kb(400, 3003);
    let ctx = EvolutionContext::build(&kb.store, kb.base_version, kb.store.head().unwrap());
    let registry = MeasureRegistry::standard();
    let reports: Vec<_> = registry
        .compute_all(&ctx)
        .into_iter()
        .filter(|r| r.target == evorec_measures::TargetKind::Classes)
        .collect();
    let mut table = Table::new(
        "E3: pairwise rank agreement between class measures (Kendall tau / Jaccard@10)",
        &["measure A", "measure B", "kendall-tau", "jaccard@10"],
    );
    for i in 0..reports.len() {
        for j in (i + 1)..reports.len() {
            let tau = similarity::kendall_tau(&reports[i], &reports[j]);
            let jac = similarity::jaccard_at_k(&reports[i], &reports[j], 10);
            table.row(vec![
                reports[i].measure.to_string(),
                reports[j].measure.to_string(),
                tau.map_or("n/a".into(), f3),
                f3(jac),
            ]);
        }
    }
    table
}

/// E4 — counting vs importance shift (§II(d): the shift "is, in many
/// cases, superior to the simple counting of changes").
pub fn e4() -> Table {
    let mut table = Table::new(
        "E4: rank of the planted contrast under counting vs shift measures",
        &["measure", "rank(moved hub)", "rank(spammed leaf)", "prefers"],
    );
    let mut kb = GeneratedKb::generate(SchemaConfig {
        classes: 300,
        properties: 40,
        instances: 1500,
        instance_zipf: 1.0,
        links_per_instance: 2.0,
        seed: 4004,
    });
    let outcome = kb.evolve(&Scenario::CountVsImpact { spam_instances: 60 }, 4005);
    let (hub, leaf) = outcome.contrast.expect("contrast scenario");
    let ctx = EvolutionContext::build(&kb.store, kb.base_version, outcome.version);
    let registry = MeasureRegistry::standard();
    for id in [
        "class-change-count",
        "neighbourhood-change-count-r1",
        "degree-shift",
        "betweenness-shift",
        "bridging-shift",
        "relevance-shift",
    ] {
        let report = registry.get(&id.into()).unwrap().compute(&ctx);
        let hub_rank = report.rank_of(hub).map_or(usize::MAX, |r| r + 1);
        let leaf_rank = report.rank_of(leaf).map_or(usize::MAX, |r| r + 1);
        table.row(vec![
            id.to_string(),
            hub_rank.to_string(),
            leaf_rank.to_string(),
            if hub_rank < leaf_rank {
                "hub (impact)".into()
            } else {
                "leaf (count)".into()
            },
        ]);
    }
    table
}

/// E5 — relatedness (§III(a): users want "only a small piece of the
/// evolved data, namely the most relevant to their interests").
pub fn e5() -> Table {
    let mut table = Table::new(
        "E5: personalised vs unpersonalised ranking of candidate items",
        &["users", "ranking", "precision@5", "ndcg@5"],
    );
    let (kb, _) = hotspot_kb(300, 5005);
    let ctx = EvolutionContext::build(&kb.store, kb.base_version, kb.store.head().unwrap());
    let population = generate_population(
        &kb,
        PopulationConfig {
            users: 24,
            seed: 5006,
            ..Default::default()
        },
    );
    let recommender = Recommender::with_defaults(MeasureRegistry::standard());
    let (items, _) = recommender.candidates(&ctx);

    let mut results: Vec<(&str, f64, f64)> = Vec::new();
    for personalised in [true, false] {
        let mut precision_sum = 0.0;
        let mut ndcg_sum = 0.0;
        for (profile, &topic) in population.profiles.iter().zip(&population.topics) {
            // Ground truth: items focused inside the user's topic subtree.
            let subtree: Vec<TermId> = kb
                .subtree_of(topic)
                .into_iter()
                .map(|c| kb.classes[c])
                .collect();
            let relevant = |item: &evorec_core::Item| subtree.contains(&item.focus);
            let mut scored: Vec<(usize, f64)> = if personalised {
                let expanded = ExpandedProfile::expand(profile, &ctx.graph_union, expansion_config());
                items
                    .iter()
                    .enumerate()
                    .map(|(ix, it)| (ix, item_relatedness(&expanded, it)))
                    .collect()
            } else {
                items.iter().enumerate().map(|(ix, it)| (ix, it.intensity)).collect()
            };
            scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let top: Vec<bool> = scored
                .iter()
                .take(5)
                .map(|&(ix, _)| relevant(&items[ix]))
                .collect();
            let hits = top.iter().filter(|&&h| h).count();
            precision_sum += hits as f64 / 5.0;
            let dcg: f64 = top
                .iter()
                .enumerate()
                .map(|(r, &h)| if h { 1.0 / ((r as f64 + 2.0).log2()) } else { 0.0 })
                .sum();
            let ideal: f64 = (0..top.len().min(hits.max(1)))
                .map(|r| 1.0 / ((r as f64 + 2.0).log2()))
                .sum();
            ndcg_sum += if hits > 0 { dcg / ideal } else { 0.0 };
        }
        let n = population.profiles.len() as f64;
        results.push((
            if personalised { "personalised" } else { "intensity-only" },
            precision_sum / n,
            ndcg_sum / n,
        ));
    }
    for (name, p, n) in results {
        table.row(vec![
            population.profiles.len().to_string(),
            name.to_string(),
            f3(p),
            f3(n),
        ]);
    }
    table
}

/// E6 — the relevance/diversity trade-off (§III(c): sets must "as a
/// whole exhibit a desired property").
pub fn e6() -> Table {
    let mut table = Table::new(
        "E6: MMR lambda sweep (greedy vs +swap refinement)",
        &[
            "lambda", "algorithm", "mean relevance", "intra-set distance",
            "category coverage", "set objective",
        ],
    );
    let (kb, focus) = hotspot_kb(300, 6006);
    let ctx = EvolutionContext::build(&kb.store, kb.base_version, kb.store.head().unwrap());
    let recommender = Recommender::with_defaults(MeasureRegistry::standard());
    let (items, reports) = recommender.candidates(&ctx);
    let profile = UserProfile::new(UserId(0), "sweep").with_interest(focus[0], 1.0);
    let expanded = ExpandedProfile::expand(&profile, &ctx.graph_union, expansion_config());
    let relevance: Vec<f64> = items.iter().map(|it| item_relatedness(&expanded, it)).collect();
    let distances = DistanceMatrix::compute(&items, &reports, 20, DistanceWeights::default());
    for lambda in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let greedy: Vec<usize> = select_mmr(&relevance, &distances, 6, lambda)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        let refined = swap_refine(&greedy, &relevance, &distances, lambda, 3);
        for (name, selection) in [("greedy", &greedy), ("greedy+swap", &refined)] {
            let mean_rel: f64 = selection.iter().map(|&i| relevance[i]).sum::<f64>()
                / selection.len().max(1) as f64;
            table.row(vec![
                f1(lambda),
                name.to_string(),
                f3(mean_rel),
                f3(intra_set_distance(selection, &distances)),
                pct(category_coverage(&items, selection)),
                f3(set_objective(selection, &relevance, &distances, lambda)),
            ]);
        }
    }
    table
}

/// E7 — group fairness (§III(d): packages "strongly related and fair to
/// the majority of the group members").
pub fn e7() -> Table {
    let mut table = Table::new(
        "E7: group aggregation strategies on heterogeneous groups",
        &["group size", "strategy", "min-sat", "mean-sat", "jain", "envy"],
    );
    let world = social_feed(200, 7007);
    let ctx = EvolutionContext::build(&world.kb.store, world.base(), world.head());
    let recommender = Recommender::with_defaults(MeasureRegistry::standard());
    let (items, _) = recommender.candidates(&ctx);
    for group_size in [2usize, 4, 8, 16] {
        let members = &world.population.profiles[..group_size];
        let rows: Vec<Vec<f64>> = members
            .iter()
            .map(|p| {
                let e = ExpandedProfile::expand(p, &ctx.graph_union, expansion_config());
                items.iter().map(|it| item_relatedness(&e, it)).collect()
            })
            .collect();
        let matrix = RelevanceMatrix::new(rows);
        for strategy in GroupAggregation::ALL {
            let selection = select_for_group(&matrix, 5, strategy);
            let report = fairness_report(&matrix, &selection);
            table.row(vec![
                group_size.to_string(),
                strategy.label().to_string(),
                f3(report.min_satisfaction),
                f3(report.mean_satisfaction),
                f3(report.jain_index),
                f3(report.envy),
            ]);
        }
    }
    table
}

/// E8 — the anonymity/utility trade-off (§III(e)).
pub fn e8() -> Table {
    let mut table = Table::new(
        "E8: k-anonymous change overviews on the clinical workload",
        &["k", "utility", "suppressed", "cells", "max depth", "mean depth"],
    );
    let world = clinical(150, 8008);
    let parents = world.kb.parent_terms();
    for k in [2usize, 4, 8, 16, 32, 64] {
        let report = anonymise(&world.feeds, &parents, k);
        assert!(report.cells.iter().all(|c| c.contributors >= k));
        table.row(vec![
            k.to_string(),
            pct(report.utility()),
            pct(report.suppression_rate()),
            report.cells.len().to_string(),
            report.max_depth().to_string(),
            f3(report.mean_depth()),
        ]);
    }
    table
}

/// E9 — transparency overhead and archiving-policy ablation (§III(b)
/// plus reference \[13\]).
pub fn e9() -> Table {
    let mut table = Table::new(
        "E9: provenance overhead and archiving policies (8-version history)",
        &["metric", "value", "detail"],
    );
    // Build an 8-version audited history.
    let mut kb = GeneratedKb::generate(SchemaConfig {
        classes: 150,
        properties: 20,
        instances: 750,
        instance_zipf: 1.0,
        links_per_instance: 2.0,
        seed: 9009,
    });
    let mut ledger = ProvenanceLedger::new();
    for step in 0..7u64 {
        let parent = kb.store.head();
        let outcome = kb.evolve(&Scenario::UniformChurn { rate: 0.05 }, 9100 + step);
        let delta = kb.store.delta(parent.unwrap(), outcome.version);
        ledger.record_commit(
            format!("curator-{}", step % 3),
            "churn",
            parent,
            outcome.version,
            &delta,
            Justification::Observation,
            "",
        );
    }
    let bytes = ledger.approx_bytes();
    table.row(vec![
        "provenance bytes/record".into(),
        format!("{}", bytes / ledger.len().max(1)),
        format!("{} records, {} bytes", ledger.len(), bytes),
    ]);
    let probe = kb.classes[1];
    let (hits, lookup) = timed(|| ledger.history_of_term(probe).len());
    table.row(vec![
        "who-changed-X lookup".into(),
        ms(lookup),
        format!("{hits} records touch the probe class"),
    ]);
    let explained = ledger
        .records()
        .iter()
        .filter(|r| r.added_count + r.removed_count > 0)
        .count();
    table.row(vec![
        "explainable commits".into(),
        pct(explained as f64 / ledger.len().max(1) as f64),
        "commits with non-empty documented deltas".into(),
    ]);
    for policy in [
        ArchivePolicy::FullSnapshots,
        ArchivePolicy::DeltaChain,
        ArchivePolicy::Hybrid { full_every: 3 },
    ] {
        let archive = Archive::build(&kb.store, policy);
        let stats = archive.stats();
        let (_, rebuild) = timed(|| {
            archive
                .materialize(kb.store.head().unwrap())
                .expect("head materialises")
        });
        table.row(vec![
            format!("archive[{}] stored triples", stats.policy_name),
            stats.total_stored_triples().to_string(),
            format!(
                "mean replay {:.2} steps, head rebuild {}",
                stats.mean_reconstruction_steps,
                ms(rebuild)
            ),
        ]);
    }
    table
}

/// E10 — neighbourhood radius ablation (§II(b): neighbourhood changes
/// reveal "whether the topology … changed in a particular area").
pub fn e10() -> Table {
    let mut table = Table::new(
        "E10: neighbourhood radius ablation on the hotspot workload",
        &["radius", "best hotspot-adjacent rank", "flagged classes", "time"],
    );
    let (kb, focus) = hotspot_kb(400, 1010);
    let ctx = EvolutionContext::build(&kb.store, kb.base_version, kb.store.head().unwrap());
    // Ground truth: classes adjacent to a planted hotspot class.
    let neighbours: Vec<TermId> = focus
        .iter()
        .filter_map(|&f| ctx.graph_union.node_of(f))
        .flat_map(|u| {
            ctx.graph_union
                .neighbours(u)
                .iter()
                .map(|&v| ctx.graph_union.term(v))
                .collect::<Vec<_>>()
        })
        .collect();
    for radius in 0u32..=4 {
        let measure = NeighbourhoodChangeCount { radius };
        let (report, elapsed) = timed(|| measure.compute(&ctx));
        let best_rank = neighbours
            .iter()
            .filter_map(|&n| report.rank_of(n))
            .filter(|&r| report.scores()[r].1 > 0.0)
            .min()
            .map_or("n/a".into(), |r| (r + 1).to_string());
        table.row(vec![
            radius.to_string(),
            best_rank,
            report.positive_count().to_string(),
            ms(elapsed),
        ]);
    }
    table
}

/// E11 (extension) — feedback-loop convergence: the closed human loop of
/// the paper's processing model, simulated against a ground-truth
/// oracle.
pub fn e11() -> Table {
    let mut table = Table::new(
        "E11: session acceptance over rounds (oracle accepts hotspot-subtree items)",
        &["round", "shown", "accepted", "acceptance", "interest mass"],
    );
    let (kb, focus) = hotspot_kb(300, 1111);
    let ctx = EvolutionContext::build(&kb.store, kb.base_version, kb.store.head().unwrap());
    // Oracle: accept anything focused on a hotspot class or its subtree.
    let mut truth: Vec<TermId> = Vec::new();
    for &f in &focus {
        if let Some(ix) = kb.classes.iter().position(|&c| c == f) {
            truth.extend(kb.subtree_of(ix).into_iter().map(|c| kb.classes[c]));
        }
    }
    // λ = 1 (pure relevance): diversity deliberately disabled so the
    // learning signal shows up directly in acceptance; the diversity
    // trade-off has its own experiment (E6).
    let recommender = Recommender::new(
        MeasureRegistry::standard(),
        evorec_core::RecommenderConfig {
            top_k: 5,
            novelty_weight: 0.0,
            mmr_lambda: 1.0,
            swap_passes: 0,
            ..Default::default()
        },
    );
    // Cold-start note: with literally zero interests every candidate has
    // relevance 0 and rejections cannot bootstrap learning (they only
    // clamp at the floor), so the simulated curator starts with a faint
    // seed interest on one hotspot class — the realistic situation the
    // paper assumes (curators watch *something*).
    let mut profile = UserProfile::new(UserId(0), "sim").with_interest(focus[0], 0.05);
    let trace = evorec_core::simulate_session(
        &recommender,
        &ctx,
        &mut profile,
        |item| truth.contains(&item.focus),
        &evorec_core::FeedbackLoop::default(),
        8,
    );
    for round in &trace.rounds {
        table.row(vec![
            round.round.to_string(),
            round.shown.to_string(),
            round.accepted.to_string(),
            pct(round.acceptance_rate),
            f3(round.interest_mass),
        ]);
    }
    table
}

/// E12 (extension) — trend detection over a multi-step history ("observe
/// changes trends", §I).
pub fn e12() -> Table {
    let mut table = Table::new(
        "E12: timeline trend detection over an 8-step history",
        &["metric", "value"],
    );
    let mut kb = GeneratedKb::generate(SchemaConfig {
        classes: 200,
        properties: 25,
        instances: 1000,
        instance_zipf: 1.0,
        links_per_instance: 2.0,
        seed: 1212,
    });
    // Plant a rising hotspot: one commit per step carrying `step + 1`
    // new instances of the planted class plus a little deterministic
    // background noise on other classes.
    let rising = kb.classes[3];
    let rdf_type = kb.store.vocab().rdf_type;
    for step in 0..8usize {
        let head = kb.store.head().unwrap();
        let mut snapshot = kb.store.snapshot(head).clone();
        for b in 0..3usize {
            let class_ix = (step * 7 + b * 13 + 5) % kb.classes.len();
            let class = kb.classes[if class_ix == 3 { 4 } else { class_ix }];
            let inst = kb
                .store
                .intern_iri(format!("http://evorec.example/noise/{step}_{b}"));
            snapshot.insert(evorec_kb::Triple::new(inst, rdf_type, class));
        }
        for j in 0..=step {
            let inst = kb
                .store
                .intern_iri(format!("http://evorec.example/trend/{step}_{j}"));
            snapshot.insert(evorec_kb::Triple::new(inst, rdf_type, rising));
        }
        kb.store.commit_snapshot(format!("trend-{step}"), snapshot);
    }
    let timeline = evorec_versioning::Timeline::build(&kb.store);
    table.row(vec!["steps digested".into(), timeline.steps().to_string()]);
    table.row(vec![
        "terms touched".into(),
        timeline.touched_terms().to_string(),
    ]);
    table.row(vec![
        "planted class trend".into(),
        timeline.trend_of(rising).label().to_string(),
    ]);
    table.row(vec![
        "planted class total changes".into(),
        timeline.total_of(rising).to_string(),
    ]);
    let top = timeline.most_changed(5);
    let rank = top.iter().position(|&(t, _)| t == rising);
    table.row(vec![
        "planted class in top-5 most-changed".into(),
        rank.map_or("no".into(), |r| format!("yes (rank {})", r + 1)),
    ]);
    table.row(vec![
        "rising terms detected".into(),
        timeline
            .terms_with_trend(evorec_versioning::Trend::Rising)
            .len()
            .to_string(),
    ]);
    table
}

/// A table generator for one experiment.
pub type ExperimentFn = fn() -> Table;

/// Every experiment, in order, as `(id, generator)` pairs.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("e1", e1 as ExperimentFn),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke-test the cheap experiments end-to-end (the expensive sweeps
    // are exercised by the bin / cargo bench).
    #[test]
    fn e4_table_shape() {
        let t = e4();
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn e8_table_shape() {
        let t = e8();
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn e10_table_shape() {
        let t = e10();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn registry_ids_used_by_e2_exist() {
        let registry = MeasureRegistry::standard();
        for id in [
            "class-change-count",
            "neighbourhood-change-count-r1",
            "betweenness-shift",
            "relevance-shift",
        ] {
            assert!(registry.get(&id.into()).is_some(), "{id}");
        }
    }
}
