//! Criterion micro-benchmarks for the §III recommender pipeline:
//! single-user and group recommendation, diversity selection, the
//! k-anonymiser, and the amortised serving layer (report cache cold vs
//! warm, batch fan-out vs sequential).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use evorec_core::{
    anonymity::anonymise, item_relatedness, relatedness::expansion_config, select_mmr,
    DistanceMatrix, DistanceWeights, ExpandedProfile, Recommender, RecommenderConfig,
    ReportCache, UserProfile, UserId,
};
use evorec_measures::{EvolutionContext, MeasureRegistry};
use evorec_synth::workload::{clinical, curated_kb};
use std::hint::black_box;
use std::sync::Arc;

fn bench_recommend(c: &mut Criterion) {
    let world = curated_kb(200, 55);
    let ctx = EvolutionContext::build(&world.kb.store, world.base(), world.head());
    let recommender = Recommender::with_defaults(MeasureRegistry::standard());
    let profile = world.population.profiles[0].clone();
    // Warm the context's memoised centralities once so the bench
    // isolates the recommendation pipeline itself.
    let _ = recommender.recommend(&ctx, &profile);

    let mut group = c.benchmark_group("recommend");
    group.sample_size(20);
    group.bench_function("single_user_200c", |b| {
        b.iter(|| black_box(recommender.recommend(black_box(&ctx), black_box(&profile))))
    });
    let team: Vec<UserProfile> = world.population.profiles[..8].to_vec();
    group.bench_function("group8_200c", |b| {
        b.iter(|| black_box(recommender.recommend_for_group(black_box(&ctx), black_box(&team))))
    });
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let world = curated_kb(200, 56);
    let ctx = EvolutionContext::build(&world.kb.store, world.base(), world.head());
    let recommender = Recommender::with_defaults(MeasureRegistry::standard());
    let (items, reports) = recommender.candidates(&ctx);
    let profile = UserProfile::new(UserId(0), "u").with_interest(world.kb.classes[1], 1.0);
    let expanded = ExpandedProfile::expand(&profile, &ctx.graph_union, expansion_config());
    let relevance: Vec<f64> = items.iter().map(|it| item_relatedness(&expanded, it)).collect();

    let mut group = c.benchmark_group("selection");
    group.bench_function("distance_matrix", |b| {
        b.iter(|| {
            black_box(DistanceMatrix::compute(
                black_box(&items),
                black_box(&reports),
                20,
                DistanceWeights::default(),
            ))
        })
    });
    let distances = DistanceMatrix::compute(&items, &reports, 20, DistanceWeights::default());
    group.bench_function("mmr_k5", |b| {
        b.iter(|| black_box(select_mmr(black_box(&relevance), black_box(&distances), 5, 0.7)))
    });
    group.finish();
}

/// Cold vs warm serving over the same evolution step. Both sides
/// rebuild the `EvolutionContext` per request (outside the timed
/// region), so the cold/warm delta isolates exactly what the report
/// cache amortises: the full measure-catalogue evaluation.
fn bench_cache(c: &mut Criterion) {
    let world = curated_kb(200, 58);
    let store = &world.kb.store;
    let (base, head) = (world.base(), world.head());
    let cache = Arc::new(ReportCache::new());
    let recommender = Recommender::with_cache(
        MeasureRegistry::standard(),
        RecommenderConfig::default(),
        Arc::clone(&cache),
    );
    let profile = world.population.profiles[0].clone();

    let mut group = c.benchmark_group("cache");
    group.sample_size(10);
    group.bench_function("recommend_cold_200c", |b| {
        b.iter_batched(
            || {
                cache.clear();
                EvolutionContext::build(store, base, head)
            },
            |ctx| black_box(recommender.recommend(&ctx, &profile)),
            BatchSize::PerIteration,
        )
    });
    // Prime once; from here every rebuilt context fingerprints onto the
    // same entries and the full catalogue is served from the cache.
    cache.clear();
    let primed = EvolutionContext::build(store, base, head);
    let _ = recommender.recommend(&primed, &profile);
    group.bench_function("recommend_warm_200c", |b| {
        b.iter_batched(
            || EvolutionContext::build(store, base, head),
            |ctx| black_box(recommender.recommend(&ctx, &profile)),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

/// 100 users against one context: per-request `recommend` loop vs the
/// batch fan-out that shares the candidate pool and distance matrix.
fn bench_batch(c: &mut Criterion) {
    let world = curated_kb(200, 59);
    let ctx = EvolutionContext::build(&world.kb.store, world.base(), world.head());
    let recommender = Recommender::with_defaults(MeasureRegistry::standard());
    let pool = &world.population.profiles;
    let profiles: Vec<UserProfile> = (0..100).map(|i| pool[i % pool.len()].clone()).collect();
    // Warm the context's memoised centralities once for both sides.
    let _ = recommender.recommend(&ctx, &profiles[0]);

    let mut group = c.benchmark_group("batch");
    group.sample_size(10);
    group.bench_function("sequential_100", |b| {
        b.iter(|| {
            let out: Vec<_> = profiles
                .iter()
                .map(|p| recommender.recommend(black_box(&ctx), p))
                .collect();
            black_box(out)
        })
    });
    group.bench_function("batch_100", |b| {
        b.iter(|| {
            black_box(
                recommender
                    .batch()
                    .recommend_all(black_box(&ctx), black_box(&profiles)),
            )
        })
    });
    group.finish();
}

fn bench_anonymise(c: &mut Criterion) {
    let world = clinical(150, 57);
    let parents = world.kb.parent_terms();
    let mut group = c.benchmark_group("anonymise");
    for k in [2usize, 8, 32] {
        group.bench_function(format!("k{k}_48users"), |b| {
            b.iter(|| black_box(anonymise(black_box(&world.feeds), black_box(&parents), k)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_recommend,
    bench_selection,
    bench_cache,
    bench_batch,
    bench_anonymise
);
criterion_main!(benches);
