//! Observability overhead smoke bench: the warm `recommend` path with
//! tracing disabled vs fully enabled.
//!
//! The acceptance bar is the *disabled* side — `tracer: None` must be
//! zero-cost (an `Option` check per stage, no allocation, no clock
//! reads), so `recommend_disabled_tracer` has to land within noise of
//! the plain `recommend_warm` path benchmarked in `recommender.rs`.
//! The enabled side quantifies what full span tracing costs per warm
//! request (a handful of clock reads + lock-free histogram records).
//! Plus the primitive costs underneath: `Histogram::record` and a
//! start/finish span round-trip.
//!
//! `recommend_collector_attached` raises the bar one layer: the same
//! warm path while a live `TelemetryDriver` scrapes the registry on a
//! short cadence with the full standard SLO rule set armed. The
//! serving thread never touches the collector (pull-model metrics:
//! the scraper reads the same relaxed atomics the stats already
//! maintain), so this must land within noise of the collector-off
//! sides above.

use criterion::{criterion_group, criterion_main, Criterion};
use evorec_core::{Recommender, RecommenderConfig, ReportCache};
use evorec_measures::{EvolutionContext, MeasureRegistry};
use evorec_obs::{
    Clock, Histogram, MetricsRegistry, MetricsSource, MonotonicClock, SpanHandle, Tracer,
};
use evorec_synth::workload::curated_kb;
use evorec_telemetry::{
    defaults::standard_rules, CollectorConfig, TelemetryCollector, TelemetryDriver,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_tracing_overhead(c: &mut Criterion) {
    let world = curated_kb(200, 58);
    let store = &world.kb.store;
    let (base, head) = (world.base(), world.head());
    let cache = Arc::new(ReportCache::new());
    let recommender = Recommender::with_cache(
        MeasureRegistry::standard(),
        RecommenderConfig::default(),
        Arc::clone(&cache),
    );
    let profile = world.population.profiles[0].clone();
    let ctx = EvolutionContext::build(store, base, head);
    // Prime the cache: both sides serve the identical warm path.
    let _ = recommender.recommend(&ctx, &profile);
    let tracer = Tracer::monotonic();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.bench_function("recommend_disabled_tracer", |b| {
        b.iter(|| {
            black_box(recommender.recommend_observed(
                black_box(&ctx),
                black_box(&profile),
                None,
                None,
                SpanHandle::NONE,
            ))
        })
    });
    group.bench_function("recommend_enabled_tracer", |b| {
        b.iter(|| {
            black_box(recommender.recommend_observed(
                black_box(&ctx),
                black_box(&profile),
                None,
                Some(&tracer),
                SpanHandle::NONE,
            ))
        })
    });
    group.finish();
}

fn bench_collector_attached(c: &mut Criterion) {
    let world = curated_kb(200, 58);
    let store = &world.kb.store;
    let (base, head) = (world.base(), world.head());
    let cache = Arc::new(ReportCache::new());
    let recommender = Recommender::with_cache(
        MeasureRegistry::standard(),
        RecommenderConfig::default(),
        Arc::clone(&cache),
    );
    let profile = world.population.profiles[0].clone();
    let ctx = EvolutionContext::build(store, base, head);
    let _ = recommender.recommend(&ctx, &profile);

    // A live collector scraping every 1ms with all default rules on.
    const CADENCE_NANOS: u64 = 1_000_000;
    let metrics = Arc::new(MetricsRegistry::new());
    metrics.register_source(Arc::clone(&cache) as Arc<dyn MetricsSource>);
    let collector = Arc::new(TelemetryCollector::new(
        Arc::clone(&metrics),
        Arc::new(MonotonicClock::new()) as Arc<dyn Clock>,
        CollectorConfig::for_cadence(CADENCE_NANOS).with_rules(standard_rules(CADENCE_NANOS)),
    ));
    metrics.register_source(Arc::clone(&collector) as Arc<dyn MetricsSource>);
    let mut driver = TelemetryDriver::start(Arc::clone(&collector), Duration::from_millis(1));

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.bench_function("recommend_collector_attached", |b| {
        b.iter(|| {
            black_box(recommender.recommend_observed(
                black_box(&ctx),
                black_box(&profile),
                None,
                None,
                SpanHandle::NONE,
            ))
        })
    });
    group.finish();
    // Prove the scraper really ran concurrently before tearing down
    // (a fast bench can finish inside the first scrape interval).
    let deadline = std::time::Instant::now() + Duration::from_millis(250);
    while collector.scrapes() == 0 && std::time::Instant::now() < deadline {
        std::hint::spin_loop();
    }
    driver.shutdown();
    assert!(collector.scrapes() > 0, "the driver must have scraped");
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    let histogram = Histogram::new();
    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(2654435761).wrapping_rem(1 << 30);
            histogram.record(black_box(v));
        })
    });
    let tracer = Tracer::monotonic();
    group.bench_function("span_start_finish", |b| {
        b.iter(|| {
            let guard = tracer.start("bench_stage", SpanHandle::NONE);
            black_box(guard.handle());
            guard.finish();
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tracing_overhead,
    bench_collector_attached,
    bench_primitives
);
criterion_main!(benches);
