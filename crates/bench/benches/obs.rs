//! Observability overhead smoke bench: the warm `recommend` path with
//! tracing disabled vs fully enabled.
//!
//! The acceptance bar is the *disabled* side — `tracer: None` must be
//! zero-cost (an `Option` check per stage, no allocation, no clock
//! reads), so `recommend_disabled_tracer` has to land within noise of
//! the plain `recommend_warm` path benchmarked in `recommender.rs`.
//! The enabled side quantifies what full span tracing costs per warm
//! request (a handful of clock reads + lock-free histogram records).
//! Plus the primitive costs underneath: `Histogram::record` and a
//! start/finish span round-trip.

use criterion::{criterion_group, criterion_main, Criterion};
use evorec_core::{Recommender, RecommenderConfig, ReportCache};
use evorec_measures::{EvolutionContext, MeasureRegistry};
use evorec_obs::{Histogram, SpanHandle, Tracer};
use evorec_synth::workload::curated_kb;
use std::hint::black_box;
use std::sync::Arc;

fn bench_tracing_overhead(c: &mut Criterion) {
    let world = curated_kb(200, 58);
    let store = &world.kb.store;
    let (base, head) = (world.base(), world.head());
    let cache = Arc::new(ReportCache::new());
    let recommender = Recommender::with_cache(
        MeasureRegistry::standard(),
        RecommenderConfig::default(),
        Arc::clone(&cache),
    );
    let profile = world.population.profiles[0].clone();
    let ctx = EvolutionContext::build(store, base, head);
    // Prime the cache: both sides serve the identical warm path.
    let _ = recommender.recommend(&ctx, &profile);
    let tracer = Tracer::monotonic();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.bench_function("recommend_disabled_tracer", |b| {
        b.iter(|| {
            black_box(recommender.recommend_observed(
                black_box(&ctx),
                black_box(&profile),
                None,
                None,
                SpanHandle::NONE,
            ))
        })
    });
    group.bench_function("recommend_enabled_tracer", |b| {
        b.iter(|| {
            black_box(recommender.recommend_observed(
                black_box(&ctx),
                black_box(&profile),
                None,
                Some(&tracer),
                SpanHandle::NONE,
            ))
        })
    });
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    let histogram = Histogram::new();
    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(2654435761).wrapping_rem(1 << 30);
            histogram.record(black_box(v));
        })
    });
    let tracer = Tracer::monotonic();
    group.bench_function("span_start_finish", |b| {
        b.iter(|| {
            let guard = tracer.start("bench_stage", SpanHandle::NONE);
            black_box(guard.handle());
            guard.finish();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tracing_overhead, bench_primitives);
criterion_main!(benches);
