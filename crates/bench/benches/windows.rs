//! Benchmarks for multi-window temporal serving: per-epoch
//! window-advance latency and k-window fan-out throughput.
//!
//! The advance path is the acceptance-critical one: every window moves
//! by composing per-epoch deltas (`invert`/`compose` over the epoch
//! ring plus one normalisation against the `from` snapshot) — the
//! store's `delta_computations` counter, printed after the benches,
//! stays flat across thousands of advances because no window ever
//! re-diffs two snapshots.

use criterion::{criterion_group, criterion_main, Criterion};
use evorec_stream::{EpochCommit, IngestorConfig};
use evorec_synth::workload::curated_kb;
use evorec_synth::workload::streamed::committed_epochs;
use evorec_versioning::{VersionId, VersionedStore};
use evorec_windows::{WindowDef, WindowManager, WindowManagerOptions, WindowSpec};
use std::hint::black_box;

/// Replay a synth workload as many small epochs (micro-batched at
/// `max_batch` events), returning the full store, the commit sequence,
/// and the seed head managers replay from.
fn commit_stream(max_batch: usize) -> (VersionedStore, Vec<EpochCommit>, VersionId) {
    let world = curated_kb(120, 71);
    let (ingestor, commits) = committed_epochs(&world, IngestorConfig {
        max_batch,
        ..Default::default()
    });
    let seed_head = VersionId::from_u32(0);
    let (store, _ledger) = ingestor.into_parts();
    (store, commits, seed_head)
}

/// A manager anchored at the seed head, ready to replay the stream.
fn manager_at_seed(
    store: &VersionedStore,
    seed_head: VersionId,
    defs: Vec<WindowDef>,
) -> WindowManager {
    WindowManager::new(store, seed_head, defs, WindowManagerOptions {
        head: Some(seed_head),
        ..Default::default()
    })
}

/// The canonical curator set: last epoch, sliding band, since-clock,
/// landmark.
fn four_windows() -> Vec<WindowDef> {
    vec![
        WindowDef::new("last", WindowSpec::LastEpoch),
        WindowDef::new("band", WindowSpec::SlidingEpochs(3)),
        WindowDef::new("recent", WindowSpec::Since(4)),
        WindowDef::new("release", WindowSpec::Landmark),
    ]
}

/// Window-advance latency: replay the whole commit stream through a
/// four-window manager; per-epoch cost is the reported time divided by
/// the epoch count in the bench id.
fn bench_window_advance(c: &mut Criterion) {
    let (store, commits, seed_head) = commit_stream(16);
    let mut group = c.benchmark_group("windows");
    group.sample_size(10);
    group.bench_function(format!("advance_4w_{}epochs", commits.len()), |b| {
        b.iter(|| {
            let manager = manager_at_seed(&store, seed_head, four_windows());
            for commit in &commits {
                manager.advance(&store, commit);
            }
            black_box(manager.stats().publishes)
        })
    });
    group.finish();
    println!(
        "windows: {} snapshot diffs total after every advance iteration \
         (sliding/landmark advances run purely on delta composition)",
        store.delta_computations()
    );
}

/// Fan-out throughput: the same epoch stream feeding 1, 4, and 8
/// concurrent windows of mixed horizon.
fn bench_window_fanout(c: &mut Criterion) {
    let (store, commits, seed_head) = commit_stream(16);
    let mut group = c.benchmark_group("windows");
    group.sample_size(10);
    for k in [1usize, 4, 8] {
        let defs: Vec<WindowDef> = (0..k)
            .map(|i| {
                let spec = match i % 4 {
                    0 => WindowSpec::Landmark,
                    1 => WindowSpec::LastEpoch,
                    2 => WindowSpec::SlidingEpochs(1 + i),
                    _ => WindowSpec::Since(3 + i as u64),
                };
                WindowDef::new(format!("w{i}"), spec)
            })
            .collect();
        group.bench_function(format!("fanout_{k}w_{}epochs", commits.len()), |b| {
            b.iter(|| {
                let manager = manager_at_seed(&store, seed_head, defs.clone());
                for commit in &commits {
                    manager.advance(&store, commit);
                }
                black_box(manager.stats().publishes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_window_advance, bench_window_fanout);
criterion_main!(benches);
