//! Criterion micro-benchmarks for the §II measure catalogue (E2's
//! per-measure cost, measured precisely).
//!
//! Contexts are rebuilt per iteration batch so the memoised centrality
//! caches inside `EvolutionContext` cannot leak work across samples of
//! the structural measures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use evorec_measures::{EvolutionContext, MeasureRegistry};
use evorec_synth::{GeneratedKb, Scenario, SchemaConfig};
use std::hint::black_box;

fn evolved(classes: usize) -> GeneratedKb {
    let mut kb = GeneratedKb::generate(SchemaConfig {
        classes,
        properties: (classes / 5).max(2),
        instances: classes * 5,
        instance_zipf: 1.0,
        links_per_instance: 2.0,
        seed: 88,
    });
    kb.evolve(
        &Scenario::Hotspot {
            focus_classes: 3,
            rate: 0.15,
            concentration: 0.9,
        },
        89,
    );
    kb
}

fn bench_each_measure(c: &mut Criterion) {
    let kb = evolved(300);
    let head = kb.store.head().unwrap();
    let registry = MeasureRegistry::standard();
    let mut group = c.benchmark_group("measure");
    group.sample_size(10);
    for measure in registry.all() {
        group.bench_function(measure.id().as_str(), |b| {
            b.iter_batched(
                || EvolutionContext::build(&kb.store, kb.base_version, head),
                |ctx| black_box(measure.compute(&ctx)),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_catalogue(c: &mut Criterion) {
    let kb = evolved(300);
    let head = kb.store.head().unwrap();
    let registry = MeasureRegistry::standard();
    let mut group = c.benchmark_group("catalogue");
    group.sample_size(10);
    group.bench_function("compute_all_300c", |b| {
        b.iter_batched(
            || EvolutionContext::build(&kb.store, kb.base_version, head),
            |ctx| black_box(registry.compute_all(&ctx)),
            BatchSize::PerIteration,
        )
    });
    group.bench_function("context_build_300c", |b| {
        b.iter(|| black_box(EvolutionContext::build(&kb.store, kb.base_version, head)))
    });
    group.finish();
}

criterion_group!(benches, bench_each_measure, bench_catalogue);
criterion_main!(benches);
