//! Criterion micro-benchmarks for the storage / delta / graph substrate.
//!
//! Backs the E2 feasibility claim at the component level: pattern
//! queries, snapshot diffing, the delta wire codec, and serial vs
//! parallel Brandes betweenness.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use evorec_graph::{betweenness, betweenness_parallel, SchemaGraph};
use evorec_kb::{TriplePattern, TripleStore};
use evorec_synth::{GeneratedKb, Scenario, SchemaConfig};
use evorec_versioning::{decode_delta, encode_delta, LowLevelDelta};
use std::hint::black_box;

fn generated(classes: usize) -> GeneratedKb {
    GeneratedKb::generate(SchemaConfig {
        classes,
        properties: (classes / 5).max(2),
        instances: classes * 5,
        instance_zipf: 1.0,
        links_per_instance: 2.0,
        seed: 77,
    })
}

fn bench_store(c: &mut Criterion) {
    let kb = generated(400);
    let snapshot = kb.store.snapshot(kb.base_version);
    let rdf_type = kb.store.vocab().rdf_type;
    c.bench_function("store/match_predicate_400c", |b| {
        b.iter(|| {
            black_box(
                snapshot
                    .match_pattern(TriplePattern::with_predicate(black_box(rdf_type)))
                    .count(),
            )
        })
    });
    c.bench_function("store/mentioning_400c", |b| {
        let probe = kb.classes[1];
        b.iter(|| black_box(snapshot.mention_count(black_box(probe))))
    });
    c.bench_function("store/clone_insert_remove_400c", |b| {
        let triple = snapshot.iter().next().unwrap();
        b.iter_batched(
            || snapshot.clone(),
            |mut s: TripleStore| {
                s.remove(&triple);
                s.insert(triple);
                black_box(s.len())
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_delta(c: &mut Criterion) {
    let mut kb = generated(400);
    let outcome = kb.evolve(&Scenario::UniformChurn { rate: 0.1 }, 78);
    let v1 = kb.store.snapshot(kb.base_version).clone();
    let v2 = kb.store.snapshot(outcome.version).clone();
    c.bench_function("delta/compute_400c", |b| {
        b.iter(|| black_box(LowLevelDelta::compute(black_box(&v1), black_box(&v2))))
    });
    let delta = LowLevelDelta::compute(&v1, &v2);
    c.bench_function("delta/apply_400c", |b| {
        b.iter(|| black_box(delta.apply(black_box(&v1))))
    });
    c.bench_function("codec/encode_400c", |b| {
        b.iter(|| black_box(encode_delta(black_box(&delta))))
    });
    let wire = encode_delta(&delta);
    c.bench_function("codec/decode_400c", |b| {
        b.iter(|| black_box(decode_delta(black_box(&wire)).unwrap()))
    });
}

fn bench_betweenness(c: &mut Criterion) {
    let kb = generated(600);
    let view = kb.store.schema_view(kb.base_version);
    let graph = SchemaGraph::from_schema_view(&view);
    let mut group = c.benchmark_group("betweenness");
    group.sample_size(10);
    group.bench_function("serial_600c", |b| {
        b.iter(|| black_box(betweenness(black_box(&graph))))
    });
    group.bench_function("parallel4_600c", |b| {
        b.iter(|| black_box(betweenness_parallel(black_box(&graph), 4)))
    });
    group.finish();
}

criterion_group!(benches, bench_store, bench_delta, bench_betweenness);
criterion_main!(benches);
