//! Benchmarks for the online adaptation subsystem: feedback-stream
//! throughput through the worker into the live profile store, and —
//! the serving guarantee — profile-read latency while feedback is
//! being folded in underneath the readers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use evorec_adapt::{AdaptWorker, BanditBook, FeedbackEvent, ProfileStore, Reaction};
use evorec_core::{Item, UserId, UserProfile};
use evorec_kb::TermId;
use evorec_measures::{MeasureCategory, MeasureId};
use evorec_stream::BoundedLog;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const USERS: u32 = 64;
const MEASURES: u32 = 8;

/// A deterministic soup of curator reactions across users and measures.
fn feedback_soup(events: usize) -> Vec<FeedbackEvent> {
    (0..events)
        .map(|i| {
            let i = i as u32;
            let item = Item::new(
                MeasureId::new(format!("measure-{}", i % MEASURES)),
                MeasureCategory::ChangeCounting,
                TermId::from_u32(i % 97),
                f64::from(i % 100) / 100.0,
            );
            let reaction = match i % 4 {
                0 => Reaction::Accept,
                1 => Reaction::Dwell,
                2 => Reaction::Dismiss,
                _ => Reaction::Reject,
            };
            FeedbackEvent::new(UserId(i % USERS), item, reaction)
                .in_session(u64::from(i / 100))
                .from_window("bench")
        })
        .collect()
}

fn seeded_store() -> Arc<ProfileStore> {
    let store = Arc::new(ProfileStore::with_defaults());
    store.seed((0..USERS).map(|u| UserProfile::new(UserId(u), format!("u{u}"))));
    store
}

/// Feedback throughput: push a reaction soup through the bounded log,
/// the micro-batching worker, the profile store and the bandit ledger,
/// measured to full application (flush).
fn bench_feedback_throughput(c: &mut Criterion) {
    let events = feedback_soup(4096);
    let mut group = c.benchmark_group("adapt");
    group.sample_size(10);
    group.bench_function(format!("feedback_applied_{}ev", events.len()), |b| {
        b.iter_batched(
            || {
                let log = Arc::new(BoundedLog::bounded(events.len()));
                let store = seeded_store();
                let book = Arc::new(BanditBook::new());
                let worker =
                    AdaptWorker::spawn(Arc::clone(&log), store, Arc::clone(&book), 128);
                (log, worker, events.clone())
            },
            |(log, worker, events)| {
                for event in events {
                    log.push(event).unwrap();
                }
                worker.flush();
                black_box(worker.stats().events)
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

/// Profile-read latency while an update storm runs underneath: readers
/// must only ever pay an `Arc` clone under a briefly held read lock —
/// the copy-on-write profile rebuilds happen off the read path.
fn bench_read_latency_under_updates(c: &mut Criterion) {
    let store = seeded_store();
    let stop = Arc::new(AtomicBool::new(false));
    let updater = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let soup = feedback_soup(10_000);
        std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let event = &soup[i % soup.len()];
                store.react(event.user, &event.item, event.reaction);
                i += 1;
            }
            i
        })
    };

    let mut group = c.benchmark_group("adapt");
    group.sample_size(50);
    group.bench_function("profile_read_during_update_storm", |b| {
        let mut user = 0u32;
        b.iter(|| {
            user = (user + 1) % USERS;
            black_box(store.get(UserId(user)).map(|p| p.interest_count()))
        })
    });
    group.finish();
    stop.store(true, Ordering::Relaxed);
    let applied = updater.join().expect("updater thread");
    println!(
        "adapt: updater applied {applied} reactions while readers ran; store {:?}",
        store.stats()
    );
}

criterion_group!(
    benches,
    bench_feedback_throughput,
    bench_read_latency_under_updates
);
criterion_main!(benches);
