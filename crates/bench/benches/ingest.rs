//! Benchmarks for the streaming ingestion subsystem: event-log and
//! ingestor throughput, epoch publication cost, and — the serving
//! guarantee — reader latency on `LiveContext::current` while epochs
//! are being committed and swapped underneath it.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use evorec_core::ReportCache;
use evorec_measures::{EvolutionContext, MeasureRegistry};
use evorec_stream::{ChangeEvent, EventLog, IngestorConfig, LiveContext};
use evorec_synth::workload::streamed::{replay, seeded_ingestor};
use evorec_synth::workload::curated_kb;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Event-log throughput: push + drain through the bounded queue.
fn bench_event_log(c: &mut Criterion) {
    let world = curated_kb(120, 61);
    let events: Vec<ChangeEvent> = replay(&world).into_iter().flatten().collect();
    let mut group = c.benchmark_group("ingest");
    group.sample_size(20);
    group.bench_function(format!("log_roundtrip_{}ev", events.len()), |b| {
        b.iter(|| {
            let log = EventLog::bounded(events.len());
            for event in &events {
                log.push(event.clone()).unwrap();
            }
            let mut drained = 0;
            while drained < events.len() {
                drained += log.try_pop_batch(256).len();
            }
            black_box(drained)
        })
    });
    group.finish();
}

/// Ingest throughput: fold a workload's full event stream into epochs.
fn bench_ingest_throughput(c: &mut Criterion) {
    let world = curated_kb(120, 62);
    let steps = replay(&world);
    let total: usize = steps.iter().map(Vec::len).sum();
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    group.bench_function(format!("events_to_epochs_{total}ev"), |b| {
        b.iter_batched(
            || (seeded_ingestor(&world, IngestorConfig::default()), steps.clone()),
            |(mut ingestor, steps)| {
                for batch in steps {
                    ingestor.ingest_all(batch);
                    ingestor.commit_epoch();
                }
                black_box(ingestor.stats().epochs)
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

/// Swap latency, the acceptance-critical number: a reader cloning the
/// live context while a publisher thread continuously rebuilds and
/// swaps fresh contexts (with pre-warm + invalidation running against
/// a shared report cache). Readers must see only pointer-swap cost —
/// nanoseconds, not the milliseconds an epoch rebuild takes.
fn bench_swap_latency(c: &mut Criterion) {
    let world = curated_kb(120, 63);
    let store = &world.kb.store;
    let (base, head) = (world.base(), world.head());
    let mid = evorec_versioning_mid(base, head);
    let registry = Arc::new(MeasureRegistry::standard());
    let cache = Arc::new(ReportCache::new());
    let live = Arc::new(
        LiveContext::with_serving(
            Arc::new(EvolutionContext::build(store, base, head)),
            Arc::clone(&registry),
            Arc::clone(&cache),
        )
        .background_warm(true),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let live = Arc::clone(&live);
        let stop = Arc::clone(&stop);
        let a = Arc::new(EvolutionContext::build(store, base, mid));
        let b = Arc::new(EvolutionContext::build(store, base, head));
        let ext_ab = store.delta(mid, head);
        let ext_ba = store.delta(head, mid);
        std::thread::spawn(move || {
            let mut flip = false;
            while !stop.load(Ordering::Relaxed) {
                // Alternate between two epochs; each publish pre-warms
                // the full catalogue and invalidates the other epoch.
                let (next, ext) = if flip {
                    (Arc::clone(&a), Arc::clone(&ext_ba))
                } else {
                    (Arc::clone(&b), Arc::clone(&ext_ab))
                };
                live.publish(next, Some(ext));
                flip = !flip;
            }
        })
    };

    let mut group = c.benchmark_group("swap");
    group.sample_size(50);
    group.bench_function("reader_current_during_commits", |b| {
        b.iter(|| black_box(live.current().fingerprint()))
    });
    group.finish();
    stop.store(true, Ordering::Relaxed);
    publisher.join().expect("publisher thread");
    println!(
        "swap: publisher completed {} epoch swaps while readers ran; cache stats {:?}",
        live.epoch(),
        cache.stats()
    );
}

/// Midpoint version of a (base, head) pair, for a second distinct epoch.
fn evorec_versioning_mid(
    base: evorec_versioning::VersionId,
    head: evorec_versioning::VersionId,
) -> evorec_versioning::VersionId {
    evorec_versioning::VersionId::from_u32((base.as_u32() + head.as_u32()).div_ceil(2))
}

criterion_group!(benches, bench_event_log, bench_ingest_throughput, bench_swap_latency);
criterion_main!(benches);
