//! Pluggable time sources.
//!
//! Instrumentation must never become a determinism leak: the audit
//! treats wall-clock reads as value-level taint, and the `--cfg
//! evorec_sched` harness forbids real time entirely (a clock read would
//! make interleaving outcomes schedule-dependent). So every timing
//! consumer in this crate reads through [`Clock`]: production wires a
//! [`MonotonicClock`], tests and sched models wire a [`LogicalClock`]
//! whose only source of progress is explicit [`LogicalClock::tick`]
//! calls.

use sched::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond source.
///
/// Implementations must be non-decreasing per clock instance; nothing
/// here requires cross-instance comparability.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since this clock's origin.
    fn now_nanos(&self) -> u64;
}

impl Clock for Arc<dyn Clock> {
    fn now_nanos(&self) -> u64 {
        (**self).now_nanos()
    }
}

/// Wall time: nanoseconds since construction, via [`Instant`].
///
/// The readings are observability-only values — they feed histograms
/// and span records, never fingerprints, deltas, or scores (the audit's
/// taint analysis enforces exactly that boundary).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose zero is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        let elapsed = self.origin.elapsed();
        elapsed
            .as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(elapsed.subsec_nanos()))
    }
}

/// Deterministic time: advances only when told to.
///
/// `now_nanos` returns the cumulative ticks, so a test that never calls
/// [`tick`](LogicalClock::tick) sees every span take exactly zero
/// nanoseconds — and, crucially, sees the *same* zero on every
/// schedule the sched harness explores.
#[derive(Debug, Default)]
pub struct LogicalClock {
    ticks: AtomicU64,
}

impl LogicalClock {
    /// A clock at zero.
    pub fn new() -> LogicalClock {
        LogicalClock::default()
    }

    /// Advance by `nanos`, returning the new reading.
    pub fn tick(&self, nanos: u64) -> u64 {
        self.ticks.fetch_add(nanos, Ordering::AcqRel) + nanos
    }
}

impl Clock for LogicalClock {
    fn now_nanos(&self) -> u64 {
        self.ticks.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_is_non_decreasing() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn logical_advances_only_on_tick() {
        let clock = LogicalClock::new();
        assert_eq!(clock.now_nanos(), 0);
        assert_eq!(clock.tick(5), 5);
        assert_eq!(clock.tick(7), 12);
        assert_eq!(clock.now_nanos(), 12);
    }
}
