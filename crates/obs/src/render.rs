//! Exposition renderers: Prometheus text format, a JSON snapshot, and
//! a human-readable span-tree breakdown.
//!
//! All three are pure functions of already-sorted sample/span slices,
//! so output is byte-deterministic for a given snapshot — the property
//! the example smoke runs and CI artifact diffs rely on.

use crate::source::Sample;
use crate::trace::FinishedSpan;
use std::fmt::Write as _;

/// Render samples in the Prometheus text exposition format
/// (`# TYPE` line per family, label sets inline, one sample per line).
pub fn prometheus(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for s in samples {
        if last_family != Some(s.family.as_str()) {
            let _ = writeln!(out, "# TYPE {} {}", s.family, s.kind.prometheus_type());
            last_family = Some(s.family.as_str());
        }
        out.push_str(&s.family);
        out.push_str(s.suffix);
        if !s.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in s.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                escape_label(v, &mut out);
                out.push('"');
            }
            out.push('}');
        }
        out.push(' ');
        let mut value = String::new();
        s.value.render(&mut value);
        out.push_str(&value);
        out.push('\n');
    }
    out
}

/// Render samples as a JSON document:
/// `{"metrics":[{"name":…,"labels":{…},"value":…},…]}`.
///
/// Hand-rolled (the serde shim has no serializer); values that are
/// exact integers render without a decimal point so counters survive a
/// JSON → u64 round-trip.
pub fn json(samples: &[Sample]) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&s.full_name(), &mut out);
        out.push('"');
        if !s.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json(k, &mut out);
                out.push_str("\":\"");
                escape_json(v, &mut out);
                out.push('"');
            }
            out.push('}');
        }
        out.push_str(",\"value\":");
        s.value.render(&mut out);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Render a finished-span set (as returned by
/// [`Tracer::last_trace`](crate::Tracer::last_trace)) as an indented
/// tree with per-stage durations — the curator-facing request
/// breakdown.
pub fn trace_tree(spans: &[FinishedSpan]) -> String {
    let mut out = String::new();
    if spans.is_empty() {
        return out;
    }
    let root_start = spans[0].start_nanos;
    for span in spans {
        let depth = depth_of(span, spans);
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = writeln!(
            out,
            "{} {}ns (+{}ns)",
            span.name,
            span.duration_nanos(),
            span.start_nanos.saturating_sub(root_start),
        );
    }
    out
}

/// Render a finished-span set as a JSON document:
/// `{"spans":[{"id":…,"parent":…,"name":…,"start_nanos":…,"end_nanos":…},…]}`.
///
/// Spans keep their input order (for [`Tracer::last_trace`] output
/// that is start order), parents riding as ids so a client can
/// rebuild the tree — the machine-readable twin of [`trace_tree`],
/// served by the HTTP edge's `/v1/trace/last`.
///
/// [`Tracer::last_trace`]: crate::Tracer::last_trace
pub fn trace_json(spans: &[FinishedSpan]) -> String {
    let mut out = String::from("{\"spans\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        let _ = write!(out, "{}", span.id);
        out.push_str(",\"parent\":");
        let _ = write!(out, "{}", span.parent);
        out.push_str(",\"name\":\"");
        escape_json(span.name, &mut out);
        let _ = write!(
            out,
            "\",\"start_nanos\":{},\"end_nanos\":{}}}",
            span.start_nanos, span.end_nanos
        );
    }
    out.push_str("]}");
    out
}

fn depth_of(span: &FinishedSpan, spans: &[FinishedSpan]) -> usize {
    let mut depth = 0;
    let mut parent = span.parent;
    // Bounded by the slice length: parent chains in a trace are acyclic.
    while parent != 0 && depth < spans.len() {
        match spans.iter().find(|s| s.id == parent) {
            Some(p) => {
                depth += 1;
                parent = p.parent;
            }
            None => break,
        }
    }
    depth
}

pub(crate) fn escape_label(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn escape_json(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRegistry, SpanHandle, Tracer};
    use std::sync::Arc;

    #[test]
    fn prometheus_families_and_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("evorec_cache_hits_total").add(3);
        reg.gauge("evorec_live_epoch").set(7);
        reg.histogram("evorec_serve_nanos").record(100);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE evorec_cache_hits_total counter"));
        assert!(text.contains("evorec_cache_hits_total 3"));
        assert!(text.contains("# TYPE evorec_live_epoch gauge"));
        assert!(text.contains("# TYPE evorec_serve_nanos summary"));
        assert!(text.contains("evorec_serve_nanos{quantile=\"0.99\"}"));
        assert!(text.contains("evorec_serve_nanos_count 1"));
        assert!(text.contains("evorec_serve_nanos_sum 100"));
        // One TYPE line per family, even with six summary samples.
        assert_eq!(text.matches("# TYPE evorec_serve_nanos ").count(), 1);
    }

    #[test]
    fn json_is_integral_for_counters() {
        let reg = MetricsRegistry::new();
        reg.counter("evorec_x_total").add(41);
        let json = reg.snapshot().render_json();
        assert_eq!(json, "{\"metrics\":[{\"name\":\"evorec_x_total\",\"value\":41}]}");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        let tracer = Arc::new(Tracer::logical().0);
        tracer.start("span\"with\\quirks", SpanHandle::NONE).finish();
        reg.register_source(tracer);
        let snap = reg.snapshot();
        let text = snap.render_prometheus();
        assert!(text.contains("span=\"span\\\"with\\\\quirks\""));
        let json = snap.render_json();
        assert!(json.contains("span\\\"with\\\\quirks"));
    }

    #[test]
    fn trace_tree_indents_children() {
        let (tracer, clock) = Tracer::logical();
        let root = tracer.start("serve", SpanHandle::NONE);
        clock.tick(2);
        let child = tracer.start("mmr", root.handle());
        clock.tick(3);
        child.finish();
        root.finish();
        let tree = trace_tree(&tracer.last_trace());
        assert!(tree.starts_with("serve 5ns (+0ns)\n"));
        assert!(tree.contains("\n  mmr 3ns (+2ns)\n"));
    }
}
