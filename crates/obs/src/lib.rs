//! Unified observability for the evorec serving stack.
//!
//! Every subsystem so far kept its own ad-hoc counters — `CacheStats`
//! lineages, `LogStats` queue depths, the bandit ledger, window-manager
//! publish tallies — with no common registry, no latency distributions,
//! and no export format. This crate is the one place they all meet:
//!
//! * [`MetricsRegistry`] — a sharded, name-keyed registry of atomic
//!   [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s
//!   (p50/p90/p99/max out of a fixed bucket array, lock-free record
//!   path). Existing stats structs plug in through [`MetricsSource`]
//!   without changing how they count.
//! * [`Tracer`] — span-based timing with *explicit* parent handles (no
//!   thread-local magic), producing per-request breakdowns across
//!   ingest → epoch commit → window advance → cache probe → measure
//!   compute → MMR/boost → feedback apply. Disabled mode is
//!   `Option<&Tracer>` = `None`: no allocation, no atomics, no clock
//!   reads.
//! * [`render`] — Prometheus text exposition and a JSON snapshot, so a
//!   future HTTP serving edge just serves bytes.
//! * [`Clock`] — pluggable time. Production uses [`MonotonicClock`];
//!   tests and `--cfg evorec_sched` interleaving models use
//!   [`LogicalClock`] so instrumentation never perturbs bit-identical
//!   replay or the deterministic race harness.
//!
//! # Metric naming grammar
//!
//! `evorec_<subsystem>_<noun>[_<unit>][_total]` — `_total` marks
//! monotonic counters, units are spelled out (`_nanos`, `_bytes`),
//! and high-cardinality dimensions (lineage, window, measure, span)
//! ride in labels, never in the family name.
//!
//! The grammar extends to *series keys* — the per-series identity
//! used by [`MetricsSnapshot::diff`] and the telemetry TSDB: the full
//! exposition name plus the key-sorted label set in Prometheus
//! selector syntax, `name{k1="v1",k2="v2"}` (no braces for a bare
//! series). Derived series wrap the key in a function, e.g.
//! `rate(evorec_cache_hits_total)` for a per-second counter rate —
//! parentheses cannot appear in a raw key, so derived keys never
//! collide with scraped ones.
//!
//! Like every crate in this workspace, it is dependency-free apart from
//! the vendored shims (`sched` for harness-schedulable atomics).

#![warn(missing_docs)]

mod clock;
mod diff;
mod metrics;
pub mod render;
mod source;
mod trace;

pub use clock::{Clock, LogicalClock, MonotonicClock};
pub use diff::{CounterRegression, SeriesDelta, SnapshotDiff};
pub use metrics::{
    bucket_bounds, bucket_index, push_summary, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use render::{trace_json, trace_tree};
pub use source::{MetricsSnapshot, MetricsSource, Sample, SampleKind, SampleValue};
pub use trace::{span, FinishedSpan, SpanGuard, SpanHandle, Tracer};
