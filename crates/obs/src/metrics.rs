//! The sharded metrics registry: atomic counters, gauges, and
//! log-bucketed histograms.
//!
//! Handles are `Arc`s handed out once at registration; the record path
//! (`Counter::inc`, `Histogram::record`, …) touches only its own
//! atomics — never the registry locks — so instrumented hot paths pay
//! a handful of uncontended atomic RMWs and nothing else. The registry
//! itself is only on the path of registration (startup) and snapshot
//! (scrape), both cold.
//!
//! Shard maps are `BTreeMap`s: snapshot iteration is deterministic by
//! construction, so exposition output is stable without a cleansing
//! sort over hash-ordered entries.

use crate::source::{MetricsSnapshot, MetricsSource, Sample};
use sched::sync::atomic::{AtomicU64, Ordering};
use sched::sync::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Number of registry shards (name-hash striped; registration-path
/// contention only, the record path never touches them).
const SHARDS: usize = 8;

/// Total histogram buckets: 16 exact small-value buckets plus 4
/// sub-buckets per power of two up to `u64::MAX` (16 + 60×4 = 256).
pub const HISTOGRAM_BUCKETS: usize = 256;

/// Values below this index exactly (one bucket per integer).
const EXACT_LIMIT: u64 = 16;

/// A monotonic event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        // Independent tallies, read individually at scrape time: no
        // cross-field ordering to publish.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (queue depth, live epoch, resident entries).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the level.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n` (saturating at zero would require a CAS
    /// loop; levels in this workspace are balanced add/sub pairs, so
    /// wrapping semantics are documented rather than defended).
    pub fn sub(&self, n: u64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The bucket a value lands in.
///
/// Values `0..16` get an exact bucket each; larger values share a
/// power-of-two octave split into 4 sub-buckets (2 significant bits),
/// bounding relative quantile error at 12.5% (see
/// [`Histogram::quantile`]).
pub fn bucket_index(value: u64) -> usize {
    if value < EXACT_LIMIT {
        return value as usize;
    }
    // value ≥ 16 ⇒ leading_zeros ≤ 59 ⇒ exponent ∈ 4..=63.
    let exponent = 63 - value.leading_zeros() as usize;
    let sub = ((value >> (exponent - 2)) & 3) as usize;
    EXACT_LIMIT as usize + (exponent - 4) * 4 + sub
}

/// Inclusive `[low, high]` value range of bucket `index`.
///
/// Callers pass indices below [`HISTOGRAM_BUCKETS`]; anything larger is
/// clamped to the top bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if (index as u64) < EXACT_LIMIT {
        return (index as u64, index as u64);
    }
    let off = index.min(HISTOGRAM_BUCKETS - 1) - EXACT_LIMIT as usize;
    let exponent = 4 + off / 4;
    let sub = (off % 4) as u64;
    let width = 1u64 << (exponent - 2);
    let low = (1u64 << exponent) + sub * width;
    (low, low.wrapping_add(width - 1))
}

/// A fixed-size log-bucketed latency/size distribution.
///
/// `record` is lock-free and wait-free on the bucket array: one
/// `fetch_add` per bucket/sum, one `fetch_max`, and a releasing count
/// increment that publishes the sample to snapshot readers.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
    /// Samples recorded. Incremented last with `Release` so a reader
    /// that `Acquire`-loads the count observes every bucket/sum/max
    /// write of the samples it counts (buckets may run *ahead* of the
    /// count mid-record, never behind).
    // lint: publishes
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample. Lock-free; safe from any number of threads.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// A coherent copy of the distribution.
    ///
    /// The snapshot's bucket total, `sum`, and `max` cover **at least**
    /// the samples in its `count` (a record racing the snapshot may
    /// have landed its bucket but not yet its count); quantiles are
    /// computed over the bucket total so the snapshot is internally
    /// consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Acquire);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let buckets: [u64; HISTOGRAM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count,
            sum,
            max,
            buckets,
        }
    }

    /// Estimate the `q`-quantile (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Samples published at snapshot time.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Total samples across the bucket array (≥ `count` if records
    /// raced the snapshot).
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`).
    ///
    /// Returns the midpoint of the bucket holding the rank-`⌈q·n⌉`
    /// sample: exact for values below 16, within 12.5% relative error
    /// otherwise (bucket width is a quarter octave, midpoint halves
    /// it). Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q = 0 means rank 1.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        if rank == total {
            // The target is the largest sample, which is tracked
            // exactly.
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (low, high) = bucket_bounds(i);
                // Midpoint without overflow; the top bucket's cap is
                // the recorded max, which is tighter than u64::MAX.
                let mid = low + (high - low) / 2;
                return mid.min(self.max);
            }
        }
        self.max
    }
}

/// A named metric handle held by a registry shard.
#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One registry shard: a name-keyed, deterministically ordered map.
#[derive(Default)]
struct Shard {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

/// The sharded metric registry plus pluggable pull-time sources.
///
/// Two populations feed a [`snapshot`](MetricsRegistry::snapshot):
///
/// * **native metrics** — counters/gauges/histograms registered by
///   name, recorded into continuously;
/// * **sources** — existing stats structs ([`MetricsSource`]
///   implementors) sampled at scrape time, so subsystems keep their
///   own counters and the registry adapts rather than replaces them.
#[derive(Default)]
pub struct MetricsRegistry {
    shards: [Shard; SHARDS],
    sources: RwLock<Vec<Arc<dyn MetricsSource>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn shard(&self, name: &str) -> &Shard {
        // FNV-1a over the name: deterministic, allocation-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// If `name` is already registered as a different kind the caller
    /// gets a fresh detached handle (recorded values are visible to it
    /// but not to snapshots) — a deliberate no-panic degradation, since
    /// registration runs on serving setup paths.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.register(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => Arc::new(Counter::new()),
        }
    }

    /// The gauge registered under `name`, creating it on first use
    /// (kind-mismatch behaviour as for [`counter`](Self::counter)).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.register(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => Arc::new(Gauge::new()),
        }
    }

    /// The histogram registered under `name`, creating it on first use
    /// (kind-mismatch behaviour as for [`counter`](Self::counter)).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.register(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => Arc::new(Histogram::new()),
        }
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let shard = self.shard(name);
        if let Some(m) = shard.metrics.read().get(name) {
            return m.clone();
        }
        let mut map = shard.metrics.write();
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Attach a pull-time source, sampled on every snapshot.
    pub fn register_source(&self, source: Arc<dyn MetricsSource>) {
        self.sources.write().push(source);
    }

    /// Sample everything — native metrics and registered sources —
    /// into one deterministic, name-sorted snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut samples = Vec::new();
        for shard in &self.shards {
            for (name, metric) in shard.metrics.read().iter() {
                match metric {
                    Metric::Counter(c) => {
                        samples.push(Sample::counter(name, c.get()));
                    }
                    Metric::Gauge(g) => {
                        samples.push(Sample::gauge(name, g.get()));
                    }
                    Metric::Histogram(h) => {
                        push_summary(&mut samples, name, &[], &h.snapshot());
                    }
                }
            }
        }
        for source in self.sources.read().iter() {
            source.collect(&mut samples);
        }
        samples.sort_by(|a, b| {
            (&a.family, &a.suffix, &a.labels).cmp(&(&b.family, &b.suffix, &b.labels))
        });
        MetricsSnapshot { samples }
    }
}

/// Expand a histogram snapshot into Prometheus-summary-shaped samples
/// (`{quantile=…}`, `_sum`, `_count`, `_max`) under `family`, tagged
/// with `labels`.
/// Flatten one histogram snapshot into the six summary samples of the
/// exposition format (`quantile="0.5|0.9|0.99"`, `_sum`, `_count`,
/// `_max`), each carrying `labels` — the helper every
/// [`MetricsSource`] with labelled latency histograms uses (the
/// tracer's per-stage summaries, the serve edge's per-endpoint
/// request latencies).
pub fn push_summary(
    out: &mut Vec<Sample>,
    family: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
        let mut s = Sample::summary_quantile(family, tag, snap.quantile(q));
        s.labels.extend(labels.iter().cloned());
        // Keep the quantile label last-stable: sort by key for
        // deterministic exposition regardless of insertion order.
        s.labels.sort();
        out.push(s);
    }
    for (suffix, value) in [("_sum", snap.sum), ("_count", snap.count), ("_max", snap.max)] {
        let mut s = Sample::summary_part(family, suffix, value);
        s.labels.extend(labels.iter().cloned());
        s.labels.sort();
        out.push(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_sixteen() {
        for v in 0..16u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_bounds(i), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_partition_the_u64_line() {
        // Consecutive buckets tile without gap or overlap.
        let mut expected_low = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let (low, high) = bucket_bounds(i);
            assert_eq!(low, expected_low, "bucket {i} low");
            assert!(high >= low, "bucket {i} ordering");
            if i + 1 == HISTOGRAM_BUCKETS {
                assert_eq!(high, u64::MAX);
                break;
            }
            expected_low = high + 1;
        }
    }

    #[test]
    fn every_value_lands_in_its_bucket() {
        for v in [
            0,
            1,
            15,
            16,
            17,
            19,
            20,
            31,
            32,
            1000,
            u64::from(u32::MAX),
            1 << 62,
            u64::MAX,
        ] {
            let (low, high) = bucket_bounds(bucket_index(v));
            assert!(low <= v && v <= high, "value {v} in [{low}, {high}]");
        }
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("evorec_test_events_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("evorec_test_depth");
        g.set(7);
        g.add(3);
        g.sub(2);
        assert_eq!(g.get(), 8);
        // Same name, same handle.
        assert_eq!(reg.counter("evorec_test_events_total").get(), 5);
    }

    #[test]
    fn kind_mismatch_degrades_to_detached_handle() {
        let reg = MetricsRegistry::new();
        reg.counter("evorec_test_x").inc();
        let g = reg.gauge("evorec_test_x");
        g.set(99);
        // Snapshot still sees the original counter, not the detached gauge.
        let snap = reg.snapshot();
        let vals: Vec<u64> = snap
            .samples
            .iter()
            .filter(|s| s.family == "evorec_test_x")
            .map(|s| s.value.as_u64())
            .collect();
        assert_eq!(vals, vec![1]);
    }

    #[test]
    fn histogram_quantiles_over_known_data() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        let p50 = snap.quantile(0.5);
        let p99 = snap.quantile(0.99);
        assert!((38..=63).contains(&p50), "p50 = {p50}");
        assert!((87..=100).contains(&p99), "p99 = {p99}");
        assert_eq!(snap.quantile(1.0), 100);
    }

    #[test]
    fn snapshot_is_name_sorted_and_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter("evorec_b_total").inc();
        reg.counter("evorec_a_total").inc();
        reg.histogram("evorec_c_nanos").record(5);
        let a = reg.snapshot();
        let b = reg.snapshot();
        let names: Vec<String> = a.samples.iter().map(|s| s.full_name()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(a.render_prometheus(), b.render_prometheus());
    }
}
