//! The sample model and the [`MetricsSource`] adapter trait.
//!
//! A [`Sample`] is one exposition line: a metric family, an optional
//! family suffix (`_sum`, `_count`, …), a label set, and a value.
//! Native registry metrics and pull-time sources both flatten into
//! samples, so the renderers have exactly one input shape.

use std::fmt::Write as _;

/// What a sample's family is, for `# TYPE` exposition lines.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SampleKind {
    /// Monotonic count (`_total` by naming convention).
    Counter,
    /// Point-in-time level.
    Gauge,
    /// Part of a quantile summary (`{quantile=…}`, `_sum`, `_count`,
    /// `_max`).
    Summary,
}

impl SampleKind {
    pub(crate) fn prometheus_type(self) -> &'static str {
        match self {
            SampleKind::Counter => "counter",
            SampleKind::Gauge => "gauge",
            SampleKind::Summary => "summary",
        }
    }
}

/// A sample's value. Counters and histogram parts are integral; gauges
/// derived from ratios may be floating.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum SampleValue {
    /// An exact integer (rendered without a decimal point).
    Int(u64),
    /// A floating value (rendered with up to 6 significant decimals).
    Float(f64),
}

impl SampleValue {
    /// The value as `u64` (floats truncate; for tests and thresholds).
    pub fn as_u64(self) -> u64 {
        match self {
            SampleValue::Int(v) => v,
            SampleValue::Float(v) => v as u64,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            SampleValue::Int(v) => v as f64,
            SampleValue::Float(v) => v,
        }
    }

    pub(crate) fn render(self, out: &mut String) {
        match self {
            SampleValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            SampleValue::Float(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
}

/// One exposition line.
#[derive(Clone, PartialEq, Debug)]
pub struct Sample {
    /// Metric family, e.g. `evorec_cache_hits_total`.
    pub family: String,
    /// Family suffix appended to the exposition name (`""`, `_sum`,
    /// `_count`, `_max`).
    pub suffix: &'static str,
    /// Label pairs, key-sorted for deterministic output.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
    /// Family kind for `# TYPE` lines.
    pub kind: SampleKind,
}

impl Sample {
    /// A counter sample.
    pub fn counter(family: &str, value: u64) -> Sample {
        Sample {
            family: family.to_string(),
            suffix: "",
            labels: Vec::new(),
            value: SampleValue::Int(value),
            kind: SampleKind::Counter,
        }
    }

    /// A gauge sample.
    pub fn gauge(family: &str, value: u64) -> Sample {
        Sample {
            family: family.to_string(),
            suffix: "",
            labels: Vec::new(),
            value: SampleValue::Int(value),
            kind: SampleKind::Gauge,
        }
    }

    /// A floating gauge sample (rates, means).
    pub fn gauge_f64(family: &str, value: f64) -> Sample {
        Sample {
            family: family.to_string(),
            suffix: "",
            labels: Vec::new(),
            value: SampleValue::Float(value),
            kind: SampleKind::Gauge,
        }
    }

    /// A summary quantile sample (`family{quantile="tag"}`).
    pub fn summary_quantile(family: &str, tag: &str, value: u64) -> Sample {
        Sample {
            family: family.to_string(),
            suffix: "",
            labels: vec![("quantile".to_string(), tag.to_string())],
            value: SampleValue::Int(value),
            kind: SampleKind::Summary,
        }
    }

    /// A summary part sample (`family_sum`, `family_count`,
    /// `family_max`).
    pub fn summary_part(family: &str, suffix: &'static str, value: u64) -> Sample {
        Sample {
            family: family.to_string(),
            suffix,
            labels: Vec::new(),
            value: SampleValue::Int(value),
            kind: SampleKind::Summary,
        }
    }

    /// Attach a label (builder style; keys are sorted at snapshot
    /// time).
    pub fn with_label(mut self, key: &str, value: &str) -> Sample {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }

    /// The exposition name: family plus suffix.
    pub fn full_name(&self) -> String {
        let mut name = self.family.clone();
        name.push_str(self.suffix);
        name
    }

    /// The sample's *series key*: the full exposition name plus its
    /// label set in Prometheus selector syntax,
    /// `name{k1="v1",k2="v2"}` (labels key-sorted, values escaped,
    /// no braces for a bare series). Two samples describe the same
    /// series over time exactly when their keys are equal — this is
    /// the identity [`MetricsSnapshot::diff`](crate::MetricsSnapshot)
    /// and the telemetry TSDB key by.
    pub fn series_key(&self) -> String {
        let mut key = self.full_name();
        if !self.labels.is_empty() {
            let mut labels = self.labels.clone();
            labels.sort();
            key.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    key.push(',');
                }
                key.push_str(k);
                key.push_str("=\"");
                crate::render::escape_label(v, &mut key);
                key.push('"');
            }
            key.push('}');
        }
        key
    }

    /// True when this sample's value is monotonically non-decreasing
    /// over a series' lifetime: counters, and the `_sum`/`_count`
    /// parts of a summary. Rate derivation is only meaningful (and a
    /// decrease only a defect) for these.
    pub fn is_monotonic(&self) -> bool {
        match self.kind {
            SampleKind::Counter => true,
            SampleKind::Summary => self.suffix == "_sum" || self.suffix == "_count",
            SampleKind::Gauge => false,
        }
    }
}

/// Adapts an existing stats-bearing subsystem into the registry.
///
/// Implementors are sampled at snapshot time (pull model): they read
/// their own counters and emit absolute values, so no state is
/// duplicated and nothing can drift or double-count. Implementations
/// live next to the stats they export (`ReportCache`, `BoundedLog`,
/// `WindowManager`, `AdaptiveRecommender`, [`Tracer`](crate::Tracer)).
pub trait MetricsSource: Send + Sync {
    /// Append current samples to `out`. Label sets should be
    /// key-sorted or order-stable; family names follow the
    /// `evorec_<subsystem>_<noun>[_<unit>][_total]` grammar.
    fn collect(&self, out: &mut Vec<Sample>);
}

/// A deterministic, name-sorted point-in-time sample set.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All samples, sorted by `(family, suffix, labels)`.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// Prometheus text exposition (see [`crate::render::prometheus`]).
    pub fn render_prometheus(&self) -> String {
        crate::render::prometheus(&self.samples)
    }

    /// JSON object rendering (see [`crate::render::json`]).
    pub fn render_json(&self) -> String {
        crate::render::json(&self.samples)
    }

    /// The first sample matching `name` (full exposition name) and
    /// containing every label in `labels`.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples.iter().find(|s| {
            s.full_name() == name
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
        })
    }

    /// The value of the first sample matching `name` (no label
    /// filter), as `u64`.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.find(name, &[]).map(|s| s.value.as_u64())
    }
}
