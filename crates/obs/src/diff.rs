//! Snapshot-to-snapshot differencing with a counter-monotonicity
//! check.
//!
//! A scrape loop that derives rates from two successive
//! [`MetricsSnapshot`]s needs two guarantees the raw sample lists do
//! not give it: a stable per-series identity (the
//! [`series_key`](Sample::series_key) — name plus sorted label set)
//! and the assurance that a counter never went *down* between the two
//! snapshots. A decreasing counter is always a defect somewhere — a
//! source re-registering from zero, a wrapping subtraction, a stats
//! struct resetting under a consumer — and silently deriving a
//! negative (or hugely wrapped) rate from it would poison every
//! rollup downstream. [`MetricsSnapshot::diff`] therefore surfaces
//! every decrease on a monotonic series as an explicit
//! [`CounterRegression`] instead of a delta, so the caller can skip
//! the rate, count the defect, and keep going.

use crate::source::{MetricsSnapshot, Sample, SampleKind, SampleValue};
use std::collections::BTreeMap;

/// One series present in both snapshots, with its two readings.
#[derive(Clone, Debug)]
pub struct SeriesDelta {
    /// The series key (see [`Sample::series_key`]).
    pub key: String,
    /// The family kind (shared by both readings).
    pub kind: SampleKind,
    /// True for counter-like series (see [`Sample::is_monotonic`]).
    pub monotonic: bool,
    /// The older reading.
    pub previous: SampleValue,
    /// The newer reading.
    pub current: SampleValue,
}

impl SeriesDelta {
    /// `current - previous` as a float (negative for decreases).
    pub fn delta(&self) -> f64 {
        self.current.as_f64() - self.previous.as_f64()
    }
}

/// A monotonic series that *decreased* between the two snapshots —
/// always a defect in the emitting source, never a valid rate input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterRegression {
    /// The offending series key.
    pub key: String,
    /// The older (larger) reading.
    pub previous: u64,
    /// The newer (smaller) reading.
    pub current: u64,
}

/// The difference between two snapshots of the same registry.
#[derive(Clone, Debug, Default)]
pub struct SnapshotDiff {
    /// Series present in both snapshots, key-sorted. Monotonic series
    /// that regressed are *not* listed here (see
    /// [`regressions`](SnapshotDiff::regressions)).
    pub deltas: Vec<SeriesDelta>,
    /// Series keys present only in the newer snapshot (new sources or
    /// first-touch registrations), key-sorted.
    pub appeared: Vec<String>,
    /// Series keys present only in the older snapshot (a source
    /// dropped out), key-sorted.
    pub vanished: Vec<String>,
    /// Monotonic series that decreased — flagged so rate derivation
    /// can never go negative silently, key-sorted.
    pub regressions: Vec<CounterRegression>,
}

impl MetricsSnapshot {
    /// Diff this (newer) snapshot against `previous` (older), keyed by
    /// [`Sample::series_key`].
    ///
    /// Monotonic series (counters and summary `_sum`/`_count` parts)
    /// that decreased are routed into
    /// [`regressions`](SnapshotDiff::regressions) instead of
    /// [`deltas`](SnapshotDiff::deltas); gauges and quantiles may move
    /// in either direction and always produce a delta. If a key
    /// somehow appears more than once in a snapshot, the last
    /// occurrence wins (snapshots are sorted, so this is
    /// deterministic).
    pub fn diff(&self, previous: &MetricsSnapshot) -> SnapshotDiff {
        let mut old: BTreeMap<String, &Sample> = BTreeMap::new();
        for s in &previous.samples {
            old.insert(s.series_key(), s);
        }
        let mut new_keys: BTreeMap<String, ()> = BTreeMap::new();
        let mut diff = SnapshotDiff::default();
        for s in &self.samples {
            let key = s.series_key();
            new_keys.insert(key.clone(), ());
            let Some(prev) = old.get(&key) else {
                diff.appeared.push(key);
                continue;
            };
            let monotonic = s.is_monotonic();
            if monotonic && s.value.as_u64() < prev.value.as_u64() {
                diff.regressions.push(CounterRegression {
                    key,
                    previous: prev.value.as_u64(),
                    current: s.value.as_u64(),
                });
                continue;
            }
            diff.deltas.push(SeriesDelta {
                key,
                kind: s.kind,
                monotonic,
                previous: prev.value,
                current: s.value,
            });
        }
        for key in old.keys() {
            if !new_keys.contains_key(key) {
                diff.vanished.push(key.clone());
            }
        }
        // Snapshots are `(family, suffix, labels)`-sorted, which is not
        // byte order of the rendered key; re-sort for the documented
        // key-sorted contract.
        diff.deltas.sort_by(|a, b| a.key.cmp(&b.key));
        diff.appeared.sort();
        diff.regressions.sort_by(|a, b| a.key.cmp(&b.key));
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn snap_of(samples: Vec<Sample>) -> MetricsSnapshot {
        MetricsSnapshot { samples }
    }

    #[test]
    fn series_key_is_name_plus_sorted_labels() {
        let bare = Sample::counter("evorec_x_total", 1);
        assert_eq!(bare.series_key(), "evorec_x_total");
        let labelled = Sample::gauge("evorec_depth", 3)
            .with_label("window", "band")
            .with_label("lineage", "a\"b");
        assert_eq!(
            labelled.series_key(),
            "evorec_depth{lineage=\"a\\\"b\",window=\"band\"}"
        );
    }

    #[test]
    fn increasing_counter_yields_delta() {
        let old = snap_of(vec![Sample::counter("evorec_hits_total", 10)]);
        let new = snap_of(vec![Sample::counter("evorec_hits_total", 25)]);
        let diff = new.diff(&old);
        assert_eq!(diff.deltas.len(), 1);
        assert!(diff.deltas[0].monotonic);
        assert_eq!(diff.deltas[0].delta(), 15.0);
        assert!(diff.regressions.is_empty());
    }

    #[test]
    fn decreasing_counter_is_flagged_not_dated() {
        let old = snap_of(vec![Sample::counter("evorec_hits_total", 25)]);
        let new = snap_of(vec![Sample::counter("evorec_hits_total", 10)]);
        let diff = new.diff(&old);
        assert!(diff.deltas.is_empty(), "regression must not masquerade as a delta");
        assert_eq!(
            diff.regressions,
            vec![CounterRegression {
                key: "evorec_hits_total".to_string(),
                previous: 25,
                current: 10,
            }]
        );
    }

    #[test]
    fn summary_count_is_monotonic_quantile_is_not() {
        let old = snap_of(vec![
            Sample::summary_part("evorec_nanos", "_count", 9),
            Sample::summary_quantile("evorec_nanos", "0.99", 100),
        ]);
        let new = snap_of(vec![
            Sample::summary_part("evorec_nanos", "_count", 4),
            Sample::summary_quantile("evorec_nanos", "0.99", 50),
        ]);
        let diff = new.diff(&old);
        // The decreasing _count regresses; the falling quantile is a
        // legitimate movement.
        assert_eq!(diff.regressions.len(), 1);
        assert_eq!(diff.regressions[0].key, "evorec_nanos_count");
        assert_eq!(diff.deltas.len(), 1);
        assert!(!diff.deltas[0].monotonic);
        assert_eq!(diff.deltas[0].delta(), -50.0);
    }

    #[test]
    fn gauges_move_freely_and_membership_changes_are_reported() {
        let old = snap_of(vec![
            Sample::gauge("evorec_depth", 8),
            Sample::counter("evorec_gone_total", 1),
        ]);
        let new = snap_of(vec![
            Sample::gauge("evorec_depth", 3),
            Sample::counter("evorec_new_total", 1),
        ]);
        let diff = new.diff(&old);
        assert_eq!(diff.deltas.len(), 1);
        assert_eq!(diff.deltas[0].delta(), -5.0);
        assert_eq!(diff.appeared, vec!["evorec_new_total".to_string()]);
        assert_eq!(diff.vanished, vec!["evorec_gone_total".to_string()]);
        assert!(diff.regressions.is_empty());
    }

    #[test]
    fn registry_snapshots_roundtrip_through_diff() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("evorec_events_total");
        let g = reg.gauge("evorec_live");
        c.add(5);
        g.set(2);
        let old = reg.snapshot();
        c.add(7);
        g.set(1);
        let new = reg.snapshot();
        let diff = new.diff(&old);
        assert_eq!(diff.deltas.len(), 2);
        let events = diff
            .deltas
            .iter()
            .find(|d| d.key == "evorec_events_total")
            .expect("counter present");
        assert_eq!(events.delta(), 7.0);
        assert!(diff.regressions.is_empty());
        // Identical snapshots diff to all-zero deltas.
        let same = new.diff(&new);
        assert!(same.deltas.iter().all(|d| d.delta() == 0.0));
        assert!(same.appeared.is_empty() && same.vanished.is_empty());
    }
}
