//! Span tracing with explicit parent handles.
//!
//! No thread-local ambient context: a caller that wants its child work
//! attributed passes a [`SpanHandle`] down the call chain, exactly like
//! any other argument. That keeps attribution correct across the
//! worker-thread hops this stack is full of (ingest loop → epoch sinks
//! → window advances; serve → cache probe → measure compute), where
//! TLS-based tracers silently mis-parent.
//!
//! Disabled mode is the absence of a tracer: instrumented code holds
//! `Option<&Tracer>` and calls [`span`], which for `None` returns an
//! inert guard — no allocation, no atomics, no clock read. The <5%
//! overhead acceptance bound on warm `recommend` is benched against
//! exactly this path (`cargo bench -p evorec-bench --bench obs`).

use crate::clock::Clock;
use crate::metrics::{push_summary, Histogram};
use crate::source::{MetricsSource, Sample};
use crate::{LogicalClock, MonotonicClock};
use sched::sync::atomic::{AtomicU64, Ordering};
use sched::sync::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Finished spans retained for breakdown rendering (per tracer).
const DEFAULT_RING_CAPACITY: usize = 1024;

/// An opaque reference to an open span, passed explicitly to child
/// work. The zero handle means "no parent" — both for roots and for
/// the disabled-tracer case, so call sites never branch on tracing
/// being on.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct SpanHandle(u64);

impl SpanHandle {
    /// The "no parent / tracing off" handle.
    pub const NONE: SpanHandle = SpanHandle(0);

    /// True when this handle names a real open span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One completed span, as retained in the tracer's ring.
#[derive(Clone, Debug)]
pub struct FinishedSpan {
    /// This span's id (never zero).
    pub id: u64,
    /// Parent span id, zero for roots.
    pub parent: u64,
    /// Stage name (`"serve"`, `"cache_probe"`, …).
    pub name: &'static str,
    /// Clock reading at start.
    pub start_nanos: u64,
    /// Clock reading at finish (≥ start).
    pub end_nanos: u64,
}

impl FinishedSpan {
    /// The span's duration.
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

struct SpanRing {
    capacity: usize,
    spans: VecDeque<FinishedSpan>,
}

/// The span collector: hands out span guards, aggregates per-stage
/// duration histograms, and retains a bounded ring of finished spans
/// for request-breakdown rendering.
///
/// Timing goes through the injected [`Clock`], so a [`LogicalClock`]
/// tracer is fully deterministic — usable inside `--cfg evorec_sched`
/// models and bit-identical-replay tests without perturbing either.
pub struct Tracer {
    clock: Arc<dyn Clock>,
    next_id: AtomicU64,
    per_stage: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    ring: Mutex<SpanRing>,
}

impl Tracer {
    /// A tracer over an explicit clock.
    pub fn new(clock: Arc<dyn Clock>) -> Tracer {
        Tracer {
            clock,
            next_id: AtomicU64::new(1),
            per_stage: RwLock::new(BTreeMap::new()),
            ring: Mutex::new(SpanRing {
                capacity: DEFAULT_RING_CAPACITY,
                spans: VecDeque::new(),
            }),
        }
    }

    /// A production tracer over a [`MonotonicClock`].
    pub fn monotonic() -> Tracer {
        Tracer::new(Arc::new(MonotonicClock::new()))
    }

    /// A deterministic tracer over a fresh [`LogicalClock`] (returned
    /// alongside so the test can drive it).
    pub fn logical() -> (Tracer, Arc<LogicalClock>) {
        let clock = Arc::new(LogicalClock::new());
        (Tracer::new(Arc::clone(&clock) as Arc<dyn Clock>), clock)
    }

    /// Retain at most `capacity` finished spans for breakdowns.
    pub fn with_ring_capacity(self, capacity: usize) -> Tracer {
        {
            let mut ring = self.ring.lock();
            ring.capacity = capacity.max(1);
        }
        self
    }

    /// The tracer's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Open a span named `name` under `parent`
    /// ([`SpanHandle::NONE`] for a root). The guard records on
    /// [`finish`](SpanGuard::finish) or drop.
    pub fn start(&self, name: &'static str, parent: SpanHandle) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            live: Some(LiveSpan {
                tracer: self,
                id,
                parent: parent.0,
                name,
                start_nanos: self.clock.now_nanos(),
            }),
        }
    }

    fn record(&self, span: FinishedSpan) {
        let duration = span.duration_nanos();
        let hist = {
            let stages = self.per_stage.read();
            stages.get(span.name).cloned()
        };
        let hist = match hist {
            Some(h) => h,
            None => {
                let mut stages = self.per_stage.write();
                Arc::clone(
                    stages
                        .entry(span.name)
                        .or_insert_with(|| Arc::new(Histogram::new())),
                )
            }
        };
        hist.record(duration);
        let mut ring = self.ring.lock();
        if ring.spans.len() == ring.capacity {
            ring.spans.pop_front();
        }
        ring.spans.push_back(span);
    }

    /// The duration histogram for stage `name`, if any span of that
    /// name has finished.
    pub fn stage(&self, name: &str) -> Option<Arc<Histogram>> {
        self.per_stage.read().get(name).cloned()
    }

    /// All retained finished spans, oldest first.
    pub fn finished(&self) -> Vec<FinishedSpan> {
        self.ring.lock().spans.iter().cloned().collect()
    }

    /// The most recently finished *root* span together with its
    /// retained descendants, in finish order — the per-request
    /// breakdown (render it with [`crate::render::trace_tree`]).
    pub fn last_trace(&self) -> Vec<FinishedSpan> {
        let spans = self.finished();
        let root = match spans.iter().rev().find(|s| s.parent == 0) {
            Some(r) => r.clone(),
            None => return Vec::new(),
        };
        let mut keep: Vec<FinishedSpan> = vec![root.clone()];
        let mut ids: Vec<u64> = vec![root.id];
        // Finish order guarantees parents may finish after children;
        // sweep until closed over the descendant set.
        let mut grew = true;
        while grew {
            grew = false;
            for s in &spans {
                if ids.contains(&s.parent) && !ids.contains(&s.id) {
                    ids.push(s.id);
                    keep.push(s.clone());
                    grew = true;
                }
            }
        }
        keep.sort_by_key(|s| (s.start_nanos, s.id));
        keep
    }
}

impl MetricsSource for Tracer {
    fn collect(&self, out: &mut Vec<Sample>) {
        let stages = self.per_stage.read();
        for (name, hist) in stages.iter() {
            let labels = vec![("span".to_string(), (*name).to_string())];
            push_summary(out, "evorec_trace_span_nanos", &labels, &hist.snapshot());
        }
    }
}

struct LiveSpan<'t> {
    tracer: &'t Tracer,
    id: u64,
    parent: u64,
    name: &'static str,
    start_nanos: u64,
}

/// An open span (or an inert placeholder when tracing is off).
///
/// Records on [`finish`](SpanGuard::finish) or on drop, whichever
/// comes first — RAII keeps early returns honest.
pub struct SpanGuard<'t> {
    live: Option<LiveSpan<'t>>,
}

impl SpanGuard<'_> {
    /// An inert guard: [`handle`](SpanGuard::handle) is
    /// [`SpanHandle::NONE`], finishing is a no-op.
    pub fn disabled() -> SpanGuard<'static> {
        SpanGuard { live: None }
    }

    /// The handle child work should use as its parent.
    pub fn handle(&self) -> SpanHandle {
        match &self.live {
            Some(s) => SpanHandle(s.id),
            None => SpanHandle::NONE,
        }
    }

    /// Close the span now, recording its duration.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if let Some(s) = self.live.take() {
            let end_nanos = s.tracer.clock.now_nanos();
            s.tracer.record(FinishedSpan {
                id: s.id,
                parent: s.parent,
                name: s.name,
                start_nanos: s.start_nanos,
                end_nanos,
            });
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// Open a span if tracing is on; the universal instrumentation entry
/// point. With `tracer == None` this is a handful of moves — no
/// allocation, no atomic, no clock read — which is what the
/// zero-overhead-when-disabled guarantee rests on.
pub fn span<'t>(
    tracer: Option<&'t Tracer>,
    name: &'static str,
    parent: SpanHandle,
) -> SpanGuard<'t> {
    match tracer {
        Some(t) => t.start(name, parent),
        None => SpanGuard { live: None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let guard = span(None, "serve", SpanHandle::NONE);
        assert_eq!(guard.handle(), SpanHandle::NONE);
        guard.finish();
    }

    #[test]
    fn spans_record_logical_durations() {
        let (tracer, clock) = Tracer::logical();
        let root = tracer.start("serve", SpanHandle::NONE);
        clock.tick(10);
        let child = tracer.start("cache_probe", root.handle());
        clock.tick(5);
        child.finish();
        clock.tick(1);
        root.finish();

        let probe = tracer.stage("cache_probe").expect("stage recorded");
        assert_eq!(probe.count(), 1);
        assert_eq!(probe.quantile(1.0), 5);
        let serve = tracer.stage("serve").expect("stage recorded");
        assert_eq!(serve.quantile(1.0), 16);

        let trace = tracer.last_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].name, "serve");
        assert_eq!(trace[1].name, "cache_probe");
        assert_eq!(trace[1].parent, trace[0].id);
    }

    #[test]
    fn drop_records_like_finish() {
        let (tracer, clock) = Tracer::logical();
        {
            let _g = tracer.start("epoch", SpanHandle::NONE);
            clock.tick(3);
        }
        assert_eq!(
            tracer.stage("epoch").expect("stage recorded").quantile(1.0),
            3
        );
    }

    #[test]
    fn last_trace_tracks_the_latest_root() {
        let (tracer, clock) = Tracer::logical();
        for _ in 0..3 {
            let root = tracer.start("serve", SpanHandle::NONE);
            let child = tracer.start("mmr", root.handle());
            clock.tick(2);
            child.finish();
            root.finish();
        }
        let trace = tracer.last_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(tracer.finished().len(), 6);
    }

    #[test]
    fn ring_is_bounded() {
        let (tracer, _clock) = Tracer::logical();
        let tracer = tracer.with_ring_capacity(4);
        for _ in 0..10 {
            tracer.start("s", SpanHandle::NONE).finish();
        }
        assert_eq!(tracer.finished().len(), 4);
    }
}
