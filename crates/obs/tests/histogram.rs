//! Histogram correctness: bucket geometry at the boundaries, and a
//! property-based error bound on the quantile estimator.

use evorec_obs::{bucket_bounds, bucket_index, Histogram, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// Power-of-two boundaries are where log-bucket schemes go wrong:
/// check every edge of every octave up to 2^20 lands in a bucket whose
/// bounds contain it, and that the bucket edges themselves are exact.
#[test]
fn octave_boundaries_land_inside_their_buckets() {
    for exp in 4..=20u32 {
        let base = 1u64 << exp;
        for v in [base - 1, base, base + 1] {
            let (low, high) = bucket_bounds(bucket_index(v));
            assert!(low <= v && v <= high, "{v} outside [{low}, {high}]");
        }
        // An octave's first bucket starts exactly at the power of two.
        let (low, _) = bucket_bounds(bucket_index(base));
        assert_eq!(low, base, "octave 2^{exp} must open a bucket");
    }
}

/// The extremes of the value line.
#[test]
fn extreme_values_are_representable() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    let (_, high) = bucket_bounds(HISTOGRAM_BUCKETS - 1);
    assert_eq!(high, u64::MAX);
    let h = Histogram::new();
    h.record(0);
    h.record(u64::MAX);
    let snap = h.snapshot();
    assert_eq!(snap.count, 2);
    assert_eq!(snap.max, u64::MAX);
    assert_eq!(snap.quantile(0.0), 0);
    // The top estimate is clamped to the observed max.
    assert_eq!(snap.quantile(1.0), u64::MAX);
}

/// Bucket index is monotone in the value: a histogram can never rank
/// a smaller sample above a larger one.
#[test]
fn bucket_index_is_monotone() {
    let mut last = 0usize;
    let mut v = 0u64;
    while v < (1 << 24) {
        let i = bucket_index(v);
        assert!(i >= last, "index regressed at {v}");
        last = i;
        v += 97; // prime stride: hits every sub-bucket eventually
    }
}

proptest! {
    /// Quantile estimates stay within the documented error bound of a
    /// true (sorted-data) quantile: exact for samples below 16, within
    /// 12.5% relative error above.
    #[test]
    fn quantile_error_is_bounded(
        samples in prop::collection::vec(0u64..1_000_000, 1..200),
        q_mille in 0u64..=1000,
    ) {
        let q = q_mille as f64 / 1000.0;
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let truth = sorted[(rank - 1) as usize];
        let estimate = h.quantile(q);
        if truth < 16 {
            prop_assert_eq!(estimate, truth);
        } else {
            let bound = truth / 8 + 1; // 12.5%, integer-rounded up
            let err = estimate.abs_diff(truth);
            prop_assert!(
                err <= bound,
                "q={} truth={} estimate={} err={} bound={}",
                q, truth, estimate, err, bound
            );
        }
    }

    /// Count/sum/max always agree with the recorded data when reads
    /// are quiescent.
    #[test]
    fn snapshot_totals_match_input(samples in prop::collection::vec(0u64..10_000, 0..100)) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.total(), samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.max, samples.iter().copied().max().unwrap_or(0));
    }
}
