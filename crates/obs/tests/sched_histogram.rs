//! Interleaving models of the lock-free histogram record path: under
//! `--cfg evorec_sched` the harness enumerates bounded schedules of
//! concurrent `record()` calls, proving no interleaving loses a sample
//! or tears a bucket; under the default build the same closures run
//! once as concurrency smoke tests.
//!
//! A snapshot reads the full 256-bucket array — hundreds of scheduling
//! points under the harness — so the models bound preemptions to keep
//! exploration tractable while still covering every record/record and
//! record/snapshot race window.

use evorec_obs::{bucket_index, Histogram};
use std::sync::Arc;

fn bounded() -> sched::Builder {
    sched::Builder {
        preemption_bound: Some(2),
        ..Default::default()
    }
}

/// Two racing recorders: after both join, every sample is present in
/// exactly one bucket and the count/sum/max all balance — in every
/// explored interleaving.
#[test]
fn concurrent_record_never_loses_a_sample() {
    let report = bounded().explore(|| {
        let hist = Arc::new(Histogram::new());
        let a = {
            let hist = Arc::clone(&hist);
            sched::thread::spawn(move || hist.record(3))
        };
        let b = {
            let hist = Arc::clone(&hist);
            sched::thread::spawn(move || hist.record(100))
        };
        a.join().unwrap();
        b.join().unwrap();
        let snap = hist.snapshot();
        assert_eq!(snap.count, 2, "no record may be lost");
        assert_eq!(snap.total(), 2, "buckets hold exactly the samples");
        assert_eq!(snap.buckets[bucket_index(3)], 1);
        assert_eq!(snap.buckets[bucket_index(100)], 1);
        assert_eq!(snap.sum, 103);
        assert_eq!(snap.max, 100);
    });
    assert!(report.schedules >= 1);
    if cfg!(evorec_sched) {
        assert!(report.schedules > 1, "the race has multiple interleavings");
    }
}

/// A snapshot racing a recorder is always coherent: the bucket total
/// covers at least the published count (buckets run ahead of the
/// count, never behind), and once the recorder joins the totals are
/// exact.
#[test]
fn snapshot_racing_record_is_coherent() {
    let report = bounded().explore(|| {
        let hist = Arc::new(Histogram::new());
        hist.record(7);
        let writer = {
            let hist = Arc::clone(&hist);
            sched::thread::spawn(move || hist.record(20))
        };
        let reader = {
            let hist = Arc::clone(&hist);
            sched::thread::spawn(move || hist.snapshot())
        };
        let mid = reader.join().unwrap();
        writer.join().unwrap();
        // Mid-race coherence: count never exceeds what the buckets hold.
        assert!(mid.count >= 1 && mid.count <= 2);
        assert!(
            mid.total() >= mid.count,
            "published count ({}) must be covered by buckets ({})",
            mid.count,
            mid.total()
        );
        // Quiescent exactness.
        let end = hist.snapshot();
        assert_eq!(end.count, 2);
        assert_eq!(end.total(), 2);
        assert_eq!(end.sum, 27);
    });
    assert!(report.schedules >= 1);
    if cfg!(evorec_sched) {
        assert!(report.schedules > 1);
    }
}
