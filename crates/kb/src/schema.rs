//! Schema-level view extraction over a triple store.
//!
//! [`SchemaView`] digests one knowledge-base snapshot into the structures
//! the evolution measures of ICDE'17 §II consume: the class and property
//! sets, the subsumption hierarchy, domain/range declarations, per-class
//! instance extents, and instance-level property connection counts (the
//! inputs to *relative cardinality* and the semantic centrality measures).

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::store::TripleStore;
use crate::term::TermId;
use crate::vocab::Vocab;

/// An immutable schema-level digest of one snapshot.
#[derive(Default, Clone, Debug)]
pub struct SchemaView {
    classes: FxHashSet<TermId>,
    properties: FxHashSet<TermId>,
    subclass_edges: Vec<(TermId, TermId)>,
    parents: FxHashMap<TermId, Vec<TermId>>,
    children: FxHashMap<TermId, Vec<TermId>>,
    domains: FxHashMap<TermId, Vec<TermId>>,
    ranges: FxHashMap<TermId, Vec<TermId>>,
    instances_of: FxHashMap<TermId, Vec<TermId>>,
    types_of: FxHashMap<TermId, Vec<TermId>>,
    /// property → (subject class, object class) → number of instance links.
    property_links: FxHashMap<TermId, FxHashMap<(TermId, TermId), u64>>,
    /// class → total instance connections its instances participate in.
    connection_totals: FxHashMap<TermId, u64>,
    /// instance → the typed instances it shares a property link with
    /// (either direction); the per-instance inverse of `property_links`,
    /// used by incremental measure updates to bound how far a typing
    /// change can ripple.
    link_partners: FxHashMap<TermId, Vec<TermId>>,
    /// class ↔ class adjacency via subsumption or property connection.
    class_adj: FxHashMap<TermId, FxHashSet<TermId>>,
}

impl SchemaView {
    /// Extract a schema view from `store`.
    ///
    /// Extraction is a three-pass scan: (1) declarations (class/property
    /// types, subsumption, domain/range), (2) instance typing, (3)
    /// instance-level property links. Undeclared predicates encountered in
    /// pass 3 are adopted as properties, matching the tolerant reading real
    /// Linked Data requires.
    pub fn extract(store: &TripleStore, vocab: &Vocab) -> SchemaView {
        let mut view = SchemaView::default();

        // Pass 1: declarations.
        for triple in store.iter() {
            if triple.p == vocab.rdf_type {
                if vocab.is_class_type(triple.o) {
                    view.classes.insert(triple.s);
                } else if vocab.is_property_type(triple.o) {
                    view.properties.insert(triple.s);
                }
            } else if triple.p == vocab.rdfs_subclassof {
                view.classes.insert(triple.s);
                view.classes.insert(triple.o);
                view.subclass_edges.push((triple.s, triple.o));
            } else if triple.p == vocab.rdfs_domain {
                view.properties.insert(triple.s);
                view.classes.insert(triple.o);
                view.domains.entry(triple.s).or_default().push(triple.o);
            } else if triple.p == vocab.rdfs_range {
                view.properties.insert(triple.s);
                view.classes.insert(triple.o);
                view.ranges.entry(triple.s).or_default().push(triple.o);
            }
        }
        view.subclass_edges.sort_unstable();
        view.subclass_edges.dedup();
        for &(child, parent) in &view.subclass_edges {
            view.parents.entry(child).or_default().push(parent);
            view.children.entry(parent).or_default().push(child);
        }

        // Pass 2: instance typing. An rdf:type whose object is neither a
        // meta-type nor a declared property types an instance; its object
        // is adopted as a class if not yet declared.
        for triple in store.with_predicate(vocab.rdf_type) {
            if vocab.is_class_type(triple.o) || vocab.is_property_type(triple.o) {
                continue;
            }
            if view.classes.contains(&triple.s) || view.properties.contains(&triple.s) {
                continue;
            }
            view.classes.insert(triple.o);
            view.instances_of.entry(triple.o).or_default().push(triple.s);
            view.types_of.entry(triple.s).or_default().push(triple.o);
        }
        for list in view.instances_of.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        for list in view.types_of.values_mut() {
            list.sort_unstable();
            list.dedup();
        }

        // Pass 3: instance-level property links.
        for triple in store.iter() {
            if vocab.is_schema_predicate(triple.p) {
                continue;
            }
            let (Some(s_types), Some(o_types)) =
                (view.types_of.get(&triple.s), view.types_of.get(&triple.o))
            else {
                continue;
            };
            view.properties.insert(triple.p);
            // Clone the small type vectors to appease the borrow checker;
            // instances carry one or two types in practice.
            let s_types = s_types.clone();
            let o_types = o_types.clone();
            view.link_partners.entry(triple.s).or_default().push(triple.o);
            view.link_partners.entry(triple.o).or_default().push(triple.s);
            let links = view.property_links.entry(triple.p).or_default();
            for &cs in &s_types {
                for &co in &o_types {
                    *links.entry((cs, co)).or_insert(0) += 1;
                }
            }
            for &cs in &s_types {
                *view.connection_totals.entry(cs).or_insert(0) += 1;
            }
            for &co in &o_types {
                *view.connection_totals.entry(co).or_insert(0) += 1;
            }
        }

        for list in view.link_partners.values_mut() {
            list.sort_unstable();
            list.dedup();
        }

        // Adjacency: subsumption edges plus property-connected class pairs
        // (observed instance links and declared domain/range products).
        for &(child, parent) in &view.subclass_edges {
            view.class_adj.entry(child).or_default().insert(parent);
            view.class_adj.entry(parent).or_default().insert(child);
        }
        for links in view.property_links.values() {
            for &(cs, co) in links.keys() {
                if cs != co {
                    view.class_adj.entry(cs).or_default().insert(co);
                    view.class_adj.entry(co).or_default().insert(cs);
                }
            }
        }
        let declared_pairs: Vec<(TermId, TermId)> = view
            .properties
            .iter()
            .flat_map(|p| {
                let ds = view.domains.get(p).cloned().unwrap_or_default();
                let rs = view.ranges.get(p).cloned().unwrap_or_default();
                ds.into_iter()
                    .flat_map(move |d| rs.clone().into_iter().map(move |r| (d, r)))
            })
            .collect();
        for (d, r) in declared_pairs {
            if d != r {
                view.class_adj.entry(d).or_default().insert(r);
                view.class_adj.entry(r).or_default().insert(d);
            }
        }

        view
    }

    /// The set of classes (declared or induced by typing).
    pub fn classes(&self) -> &FxHashSet<TermId> {
        &self.classes
    }

    /// The set of properties (declared or observed as predicates).
    pub fn properties(&self) -> &FxHashSet<TermId> {
        &self.properties
    }

    /// `true` if `id` is a known class.
    pub fn is_class(&self, id: TermId) -> bool {
        self.classes.contains(&id)
    }

    /// `true` if `id` is a known property.
    pub fn is_property(&self, id: TermId) -> bool {
        self.properties.contains(&id)
    }

    /// All `(child, parent)` subsumption edges, sorted, deduplicated.
    pub fn subclass_edges(&self) -> &[(TermId, TermId)] {
        &self.subclass_edges
    }

    /// Direct superclasses of `class`.
    pub fn parents_of(&self, class: TermId) -> &[TermId] {
        self.parents.get(&class).map_or(&[], Vec::as_slice)
    }

    /// Direct subclasses of `class`.
    pub fn children_of(&self, class: TermId) -> &[TermId] {
        self.children.get(&class).map_or(&[], Vec::as_slice)
    }

    /// Declared domains of `property`.
    pub fn domains_of(&self, property: TermId) -> &[TermId] {
        self.domains.get(&property).map_or(&[], Vec::as_slice)
    }

    /// Declared ranges of `property`.
    pub fn ranges_of(&self, property: TermId) -> &[TermId] {
        self.ranges.get(&property).map_or(&[], Vec::as_slice)
    }

    /// Direct instances of `class` (sorted by id).
    pub fn instances_of(&self, class: TermId) -> &[TermId] {
        self.instances_of.get(&class).map_or(&[], Vec::as_slice)
    }

    /// Number of direct instances of `class`.
    pub fn instance_count(&self, class: TermId) -> usize {
        self.instances_of(class).len()
    }

    /// Direct types of `instance` (sorted by id).
    pub fn types_of(&self, instance: TermId) -> &[TermId] {
        self.types_of.get(&instance).map_or(&[], Vec::as_slice)
    }

    /// The typed instances `instance` shares a property link with, in
    /// either direction (sorted by id, deduplicated). Only links whose
    /// two endpoints are both typed contribute — the same condition
    /// under which a link feeds class adjacency — so re-typing
    /// `instance` can only change adjacency between its types and the
    /// types of exactly these partners.
    pub fn link_partners(&self, instance: TermId) -> &[TermId] {
        self.link_partners.get(&instance).map_or(&[], Vec::as_slice)
    }

    /// Number of instance links via `property` between `(subject_class,
    /// object_class)` instances.
    pub fn property_link_count(&self, property: TermId, sc: TermId, oc: TermId) -> u64 {
        self.property_links
            .get(&property)
            .and_then(|m| m.get(&(sc, oc)))
            .copied()
            .unwrap_or(0)
    }

    /// Iterate `((subject_class, object_class), count)` pairs for `property`.
    pub fn property_pairs(
        &self,
        property: TermId,
    ) -> impl Iterator<Item = ((TermId, TermId), u64)> + '_ {
        self.property_links
            .get(&property)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&pair, &count)| (pair, count)))
    }

    /// Total instance connections the instances of `class` participate in
    /// (the denominator contribution for relative cardinality).
    pub fn connection_total(&self, class: TermId) -> u64 {
        self.connection_totals.get(&class).copied().unwrap_or(0)
    }

    /// Relative cardinality RC of `property` between `subject_class` and
    /// `object_class` — the paper's §II(d) quantity: the number of instance
    /// connections between the two classes via this property divided by the
    /// total connections the two classes' instances have.
    pub fn relative_cardinality(&self, property: TermId, sc: TermId, oc: TermId) -> f64 {
        let links = self.property_link_count(property, sc, oc);
        if links == 0 {
            return 0.0;
        }
        let denom = self.connection_total(sc) + self.connection_total(oc);
        if denom == 0 {
            0.0
        } else {
            links as f64 / denom as f64
        }
    }

    /// Classes adjacent to `class` via a subsumption edge or a property
    /// connection (declared or observed) — the per-snapshot half of the
    /// paper's §II(b) neighbourhood.
    pub fn adjacent_classes(&self, class: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.class_adj
            .get(&class)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Degree of `class` in the class-adjacency structure.
    pub fn class_degree(&self, class: TermId) -> usize {
        self.class_adj.get(&class).map_or(0, FxHashSet::len)
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of properties.
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::TermInterner;
    use crate::term::Term;
    use crate::triple::Triple;

    struct Fixture {
        interner: TermInterner,
        vocab: Vocab,
        store: TripleStore,
    }

    impl Fixture {
        fn new() -> Self {
            let mut interner = TermInterner::new();
            let vocab = Vocab::install(&mut interner);
            Fixture {
                interner,
                vocab,
                store: TripleStore::new(),
            }
        }

        fn iri(&mut self, name: &str) -> TermId {
            self.interner.intern(Term::iri(format!("http://x/{name}")))
        }

        fn add(&mut self, s: TermId, p: TermId, o: TermId) {
            self.store.insert(Triple::new(s, p, o));
        }

        fn view(&self) -> SchemaView {
            SchemaView::extract(&self.store, &self.vocab)
        }
    }

    /// Small university-style schema: Person ⊒ Student, teaches links
    /// Teacher→Course, with a handful of instances.
    fn university() -> (Fixture, [TermId; 8]) {
        let mut f = Fixture::new();
        let person = f.iri("Person");
        let student = f.iri("Student");
        let teacher = f.iri("Teacher");
        let course = f.iri("Course");
        let teaches = f.iri("teaches");
        let alice = f.iri("alice");
        let bob = f.iri("bob");
        let algo = f.iri("algorithms");

        let rdf_type = f.vocab.rdf_type;
        let subclass = f.vocab.rdfs_subclassof;
        let rdfs_class = f.vocab.rdfs_class;
        let obj_prop = f.vocab.owl_object_property;
        let domain = f.vocab.rdfs_domain;
        let range = f.vocab.rdfs_range;

        for c in [person, student, teacher, course] {
            f.add(c, rdf_type, rdfs_class);
        }
        f.add(student, subclass, person);
        f.add(teacher, subclass, person);
        f.add(teaches, rdf_type, obj_prop);
        f.add(teaches, domain, teacher);
        f.add(teaches, range, course);

        f.add(alice, rdf_type, teacher);
        f.add(bob, rdf_type, student);
        f.add(algo, rdf_type, course);
        f.add(alice, teaches, algo);

        (
            f,
            [person, student, teacher, course, teaches, alice, bob, algo],
        )
    }

    #[test]
    fn link_partners_are_recorded_both_ways() {
        let (mut f, [_, _, _, _, teaches, alice, bob, algo]) = university();
        let v = f.view();
        assert_eq!(v.link_partners(alice), &[algo]);
        assert_eq!(v.link_partners(algo), &[alice]);
        assert!(v.link_partners(bob).is_empty(), "no links for bob");
        assert!(v.link_partners(teaches).is_empty(), "predicates have none");
        // Duplicate links dedup; an untyped endpoint contributes none.
        f.add(alice, teaches, algo);
        let untyped = f.iri("mystery");
        f.add(alice, teaches, untyped);
        let v = f.view();
        assert_eq!(v.link_partners(alice), &[algo]);
        assert!(v.link_partners(untyped).is_empty());
    }

    #[test]
    fn declared_classes_and_properties_found() {
        let (f, [person, student, teacher, course, teaches, ..]) = university();
        let v = f.view();
        for c in [person, student, teacher, course] {
            assert!(v.is_class(c));
        }
        assert!(v.is_property(teaches));
        assert!(!v.is_class(teaches));
        assert_eq!(v.class_count(), 4);
        assert_eq!(v.property_count(), 1);
    }

    #[test]
    fn subsumption_hierarchy_extracted() {
        let (f, [person, student, teacher, ..]) = university();
        let v = f.view();
        assert_eq!(v.parents_of(student), &[person]);
        assert_eq!(v.parents_of(teacher), &[person]);
        let mut kids = v.children_of(person).to_vec();
        kids.sort_unstable();
        let mut expect = vec![student, teacher];
        expect.sort_unstable();
        assert_eq!(kids, expect);
        assert_eq!(v.subclass_edges().len(), 2);
    }

    #[test]
    fn domain_range_extracted() {
        let (f, [_, _, teacher, course, teaches, ..]) = university();
        let v = f.view();
        assert_eq!(v.domains_of(teaches), &[teacher]);
        assert_eq!(v.ranges_of(teaches), &[course]);
    }

    #[test]
    fn instances_and_types() {
        let (f, [_, student, teacher, course, _, alice, bob, algo]) = university();
        let v = f.view();
        assert_eq!(v.instances_of(teacher), &[alice]);
        assert_eq!(v.instances_of(student), &[bob]);
        assert_eq!(v.instances_of(course), &[algo]);
        assert_eq!(v.instance_count(teacher), 1);
        assert_eq!(v.types_of(alice), &[teacher]);
        assert_eq!(v.types_of(bob), &[student]);
    }

    #[test]
    fn property_links_counted_per_class_pair() {
        let (f, [_, _, teacher, course, teaches, ..]) = university();
        let v = f.view();
        assert_eq!(v.property_link_count(teaches, teacher, course), 1);
        assert_eq!(v.property_link_count(teaches, course, teacher), 0);
        let pairs: Vec<_> = v.property_pairs(teaches).collect();
        assert_eq!(pairs, vec![((teacher, course), 1)]);
    }

    #[test]
    fn relative_cardinality_matches_definition() {
        let (f, [_, _, teacher, course, teaches, ..]) = university();
        let v = f.view();
        // One link; teacher participates once, course participates once.
        assert_eq!(v.connection_total(teacher), 1);
        assert_eq!(v.connection_total(course), 1);
        let rc = v.relative_cardinality(teaches, teacher, course);
        assert!((rc - 0.5).abs() < 1e-12, "rc = {rc}");
        // Absent pair → 0, no division by zero.
        assert_eq!(v.relative_cardinality(teaches, course, teacher), 0.0);
    }

    #[test]
    fn adjacency_unions_subsumption_and_properties() {
        let (f, [person, student, teacher, course, ..]) = university();
        let v = f.view();
        let mut adj: Vec<_> = v.adjacent_classes(teacher).collect();
        adj.sort_unstable();
        let mut expect = vec![person, course];
        expect.sort_unstable();
        assert_eq!(adj, expect, "teacher ~ person (subclass), course (teaches)");
        let person_adj: Vec<_> = v.adjacent_classes(person).collect();
        assert_eq!(person_adj.len(), 2);
        assert!(person_adj.contains(&student));
        assert_eq!(v.class_degree(teacher), 2);
        assert_eq!(v.class_degree(course), 1);
    }

    #[test]
    fn undeclared_predicate_adopted_as_property() {
        let (mut f, [_, _, teacher, course, _, alice, _, algo]) = university();
        let likes = f.iri("likes");
        f.add(alice, likes, algo);
        let v = f.view();
        assert!(v.is_property(likes));
        assert_eq!(v.property_link_count(likes, teacher, course), 1);
    }

    #[test]
    fn untyped_endpoints_do_not_produce_links() {
        let (mut f, [.., algo]) = university();
        let mystery = f.iri("mystery");
        let relates = f.iri("relates");
        f.add(mystery, relates, algo);
        let v = f.view();
        // `mystery` has no type, so no class-pair link is recorded and the
        // predicate stays unadopted (it never connects typed instances).
        assert!(v.property_pairs(relates).next().is_none());
    }

    #[test]
    fn empty_store_yields_empty_view() {
        let f = Fixture::new();
        let v = f.view();
        assert_eq!(v.class_count(), 0);
        assert_eq!(v.property_count(), 0);
        assert!(v.subclass_edges().is_empty());
    }

    #[test]
    fn multi_typed_instances_count_for_all_pairs() {
        let mut f = Fixture::new();
        let a = f.iri("A");
        let b = f.iri("B");
        let c = f.iri("C");
        let p = f.iri("p");
        let x = f.iri("x");
        let y = f.iri("y");
        let rdf_type = f.vocab.rdf_type;
        let rdfs_class = f.vocab.rdfs_class;
        for class in [a, b, c] {
            f.add(class, rdf_type, rdfs_class);
        }
        f.add(x, rdf_type, a);
        f.add(x, rdf_type, b);
        f.add(y, rdf_type, c);
        f.add(x, p, y);
        let v = f.view();
        assert_eq!(v.property_link_count(p, a, c), 1);
        assert_eq!(v.property_link_count(p, b, c), 1);
        // y has one connection regardless of how many types x carries.
        assert_eq!(v.connection_total(c), 1);
    }
}
