//! Triples over interned terms and match patterns over them.

use crate::term::TermId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A subject–predicate–object statement over interned terms.
///
/// Twelve bytes, `Copy`, totally ordered — the unit of storage, diffing,
/// and change counting throughout the workspace.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Triple {
    /// Subject term.
    pub s: TermId,
    /// Predicate term.
    pub p: TermId,
    /// Object term.
    pub o: TermId,
}

impl Triple {
    /// Construct a triple.
    #[inline]
    pub const fn new(s: TermId, p: TermId, o: TermId) -> Triple {
        Triple { s, p, o }
    }

    /// `true` if `term` appears in any position.
    #[inline]
    pub fn mentions(&self, term: TermId) -> bool {
        self.s == term || self.p == term || self.o == term
    }

    /// The triple as an `(s, p, o)` tuple.
    #[inline]
    pub const fn as_tuple(&self) -> (TermId, TermId, TermId) {
        (self.s, self.p, self.o)
    }
}

impl From<(TermId, TermId, TermId)> for Triple {
    fn from((s, p, o): (TermId, TermId, TermId)) -> Self {
        Triple::new(s, p, o)
    }
}

impl fmt::Debug for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?} {:?} {:?})", self.s, self.p, self.o)
    }
}

/// A triple pattern with optionally-bound positions.
///
/// `None` positions act as wildcards; see
/// [`TripleStore::match_pattern`](crate::TripleStore::match_pattern).
#[derive(Copy, Clone, PartialEq, Eq, Default, Debug)]
pub struct TriplePattern {
    /// Bound subject, or wildcard.
    pub s: Option<TermId>,
    /// Bound predicate, or wildcard.
    pub p: Option<TermId>,
    /// Bound object, or wildcard.
    pub o: Option<TermId>,
}

impl TriplePattern {
    /// The all-wildcard pattern matching every triple.
    pub const ANY: TriplePattern = TriplePattern {
        s: None,
        p: None,
        o: None,
    };

    /// Construct a pattern from optional positions.
    pub const fn new(s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Self {
        TriplePattern { s, p, o }
    }

    /// Pattern binding only the subject.
    pub const fn with_subject(s: TermId) -> Self {
        TriplePattern {
            s: Some(s),
            p: None,
            o: None,
        }
    }

    /// Pattern binding only the predicate.
    pub const fn with_predicate(p: TermId) -> Self {
        TriplePattern {
            s: None,
            p: Some(p),
            o: None,
        }
    }

    /// Pattern binding only the object.
    pub const fn with_object(o: TermId) -> Self {
        TriplePattern {
            s: None,
            p: None,
            o: Some(o),
        }
    }

    /// `true` if `triple` satisfies every bound position.
    #[inline]
    pub fn matches(&self, triple: &Triple) -> bool {
        self.s.is_none_or(|s| s == triple.s)
            && self.p.is_none_or(|p| p == triple.p)
            && self.o.is_none_or(|o| o == triple.o)
    }

    /// Number of bound positions (0–3); used for index selection.
    pub fn bound_count(&self) -> u8 {
        self.s.is_some() as u8 + self.p.is_some() as u8 + self.o.is_some() as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    #[test]
    fn mentions_checks_all_positions() {
        let tr = Triple::new(t(1), t(2), t(3));
        assert!(tr.mentions(t(1)));
        assert!(tr.mentions(t(2)));
        assert!(tr.mentions(t(3)));
        assert!(!tr.mentions(t(4)));
    }

    #[test]
    fn tuple_conversions() {
        let tr: Triple = (t(1), t(2), t(3)).into();
        assert_eq!(tr.as_tuple(), (t(1), t(2), t(3)));
    }

    #[test]
    fn ordering_is_spo_lexicographic() {
        let a = Triple::new(t(1), t(5), t(9));
        let b = Triple::new(t(1), t(6), t(0));
        let c = Triple::new(t(2), t(0), t(0));
        assert!(a < b && b < c);
    }

    #[test]
    fn any_pattern_matches_everything() {
        assert!(TriplePattern::ANY.matches(&Triple::new(t(9), t(8), t(7))));
        assert_eq!(TriplePattern::ANY.bound_count(), 0);
    }

    #[test]
    fn bound_positions_filter() {
        let tr = Triple::new(t(1), t(2), t(3));
        assert!(TriplePattern::with_subject(t(1)).matches(&tr));
        assert!(!TriplePattern::with_subject(t(2)).matches(&tr));
        assert!(TriplePattern::with_predicate(t(2)).matches(&tr));
        assert!(TriplePattern::with_object(t(3)).matches(&tr));
        let full = TriplePattern::new(Some(t(1)), Some(t(2)), Some(t(3)));
        assert!(full.matches(&tr));
        assert_eq!(full.bound_count(), 3);
        let off = TriplePattern::new(Some(t(1)), Some(t(2)), Some(t(4)));
        assert!(!off.matches(&tr));
    }
}
