//! Line-oriented N-Triples parsing and canonical serialisation.
//!
//! Supports the subset of N-Triples 1.1 needed for knowledge-base
//! exchange: IRIs, blank nodes, plain / language-tagged / datatyped
//! literals, `#` comments, and the standard string escapes
//! (`\" \\ \n \r \t \u00XX \U000000XX`).

use crate::term::Term;
use std::fmt;

/// Where parsing failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input document.
    pub line: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N-Triples parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a full N-Triples document into `(subject, predicate, object)`
/// term tuples. Blank lines and `#` comment lines are skipped.
pub fn parse_document(input: &str) -> Result<Vec<(Term, Term, Term)>, ParseError> {
    let mut out = Vec::new();
    for (ix, line) in input.lines().enumerate() {
        if let Some(triple) = parse_line(line).map_err(|message| ParseError {
            line: ix + 1,
            message,
        })? {
            out.push(triple);
        }
    }
    Ok(out)
}

/// Parse a single line. Returns `Ok(None)` for blank/comment lines.
pub fn parse_line(line: &str) -> Result<Option<(Term, Term, Term)>, String> {
    let mut cur = Cursor::new(line);
    cur.skip_ws();
    if cur.at_end() || cur.peek() == Some('#') {
        return Ok(None);
    }
    let subject = cur.parse_term()?;
    if subject.is_literal() {
        return Err("subject must not be a literal".into());
    }
    cur.require_ws()?;
    let predicate = cur.parse_term()?;
    if !predicate.is_iri() {
        return Err("predicate must be an IRI".into());
    }
    cur.require_ws()?;
    let object = cur.parse_term()?;
    cur.skip_ws();
    if cur.peek() == Some('.') {
        cur.bump();
    } else {
        return Err("expected terminating '.'".into());
    }
    cur.skip_ws();
    match cur.peek() {
        None | Some('#') => Ok(Some((subject, predicate, object))),
        Some(c) => Err(format!("trailing content after '.': {c:?}")),
    }
}

/// Serialise one term in canonical N-Triples form (escaped) into `out`.
pub fn write_term(out: &mut String, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push('<');
            out.push_str(iri);
            out.push('>');
        }
        Term::Literal {
            lexical,
            datatype,
            lang,
        } => {
            out.push('"');
            escape_into(out, lexical);
            out.push('"');
            if let Some(lang) = lang {
                out.push('@');
                out.push_str(lang);
            } else if let Some(dt) = datatype {
                out.push_str("^^<");
                out.push_str(dt);
                out.push('>');
            }
        }
        Term::Blank(label) => {
            out.push_str("_:");
            out.push_str(label);
        }
    }
}

/// Serialise one triple (with trailing ` .\n`) into `out`.
pub fn write_triple(out: &mut String, s: &Term, p: &Term, o: &Term) {
    write_term(out, s);
    out.push(' ');
    write_term(out, p);
    out.push(' ');
    write_term(out, o);
    out.push_str(" .\n");
}

/// Serialise an iterator of triples into one N-Triples document.
pub fn write_document<'a>(triples: impl IntoIterator<Item = (&'a Term, &'a Term, &'a Term)>) -> String {
    let mut out = String::new();
    for (s, p, o) in triples {
        write_triple(&mut out, s, p, o);
    }
    out
}

fn escape_into(out: &mut String, raw: &str) {
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a str) -> Self {
        Cursor {
            chars: line.chars().peekable(),
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        self.chars.next()
    }

    fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    fn require_ws(&mut self) -> Result<(), String> {
        if !matches!(self.peek(), Some(' ') | Some('\t')) {
            return Err("expected whitespace between terms".into());
        }
        self.skip_ws();
        Ok(())
    }

    fn parse_term(&mut self) -> Result<Term, String> {
        match self.peek() {
            Some('<') => self.parse_iri(),
            Some('_') => self.parse_blank(),
            Some('"') => self.parse_literal(),
            Some(c) => Err(format!("unexpected character {c:?} at term start")),
            None => Err("unexpected end of line, expected a term".into()),
        }
    }

    fn parse_iri(&mut self) -> Result<Term, String> {
        self.bump(); // '<'
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(Term::Iri(iri.into_boxed_str())),
                Some(c) if c == ' ' || c == '<' => {
                    return Err(format!("invalid character {c:?} inside IRI"))
                }
                Some(c) => iri.push(c),
                None => return Err("unterminated IRI".into()),
            }
        }
    }

    fn parse_blank(&mut self) -> Result<Term, String> {
        self.bump(); // '_'
        if self.bump() != Some(':') {
            return Err("blank node must start with '_:'".into());
        }
        // Label charset is a subset of the spec's PN_CHARS: no '.' so the
        // statement terminator never fuses with the label.
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                label.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if label.is_empty() {
            return Err("empty blank node label".into());
        }
        Ok(Term::Blank(label.into_boxed_str()))
    }

    fn parse_literal(&mut self) -> Result<Term, String> {
        self.bump(); // '"'
        let mut lexical = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('"') => lexical.push('"'),
                    Some('\\') => lexical.push('\\'),
                    Some('n') => lexical.push('\n'),
                    Some('r') => lexical.push('\r'),
                    Some('t') => lexical.push('\t'),
                    Some('u') => lexical.push(self.parse_unicode_escape(4)?),
                    Some('U') => lexical.push(self.parse_unicode_escape(8)?),
                    Some(c) => return Err(format!("unknown escape sequence \\{c}")),
                    None => return Err("dangling escape at end of line".into()),
                },
                Some(c) => lexical.push(c),
                None => return Err("unterminated literal".into()),
            }
        }
        match self.peek() {
            Some('@') => {
                self.bump();
                let mut lang = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '-' {
                        lang.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if lang.is_empty() {
                    return Err("empty language tag".into());
                }
                Ok(Term::Literal {
                    lexical: lexical.into_boxed_str(),
                    datatype: None,
                    lang: Some(lang.into_boxed_str()),
                })
            }
            Some('^') => {
                self.bump();
                if self.bump() != Some('^') {
                    return Err("datatype marker must be '^^'".into());
                }
                match self.parse_iri()? {
                    Term::Iri(dt) => Ok(Term::Literal {
                        lexical: lexical.into_boxed_str(),
                        datatype: Some(dt),
                        lang: None,
                    }),
                    _ => unreachable!("parse_iri returns Iri"),
                }
            }
            _ => Ok(Term::Literal {
                lexical: lexical.into_boxed_str(),
                datatype: None,
                lang: None,
            }),
        }
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char, String> {
        let mut value: u32 = 0;
        for _ in 0..digits {
            let c = self
                .bump()
                .ok_or_else(|| "truncated unicode escape".to_string())?;
            let digit = c
                .to_digit(16)
                .ok_or_else(|| format!("invalid hex digit {c:?} in unicode escape"))?;
            value = value * 16 + digit;
        }
        char::from_u32(value).ok_or_else(|| format!("invalid unicode scalar U+{value:X}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_triple() {
        let got = parse_line("<http://x/a> <http://x/p> <http://x/b> .").unwrap();
        assert_eq!(
            got,
            Some((
                Term::iri("http://x/a"),
                Term::iri("http://x/p"),
                Term::iri("http://x/b")
            ))
        );
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("# comment").unwrap(), None);
    }

    #[test]
    fn parses_literals_of_all_kinds() {
        let (_, _, o) =
            parse_line(r#"<http://x/a> <http://x/p> "plain" ."#).unwrap().unwrap();
        assert_eq!(o, Term::literal("plain"));

        let (_, _, o) =
            parse_line(r#"<http://x/a> <http://x/p> "chat"@fr ."#).unwrap().unwrap();
        assert_eq!(o, Term::lang_literal("chat", "fr"));

        let (_, _, o) = parse_line(
            r#"<http://x/a> <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap()
        .unwrap();
        assert_eq!(
            o,
            Term::typed_literal("5", "http://www.w3.org/2001/XMLSchema#integer")
        );
    }

    #[test]
    fn parses_escapes() {
        let (_, _, o) = parse_line(r#"<http://x/a> <http://x/p> "a\"b\\c\nd\te" ."#)
            .unwrap()
            .unwrap();
        assert_eq!(o, Term::literal("a\"b\\c\nd\te"));

        let (_, _, o) = parse_line(r#"<http://x/a> <http://x/p> "é\U0001F600" ."#)
            .unwrap()
            .unwrap();
        assert_eq!(o, Term::literal("é😀"));
    }

    #[test]
    fn parses_blank_nodes() {
        let (s, _, o) = parse_line("_:b1 <http://x/p> _:b2 .").unwrap().unwrap();
        assert_eq!(s, Term::blank("b1"));
        assert_eq!(o, Term::blank("b2"));
    }

    #[test]
    fn rejects_malformed_lines() {
        // Missing dot.
        assert!(parse_line("<http://x/a> <http://x/p> <http://x/b>").is_err());
        // Literal subject.
        assert!(parse_line(r#""lit" <http://x/p> <http://x/b> ."#).is_err());
        // Non-IRI predicate.
        assert!(parse_line("<http://x/a> _:b <http://x/b> .").is_err());
        // Unterminated IRI.
        assert!(parse_line("<http://x/a <http://x/p> <http://x/b> .").is_err());
        // Unterminated literal.
        assert!(parse_line(r#"<http://x/a> <http://x/p> "open ."#).is_err());
        // Bad escape.
        assert!(parse_line(r#"<http://x/a> <http://x/p> "\q" ."#).is_err());
        // Trailing garbage.
        assert!(parse_line("<http://x/a> <http://x/p> <http://x/b> . extra").is_err());
        // Empty language tag.
        assert!(parse_line(r#"<http://x/a> <http://x/p> "x"@ ."#).is_err());
    }

    #[test]
    fn trailing_comment_after_dot_is_ok() {
        assert!(parse_line("<http://x/a> <http://x/p> <http://x/b> . # note")
            .unwrap()
            .is_some());
    }

    #[test]
    fn document_reports_line_numbers() {
        let doc = "<http://x/a> <http://x/p> <http://x/b> .\nbroken line\n";
        let err = parse_document(doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn serialise_parse_roundtrip() {
        let triples = vec![
            (
                Term::iri("http://x/a"),
                Term::iri("http://x/p"),
                Term::literal("tricky \"quote\" \\slash\\ \nnewline"),
            ),
            (
                Term::blank("b0"),
                Term::iri("http://x/q"),
                Term::lang_literal("hello", "en-GB"),
            ),
            (
                Term::iri("http://x/a"),
                Term::iri("http://x/r"),
                Term::typed_literal("3.14", "http://www.w3.org/2001/XMLSchema#double"),
            ),
        ];
        let doc = write_document(triples.iter().map(|(s, p, o)| (s, p, o)));
        let parsed = parse_document(&doc).unwrap();
        assert_eq!(parsed, triples);
    }

    #[test]
    fn write_term_escapes() {
        let mut out = String::new();
        write_term(&mut out, &Term::literal("a\"b"));
        assert_eq!(out, r#""a\"b""#);
    }
}
