//! RDF terms and their compact interned identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Compact identifier for an interned [`Term`].
///
/// `TermId`s are dense indexes handed out by a
/// [`TermInterner`](crate::TermInterner); they are only meaningful relative
/// to the interner that produced them. All higher layers (stores, deltas,
/// measures, recommenders) operate on `TermId`s and never on term text,
/// which keeps triples at 12 bytes and comparisons branch-free.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(u32);

impl TermId {
    /// Smallest possible identifier; used as a range endpoint in index scans.
    pub const MIN: TermId = TermId(0);
    /// Largest possible identifier; used as a range endpoint in index scans.
    pub const MAX: TermId = TermId(u32::MAX);

    /// Construct from a raw `u32`. Intended for interners and
    /// (de)serialisation code; arbitrary values will not resolve to terms.
    #[inline]
    pub const fn from_u32(raw: u32) -> Self {
        TermId(raw)
    }

    /// The raw `u32` behind this identifier.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The identifier as a `usize` index into interner storage.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An RDF term: IRI, literal, or blank node.
///
/// Literals carry an optional datatype IRI *or* an optional language tag
/// (mutually exclusive per RDF 1.1; plain literals have neither).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// An IRI reference such as `http://example.org/Person`.
    Iri(Box<str>),
    /// A literal with lexical form and optional datatype / language tag.
    Literal {
        /// The lexical form (unescaped).
        lexical: Box<str>,
        /// Datatype IRI, if any (`None` for plain and language-tagged).
        datatype: Option<Box<str>>,
        /// BCP-47 language tag, if any.
        lang: Option<Box<str>>,
    },
    /// A blank node with local label (without the `_:` prefix).
    Blank(Box<str>),
}

impl Term {
    /// Build an IRI term.
    pub fn iri(value: impl Into<String>) -> Term {
        Term::Iri(value.into().into_boxed_str())
    }

    /// Build a plain (untyped, untagged) literal.
    pub fn literal(lexical: impl Into<String>) -> Term {
        Term::Literal {
            lexical: lexical.into().into_boxed_str(),
            datatype: None,
            lang: None,
        }
    }

    /// Build a literal with an explicit datatype IRI.
    pub fn typed_literal(lexical: impl Into<String>, datatype: impl Into<String>) -> Term {
        Term::Literal {
            lexical: lexical.into().into_boxed_str(),
            datatype: Some(datatype.into().into_boxed_str()),
            lang: None,
        }
    }

    /// Build a language-tagged literal.
    pub fn lang_literal(lexical: impl Into<String>, lang: impl Into<String>) -> Term {
        Term::Literal {
            lexical: lexical.into().into_boxed_str(),
            datatype: None,
            lang: Some(lang.into().into_boxed_str()),
        }
    }

    /// Build a blank node from its local label (no `_:` prefix).
    pub fn blank(label: impl Into<String>) -> Term {
        Term::Blank(label.into().into_boxed_str())
    }

    /// `true` if this term is an IRI.
    #[inline]
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// `true` if this term is a literal.
    #[inline]
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// `true` if this term is a blank node.
    #[inline]
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// The IRI string, if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// The lexical form, if this term is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal { lexical, .. } => Some(lexical),
            _ => None,
        }
    }

    /// A short human-oriented rendering: the fragment / last path segment
    /// for IRIs, the lexical form for literals, `_:label` for blanks.
    pub fn short_name(&self) -> &str {
        match self {
            Term::Iri(iri) => iri
                .rsplit_once(['#', '/'])
                .map(|(_, tail)| tail)
                .filter(|tail| !tail.is_empty())
                .unwrap_or(iri),
            Term::Literal { lexical, .. } => lexical,
            Term::Blank(label) => label,
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    /// Renders in N-Triples surface syntax (unescaped lexical forms; use
    /// [`ntriples::write_term`](crate::ntriples::write_term) for canonical
    /// escaped output).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::Literal {
                lexical,
                datatype,
                lang,
            } => {
                write!(f, "\"{lexical}\"")?;
                if let Some(lang) = lang {
                    write!(f, "@{lang}")?;
                } else if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
            Term::Blank(label) => write!(f, "_:{label}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify_correctly() {
        assert!(Term::iri("http://x/a").is_iri());
        assert!(Term::literal("x").is_literal());
        assert!(Term::blank("b0").is_blank());
        assert!(!Term::literal("x").is_iri());
    }

    #[test]
    fn as_iri_roundtrip() {
        let t = Term::iri("http://example.org/Person");
        assert_eq!(t.as_iri(), Some("http://example.org/Person"));
        assert_eq!(Term::literal("x").as_iri(), None);
    }

    #[test]
    fn short_name_extracts_fragment() {
        assert_eq!(Term::iri("http://x/ontology#Person").short_name(), "Person");
        assert_eq!(Term::iri("http://x/ontology/Person").short_name(), "Person");
        assert_eq!(Term::iri("urn:isolated").short_name(), "urn:isolated");
        assert_eq!(Term::literal("42").short_name(), "42");
        assert_eq!(Term::blank("b3").short_name(), "b3");
    }

    #[test]
    fn short_name_handles_trailing_separator() {
        // A trailing '/' yields an empty tail; fall back to the full IRI.
        assert_eq!(Term::iri("http://x/").short_name(), "http://x/");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(Term::lang_literal("hi", "en").to_string(), "\"hi\"@en");
        assert_eq!(
            Term::typed_literal("5", "http://www.w3.org/2001/XMLSchema#integer").to_string(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(Term::blank("b1").to_string(), "_:b1");
    }

    #[test]
    fn term_ordering_is_total_and_stable() {
        let mut terms = vec![
            Term::blank("z"),
            Term::iri("http://a"),
            Term::literal("m"),
            Term::iri("http://b"),
        ];
        terms.sort();
        let again = {
            let mut t = terms.clone();
            t.sort();
            t
        };
        assert_eq!(terms, again);
    }

    #[test]
    fn term_id_raw_roundtrip() {
        let id = TermId::from_u32(77);
        assert_eq!(id.as_u32(), 77);
        assert_eq!(id.index(), 77);
        assert!(TermId::MIN < id && id < TermId::MAX);
    }

    #[test]
    fn lang_and_datatype_literals_are_distinct() {
        let a = Term::lang_literal("chat", "fr");
        let b = Term::typed_literal("chat", "http://x/dt");
        let c = Term::literal("chat");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
