//! # evorec-kb — RDF knowledge-base substrate
//!
//! The storage layer under the *evolution-measure recommender* workspace
//! (a from-scratch reproduction of ICDE'17 "On Recommending Evolution
//! Measures: A Human-aware Approach").
//!
//! Provides:
//! - [`Term`] / [`TermId`] — RDF terms and their interned identifiers;
//! - [`TermInterner`] — the shared bidirectional dictionary;
//! - [`Triple`] / [`TriplePattern`] / [`TripleStore`] — an in-memory
//!   store with three covering indexes (SPO / POS / OSP);
//! - [`ntriples`] — N-Triples parsing and canonical serialisation;
//! - [`Vocab`] — pre-interned RDF/RDFS/OWL vocabulary;
//! - [`SchemaView`] — the schema digest (classes, subsumption,
//!   domain/range, instance extents, property-link counts) that the
//!   evolution measures consume;
//! - [`query`] — conjunctive basic-graph-pattern queries with joins;
//! - [`Graph`] — a single-snapshot convenience bundle.
//!
//! Everything downstream (versioning, measures, the recommender) works on
//! `TermId`s; term text is only touched at the I/O boundary.

#![warn(missing_docs)]

pub mod fxhash;
mod graph;
mod interner;
pub mod ntriples;
pub mod query;
mod schema;
mod store;
mod term;
mod triple;
pub mod vocab;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use graph::Graph;
pub use interner::TermInterner;
pub use ntriples::ParseError;
pub use schema::SchemaView;
pub use store::TripleStore;
pub use term::{Term, TermId};
pub use triple::{Triple, TriplePattern};
pub use vocab::Vocab;
