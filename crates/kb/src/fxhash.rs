//! A fast, non-cryptographic hasher for small keys.
//!
//! Interned [`TermId`](crate::TermId)s are dense `u32`s and dominate every
//! hot map in the workspace. The standard library's SipHash is collision
//! resistant but slow for such keys; this module implements the well-known
//! "Fx" multiply-rotate hash used by rustc, which is the conventional
//! choice for compiler/database-style workloads where HashDoS is not a
//! threat model (all keys originate from our own interner).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash family (a large prime-ish odd
/// constant with good avalanche behaviour for multiply-rotate mixing).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A [`Hasher`] implementing the Fx multiply-rotate scheme.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u64::from(u16::from_le_bytes(buf)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Builder producing [`FxHasher`]s; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement keyed by the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement keyed by the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        // Not a rigorous collision test; guards against degenerate
        // implementations (e.g. ignoring input).
        let a = hash_of(b"http://example.org/a");
        let b = hash_of(b"http://example.org/b");
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_of(b"same"), hash_of(b"same"));
    }

    #[test]
    fn handles_all_tail_lengths() {
        // Exercise the 8/4/2/1-byte tail handling paths.
        for len in 0..=17 {
            let data: Vec<u8> = (0..len as u8).collect();
            let h1 = hash_of(&data);
            let h2 = hash_of(&data);
            assert_eq!(h1, h2, "len {len}");
        }
    }

    #[test]
    fn integer_writes_differ_from_zero_state() {
        let mut h = FxHasher::default();
        h.write_u32(42);
        assert_ne!(h.finish(), 0);
    }

    #[test]
    fn map_and_set_aliases_usable() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
