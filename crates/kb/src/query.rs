//! Basic-graph-pattern (BGP) queries with joins.
//!
//! §III(a) frames the user problem as "exploring the contents of a
//! knowledge base"; this module provides the conjunctive-pattern queries
//! that exploration needs: a [`Query`] is a set of triple patterns over
//! shared [`Var`]iables, evaluated by a selectivity-ordered backtracking
//! join against the store's covering indexes.
//!
//! ```
//! use evorec_kb::{Graph, Term};
//! use evorec_kb::query::{Query, Var};
//!
//! let mut g = Graph::new();
//! let teaches = g.iri("http://x/teaches");
//! let attends = g.iri("http://x/attends");
//! let alice = g.iri("http://x/alice");
//! let bob = g.iri("http://x/bob");
//! let course = g.iri("http://x/algo");
//! g.insert_terms(Term::iri("http://x/alice"), Term::iri("http://x/teaches"), Term::iri("http://x/algo"));
//! g.insert_terms(Term::iri("http://x/bob"), Term::iri("http://x/attends"), Term::iri("http://x/algo"));
//!
//! // Who teaches a course that ?student attends?
//! let (t, s, c) = (Var(0), Var(1), Var(2));
//! let query = Query::new()
//!     .pattern(t, teaches, c)
//!     .pattern(s, attends, c);
//! let rows = query.evaluate(g.store());
//! assert_eq!(rows, vec![vec![alice, bob, course]]);
//! ```

use crate::store::TripleStore;
use crate::term::TermId;
use crate::triple::TriplePattern;

/// A query variable, identified by a small index. Reusing the same index
/// across patterns expresses a join.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Var(pub u16);

/// One position of a query pattern: a constant or a variable.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum QueryTerm {
    /// A fixed term that must match exactly.
    Bound(TermId),
    /// A variable to be bound by evaluation.
    Variable(Var),
}

impl From<TermId> for QueryTerm {
    fn from(id: TermId) -> Self {
        QueryTerm::Bound(id)
    }
}

impl From<Var> for QueryTerm {
    fn from(v: Var) -> Self {
        QueryTerm::Variable(v)
    }
}

/// One triple pattern of a query.
#[derive(Copy, Clone, Debug)]
pub struct Pattern {
    /// Subject position.
    pub s: QueryTerm,
    /// Predicate position.
    pub p: QueryTerm,
    /// Object position.
    pub o: QueryTerm,
}

/// A conjunctive basic graph pattern.
#[derive(Clone, Debug, Default)]
pub struct Query {
    patterns: Vec<Pattern>,
}

impl Query {
    /// An empty query (matches one empty row).
    pub fn new() -> Query {
        Query::default()
    }

    /// Add a pattern; positions accept [`TermId`] constants or [`Var`]s.
    pub fn pattern(
        mut self,
        s: impl Into<QueryTerm>,
        p: impl Into<QueryTerm>,
        o: impl Into<QueryTerm>,
    ) -> Query {
        self.patterns.push(Pattern {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        });
        self
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` for the empty query.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Highest variable index used, plus one (the row width).
    pub fn variable_count(&self) -> usize {
        let mut max: Option<u16> = None;
        for pat in &self.patterns {
            for qt in [pat.s, pat.p, pat.o] {
                if let QueryTerm::Variable(Var(ix)) = qt {
                    max = Some(max.map_or(ix, |m: u16| m.max(ix)));
                }
            }
        }
        max.map_or(0, |m| m as usize + 1)
    }

    /// Evaluate against `store`. Each result row binds every variable
    /// (columns ordered by variable index); rows are deduplicated and
    /// sorted for determinism.
    ///
    /// # Panics
    /// Panics if a variable index is used in the query but some lower
    /// index is never bound by any pattern (a disconnected variable
    /// numbering — always a query-construction bug).
    pub fn evaluate(&self, store: &TripleStore) -> Vec<Vec<TermId>> {
        let width = self.variable_count();
        let mut bindings: Vec<Option<TermId>> = vec![None; width];
        let mut used = vec![false; self.patterns.len()];
        let mut rows = Vec::new();
        self.join(store, &mut bindings, &mut used, &mut rows);
        for row in &rows {
            assert!(
                row.iter().all(Option::is_some),
                "every variable must appear in some pattern"
            );
        }
        // The assertion above guarantees every binding is `Some`;
        // `flatten` drops nothing.
        let mut out: Vec<Vec<TermId>> = rows
            .into_iter()
            .map(|row| row.into_iter().flatten().collect())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `true` if the query has at least one result.
    pub fn matches(&self, store: &TripleStore) -> bool {
        // Cheap existence check: reuse evaluate (result sets in this
        // workspace are small); a dedicated early-exit would only matter
        // for very large result sets.
        !self.evaluate(store).is_empty()
    }

    fn join(
        &self,
        store: &TripleStore,
        bindings: &mut Vec<Option<TermId>>,
        used: &mut Vec<bool>,
        rows: &mut Vec<Vec<Option<TermId>>>,
    ) {
        // Pick the most selective unused pattern under current bindings.
        let next = (0..self.patterns.len())
            .filter(|&ix| !used[ix])
            .max_by_key(|&ix| self.bound_count(ix, bindings));
        let Some(ix) = next else {
            rows.push(bindings.clone());
            return;
        };
        used[ix] = true;
        let pat = self.patterns[ix];
        let resolve = |qt: QueryTerm, bindings: &[Option<TermId>]| match qt {
            QueryTerm::Bound(id) => Some(id),
            QueryTerm::Variable(Var(v)) => bindings[v as usize],
        };
        let store_pattern = TriplePattern::new(
            resolve(pat.s, bindings),
            resolve(pat.p, bindings),
            resolve(pat.o, bindings),
        );
        let candidates: Vec<crate::Triple> = store.match_pattern(store_pattern).collect();
        for triple in candidates {
            // Bind the free variables of this pattern, respecting
            // repeated variables within one pattern (e.g. (?x, p, ?x)).
            let mut newly_bound: Vec<u16> = Vec::new();
            let mut ok = true;
            for (qt, value) in [(pat.s, triple.s), (pat.p, triple.p), (pat.o, triple.o)] {
                if let QueryTerm::Variable(Var(v)) = qt {
                    match bindings[v as usize] {
                        Some(existing) if existing != value => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            bindings[v as usize] = Some(value);
                            newly_bound.push(v);
                        }
                    }
                }
            }
            if ok {
                self.join(store, bindings, used, rows);
            }
            for v in newly_bound {
                bindings[v as usize] = None;
            }
        }
        used[ix] = false;
    }

    fn bound_count(&self, ix: usize, bindings: &[Option<TermId>]) -> u8 {
        let pat = self.patterns[ix];
        let is_bound = |qt: QueryTerm| match qt {
            QueryTerm::Bound(_) => true,
            QueryTerm::Variable(Var(v)) => bindings[v as usize].is_some(),
        };
        is_bound(pat.s) as u8 + is_bound(pat.p) as u8 + is_bound(pat.o) as u8
    }
}

/// Failure modes of [`parse_query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryParseError {
    /// A pattern did not have exactly three tokens.
    BadArity(String),
    /// A token was neither `?var`, `<iri>`, nor `"literal"`.
    BadToken(String),
    /// An IRI/literal is not present in the interner (so the query could
    /// never match; surfaced as an error for explicitness).
    UnknownTerm(String),
    /// The query text contained no patterns.
    Empty,
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryParseError::BadArity(p) => write!(f, "pattern needs 3 terms: {p:?}"),
            QueryParseError::BadToken(t) => write!(f, "cannot parse term {t:?}"),
            QueryParseError::UnknownTerm(t) => write!(f, "term not in knowledge base: {t}"),
            QueryParseError::Empty => write!(f, "empty query"),
        }
    }
}

impl std::error::Error for QueryParseError {}

/// A parsed query plus the names of its variables (column order of the
/// result rows).
#[derive(Clone, Debug)]
pub struct ParsedQuery {
    /// The executable query.
    pub query: Query,
    /// Variable names in column order (`?x` stored as `"x"`).
    pub variables: Vec<String>,
}

/// Parse a SPARQL-flavoured conjunctive query:
///
/// ```text
/// ?teacher <http://x/teaches> ?course . ?student <http://x/attends> ?course
/// ```
///
/// Tokens are `?name` variables, `<iri>` constants, or `"literal"`
/// constants (plain literals only); patterns separate on `.`. Variables
/// are numbered in order of first appearance, so result columns follow
/// the query text left to right.
pub fn parse_query(
    text: &str,
    interner: &crate::TermInterner,
) -> Result<ParsedQuery, QueryParseError> {
    let mut query = Query::new();
    let mut variables: Vec<String> = Vec::new();
    let mut any = false;
    for raw_pattern in text.split('.') {
        let tokens: Vec<&str> = raw_pattern.split_whitespace().collect();
        if tokens.is_empty() {
            continue; // tolerate trailing '.' and blank segments
        }
        if tokens.len() != 3 {
            return Err(QueryParseError::BadArity(raw_pattern.trim().to_string()));
        }
        let mut terms: Vec<QueryTerm> = Vec::with_capacity(3);
        for token in tokens {
            terms.push(parse_token(token, interner, &mut variables)?);
        }
        query = query.pattern(terms[0], terms[1], terms[2]);
        any = true;
    }
    if !any {
        return Err(QueryParseError::Empty);
    }
    Ok(ParsedQuery { query, variables })
}

fn parse_token(
    token: &str,
    interner: &crate::TermInterner,
    variables: &mut Vec<String>,
) -> Result<QueryTerm, QueryParseError> {
    if let Some(name) = token.strip_prefix('?') {
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(QueryParseError::BadToken(token.to_string()));
        }
        let ix = match variables.iter().position(|v| v == name) {
            Some(ix) => ix,
            None => {
                variables.push(name.to_string());
                variables.len() - 1
            }
        };
        return Ok(QueryTerm::Variable(Var(ix as u16)));
    }
    let term = if let Some(rest) = token.strip_prefix('<') {
        let iri = rest
            .strip_suffix('>')
            .ok_or_else(|| QueryParseError::BadToken(token.to_string()))?;
        crate::Term::iri(iri)
    } else if let Some(rest) = token.strip_prefix('"') {
        let lex = rest
            .strip_suffix('"')
            .ok_or_else(|| QueryParseError::BadToken(token.to_string()))?;
        crate::Term::literal(lex)
    } else {
        return Err(QueryParseError::BadToken(token.to_string()));
    };
    interner
        .lookup(&term)
        .map(QueryTerm::Bound)
        .ok_or_else(|| QueryParseError::UnknownTerm(token.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::TermId;
    use crate::triple::Triple;

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    fn tr(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(t(s), t(p), t(o))
    }

    /// knows: 1→2, 2→3, 1→3; likes: 1→9, 3→9.
    fn store() -> TripleStore {
        TripleStore::from_triples([
            tr(1, 100, 2),
            tr(2, 100, 3),
            tr(1, 100, 3),
            tr(1, 101, 9),
            tr(3, 101, 9),
        ])
    }

    #[test]
    fn single_pattern_single_var() {
        let rows = Query::new()
            .pattern(t(1), t(100), Var(0))
            .evaluate(&store());
        assert_eq!(rows, vec![vec![t(2)], vec![t(3)]]);
    }

    #[test]
    fn join_on_shared_variable() {
        // ?x knows ?y, ?y knows ?z → transitive pairs.
        let rows = Query::new()
            .pattern(Var(0), t(100), Var(1))
            .pattern(Var(1), t(100), Var(2))
            .evaluate(&store());
        assert_eq!(rows, vec![vec![t(1), t(2), t(3)]]);
    }

    #[test]
    fn star_join() {
        // ?x knows 3 AND ?x likes 9 → x = 1 (knows 3 via 1→3, likes 9).
        let rows = Query::new()
            .pattern(Var(0), t(100), t(3))
            .pattern(Var(0), t(101), t(9))
            .evaluate(&store());
        assert_eq!(rows, vec![vec![t(1)]]);
    }

    #[test]
    fn variable_predicate() {
        // All relations from node 3.
        let rows = Query::new()
            .pattern(t(3), Var(0), Var(1))
            .evaluate(&store());
        assert_eq!(rows, vec![vec![t(101), t(9)]]);
    }

    #[test]
    fn no_results_is_empty() {
        let rows = Query::new()
            .pattern(t(9), t(100), Var(0))
            .evaluate(&store());
        assert!(rows.is_empty());
        assert!(!Query::new().pattern(t(9), t(100), Var(0)).matches(&store()));
    }

    #[test]
    fn empty_query_matches_once() {
        let rows = Query::new().evaluate(&store());
        assert_eq!(rows, vec![Vec::<TermId>::new()]);
        assert!(Query::new().matches(&store()));
    }

    #[test]
    fn repeated_variable_within_pattern() {
        let mut s = store();
        s.insert(tr(7, 100, 7)); // reflexive edge
        // ?x knows ?x → only node 7.
        let rows = Query::new().pattern(Var(0), t(100), Var(0)).evaluate(&s);
        assert_eq!(rows, vec![vec![t(7)]]);
    }

    #[test]
    fn cross_product_when_disconnected() {
        // Two independent patterns: each "likes 9" subject × each
        // "knows 2" subject.
        let rows = Query::new()
            .pattern(Var(0), t(101), t(9))
            .pattern(Var(1), t(100), t(2))
            .evaluate(&store());
        assert_eq!(rows, vec![vec![t(1), t(1)], vec![t(3), t(1)]]);
    }

    #[test]
    fn triangle_query() {
        let mut s = TripleStore::new();
        // Triangle 1-2-3 plus a dangling edge.
        s.insert(tr(1, 5, 2));
        s.insert(tr(2, 5, 3));
        s.insert(tr(3, 5, 1));
        s.insert(tr(3, 5, 4));
        let rows = Query::new()
            .pattern(Var(0), t(5), Var(1))
            .pattern(Var(1), t(5), Var(2))
            .pattern(Var(2), t(5), Var(0))
            .evaluate(&s);
        // Three rotations of the triangle.
        assert_eq!(rows.len(), 3);
        for row in &rows {
            let set: std::collections::BTreeSet<_> = row.iter().collect();
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn results_are_sorted_and_deduplicated() {
        let rows = Query::new()
            .pattern(Var(0), t(100), Var(1))
            .evaluate(&store());
        let mut sorted = rows.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(rows, sorted);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn selectivity_ordering_does_not_change_results() {
        // Same query written in both pattern orders.
        let a = Query::new()
            .pattern(Var(0), t(100), Var(1))
            .pattern(Var(0), t(101), t(9))
            .evaluate(&store());
        let b = Query::new()
            .pattern(Var(0), t(101), t(9))
            .pattern(Var(0), t(100), Var(1))
            .evaluate(&store());
        assert_eq!(a, b);
    }

    #[test]
    fn variable_count_is_max_index_plus_one() {
        let q = Query::new().pattern(Var(2), t(1), Var(0));
        assert_eq!(q.variable_count(), 3);
        assert_eq!(Query::new().variable_count(), 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    mod parse {
        use super::*;
        use crate::{Graph, Term};

        fn graph() -> Graph {
            let mut g = Graph::new();
            g.insert_terms(
                Term::iri("http://x/alice"),
                Term::iri("http://x/teaches"),
                Term::iri("http://x/algo"),
            );
            g.insert_terms(
                Term::iri("http://x/bob"),
                Term::iri("http://x/attends"),
                Term::iri("http://x/algo"),
            );
            g.insert_terms(
                Term::iri("http://x/algo"),
                Term::iri("http://x/title"),
                Term::literal("Algorithms"),
            );
            g
        }

        #[test]
        fn parses_and_evaluates_join() {
            let g = graph();
            let parsed = parse_query(
                "?t <http://x/teaches> ?c . ?s <http://x/attends> ?c",
                g.interner(),
            )
            .unwrap();
            assert_eq!(parsed.variables, vec!["t", "c", "s"]);
            let rows = parsed.query.evaluate(g.store());
            assert_eq!(rows.len(), 1);
            let alice = g.interner().lookup_iri("http://x/alice").unwrap();
            let bob = g.interner().lookup_iri("http://x/bob").unwrap();
            let algo = g.interner().lookup_iri("http://x/algo").unwrap();
            // Columns follow first-appearance order: t, c, s.
            assert_eq!(rows[0], vec![alice, algo, bob]);
        }

        #[test]
        fn parses_literal_constant() {
            let g = graph();
            let parsed =
                parse_query("?what <http://x/title> \"Algorithms\"", g.interner()).unwrap();
            let rows = parsed.query.evaluate(g.store());
            assert_eq!(rows.len(), 1);
        }

        #[test]
        fn tolerates_trailing_dot_and_whitespace() {
            let g = graph();
            let parsed = parse_query(
                "  ?t <http://x/teaches> ?c .  ",
                g.interner(),
            )
            .unwrap();
            assert_eq!(parsed.variables, vec!["t", "c"]);
            assert_eq!(parsed.query.len(), 1);
        }

        #[test]
        fn rejects_malformed_queries() {
            let g = graph();
            assert!(matches!(
                parse_query("?a ?b", g.interner()),
                Err(QueryParseError::BadArity(_))
            ));
            assert!(matches!(
                parse_query("?a <http://x/teaches> junk", g.interner()),
                Err(QueryParseError::BadToken(_))
            ));
            assert!(matches!(
                parse_query("?a <http://x/teaches ?b", g.interner()),
                Err(QueryParseError::BadToken(_))
            ));
            assert!(matches!(
                parse_query("? <http://x/teaches> ?b", g.interner()),
                Err(QueryParseError::BadToken(_))
            ));
            assert!(matches!(
                parse_query("", g.interner()),
                Err(QueryParseError::Empty)
            ));
            assert!(matches!(
                parse_query("?a <http://x/nonexistent> ?b", g.interner()),
                Err(QueryParseError::UnknownTerm(_))
            ));
        }

        #[test]
        fn error_display_is_informative() {
            assert!(QueryParseError::BadArity("x y".into())
                .to_string()
                .contains("3 terms"));
            assert!(QueryParseError::UnknownTerm("<x>".into())
                .to_string()
                .contains("not in knowledge base"));
        }
    }
}
