//! Single-snapshot convenience container bundling interner, vocabulary,
//! and triple store.

use crate::interner::TermInterner;
use crate::ntriples::{self, ParseError};
use crate::schema::SchemaView;
use crate::store::TripleStore;
use crate::term::{Term, TermId};
use crate::triple::Triple;
use crate::vocab::Vocab;

/// An RDF graph: a [`TripleStore`] plus the [`TermInterner`] and [`Vocab`]
/// its identifiers live in.
///
/// This is the entry point for single-version use (loading files, building
/// fixtures); the versioning layer manages its own shared interner across
/// snapshots instead.
#[derive(Clone, Debug)]
pub struct Graph {
    interner: TermInterner,
    vocab: Vocab,
    store: TripleStore,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// An empty graph with the core vocabulary pre-interned.
    pub fn new() -> Graph {
        let mut interner = TermInterner::new();
        let vocab = Vocab::install(&mut interner);
        Graph {
            interner,
            vocab,
            store: TripleStore::new(),
        }
    }

    /// Parse an N-Triples document into a fresh graph.
    pub fn from_ntriples(input: &str) -> Result<Graph, ParseError> {
        let mut graph = Graph::new();
        graph.load_ntriples(input)?;
        Ok(graph)
    }

    /// Parse and insert an N-Triples document; returns the number of
    /// distinct triples added.
    pub fn load_ntriples(&mut self, input: &str) -> Result<usize, ParseError> {
        let parsed = ntriples::parse_document(input)?;
        let mut added = 0;
        for (s, p, o) in parsed {
            if self.insert_terms(s, p, o).1 {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Serialise every triple in canonical N-Triples (SPO id order).
    pub fn to_ntriples(&self) -> String {
        let mut out = String::new();
        for t in self.store.iter() {
            ntriples::write_triple(
                &mut out,
                self.interner.resolve(t.s),
                self.interner.resolve(t.p),
                self.interner.resolve(t.o),
            );
        }
        out
    }

    /// Intern three terms and insert the resulting triple. Returns the
    /// triple and whether it was newly inserted.
    pub fn insert_terms(&mut self, s: Term, p: Term, o: Term) -> (Triple, bool) {
        let triple = Triple::new(
            self.interner.intern(s),
            self.interner.intern(p),
            self.interner.intern(o),
        );
        let fresh = self.store.insert(triple);
        (triple, fresh)
    }

    /// Insert a pre-interned triple.
    pub fn insert(&mut self, triple: Triple) -> bool {
        self.store.insert(triple)
    }

    /// Intern an IRI (convenience for fixture building).
    pub fn iri(&mut self, iri: impl Into<String>) -> TermId {
        self.interner.intern(Term::iri(iri))
    }

    /// Extract the schema view of the current contents.
    pub fn schema(&self) -> SchemaView {
        SchemaView::extract(&self.store, &self.vocab)
    }

    /// The underlying term interner.
    pub fn interner(&self) -> &TermInterner {
        &self.interner
    }

    /// Mutable access to the interner.
    pub fn interner_mut(&mut self) -> &mut TermInterner {
        &mut self.interner
    }

    /// The pre-interned core vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The underlying triple store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Mutable access to the triple store.
    pub fn store_mut(&mut self) -> &mut TripleStore {
        &mut self.store
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` if the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
# tiny fixture
<http://x/Student> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x/Person> .
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Student> .
<http://x/alice> <http://x/name> "Alice" .
"#;

    #[test]
    fn load_and_roundtrip() {
        let g = Graph::from_ntriples(DOC).unwrap();
        assert_eq!(g.len(), 3);
        let doc = g.to_ntriples();
        let g2 = Graph::from_ntriples(&doc).unwrap();
        assert_eq!(g2.len(), 3);
        assert_eq!(g2.to_ntriples(), doc, "canonical form is a fixpoint");
    }

    #[test]
    fn duplicate_lines_collapse() {
        let doc = format!("{DOC}\n{DOC}");
        let g = Graph::from_ntriples(&doc).unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn schema_extraction_through_graph() {
        let mut g = Graph::from_ntriples(DOC).unwrap();
        let student = g.iri("http://x/Student");
        let person = g.iri("http://x/Person");
        let view = g.schema();
        assert!(view.is_class(student));
        assert!(view.is_class(person));
        assert_eq!(view.parents_of(student), &[person]);
        assert_eq!(view.instance_count(student), 1);
    }

    #[test]
    fn insert_terms_reports_freshness() {
        let mut g = Graph::new();
        let (t1, fresh1) = g.insert_terms(
            Term::iri("http://x/a"),
            Term::iri("http://x/p"),
            Term::iri("http://x/b"),
        );
        let (t2, fresh2) = g.insert_terms(
            Term::iri("http://x/a"),
            Term::iri("http://x/p"),
            Term::iri("http://x/b"),
        );
        assert_eq!(t1, t2);
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parse_error_propagates() {
        let err = Graph::from_ntriples("garbage here\n").unwrap_err();
        assert_eq!(err.line, 1);
    }
}
