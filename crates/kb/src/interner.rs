//! Bidirectional [`Term`] ↔ [`TermId`] interner.

use crate::fxhash::FxHashMap;
use crate::term::{Term, TermId};

/// Deduplicating bidirectional map between [`Term`]s and dense [`TermId`]s.
///
/// Identifiers are handed out in insertion order starting at zero, so a
/// `TermId` doubles as an index into any `Vec` sized to
/// [`TermInterner::len`]. A single interner is shared across all versions
/// of a knowledge base so that identifiers remain stable under evolution —
/// deltas and measure reports from different version pairs are directly
/// comparable.
#[derive(Default, Clone)]
pub struct TermInterner {
    terms: Vec<Term>,
    index: FxHashMap<Term, TermId>,
}

impl TermInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with room for `capacity` terms.
    pub fn with_capacity(capacity: usize) -> Self {
        TermInterner {
            terms: Vec::with_capacity(capacity),
            index: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
        }
    }

    /// Intern `term`, returning its identifier. Re-interning an equal term
    /// returns the existing identifier without allocating.
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.index.get(&term) {
            return id;
        }
        assert!(
            u32::try_from(self.terms.len()).is_ok(),
            "interner capacity exceeded u32::MAX terms"
        );
        let id = TermId::from_u32(self.terms.len() as u32);
        self.index.insert(term.clone(), id);
        self.terms.push(term);
        id
    }

    /// Convenience: intern an IRI term from its string form.
    pub fn intern_iri(&mut self, iri: impl Into<String>) -> TermId {
        self.intern(Term::iri(iri))
    }

    /// Look up the identifier of a term without interning it.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// Look up the identifier of an IRI without interning it.
    pub fn lookup_iri(&self, iri: &str) -> Option<TermId> {
        // Avoids the Box allocation of Term::iri in the common hit case is
        // not possible with a HashMap keyed by Term; the miss/hit cost is
        // one small allocation either way and this is not on a hot path.
        self.lookup(&Term::iri(iri))
    }

    /// Resolve an identifier to its term.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Resolve an identifier, returning `None` for foreign identifiers.
    pub fn try_resolve(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate `(id, term)` pairs in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(ix, term)| (TermId::from_u32(ix as u32), term))
    }

    /// A short display label for an identifier (see [`Term::short_name`]);
    /// falls back to the raw id for foreign identifiers.
    pub fn label(&self, id: TermId) -> String {
        match self.try_resolve(id) {
            Some(term) => term.short_name().to_string(),
            None => id.to_string(),
        }
    }
}

impl std::fmt::Debug for TermInterner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TermInterner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = TermInterner::new();
        let a1 = it.intern(Term::iri("http://x/a"));
        let a2 = it.intern(Term::iri("http://x/a"));
        assert_eq!(a1, a2);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut it = TermInterner::new();
        let ids: Vec<_> = (0..5)
            .map(|i| it.intern(Term::iri(format!("http://x/{i}"))))
            .collect();
        for (expect, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), expect);
        }
    }

    #[test]
    fn resolve_roundtrip() {
        let mut it = TermInterner::new();
        let term = Term::lang_literal("bonjour", "fr");
        let id = it.intern(term.clone());
        assert_eq!(it.resolve(id), &term);
        assert_eq!(it.lookup(&term), Some(id));
    }

    #[test]
    fn lookup_misses_without_interning() {
        let it = TermInterner::new();
        assert_eq!(it.lookup(&Term::iri("http://nope")), None);
        assert!(it.is_empty());
    }

    #[test]
    fn try_resolve_rejects_foreign_ids() {
        let it = TermInterner::new();
        assert!(it.try_resolve(TermId::from_u32(3)).is_none());
    }

    #[test]
    fn distinct_literal_kinds_get_distinct_ids() {
        let mut it = TermInterner::new();
        let plain = it.intern(Term::literal("x"));
        let lang = it.intern(Term::lang_literal("x", "en"));
        let typed = it.intern(Term::typed_literal("x", "http://dt"));
        assert_ne!(plain, lang);
        assert_ne!(plain, typed);
        assert_ne!(lang, typed);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut it = TermInterner::new();
        it.intern(Term::iri("http://x/a"));
        it.intern(Term::iri("http://x/b"));
        let pairs: Vec<_> = it.iter().map(|(id, t)| (id.index(), t.clone())).collect();
        assert_eq!(pairs[0], (0, Term::iri("http://x/a")));
        assert_eq!(pairs[1], (1, Term::iri("http://x/b")));
    }

    #[test]
    fn label_prefers_short_name() {
        let mut it = TermInterner::new();
        let id = it.intern(Term::iri("http://x/onto#Device"));
        assert_eq!(it.label(id), "Device");
        assert_eq!(it.label(TermId::from_u32(99)), "t99");
    }
}
