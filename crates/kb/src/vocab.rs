//! Well-known RDF / RDFS / OWL / XSD vocabulary IRIs and a pre-interned
//! bundle of the ones the schema extractor needs on its hot path.

use crate::interner::TermInterner;
use crate::term::{Term, TermId};

/// `rdf:type`
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// `rdf:Property`
pub const RDF_PROPERTY: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
/// `rdfs:subClassOf`
pub const RDFS_SUBCLASSOF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
/// `rdfs:subPropertyOf`
pub const RDFS_SUBPROPERTYOF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
/// `rdfs:domain`
pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
/// `rdfs:range`
pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
/// `rdfs:label`
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
/// `rdfs:comment`
pub const RDFS_COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
/// `rdfs:Class`
pub const RDFS_CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
/// `rdfs:Literal`
pub const RDFS_LITERAL: &str = "http://www.w3.org/2000/01/rdf-schema#Literal";
/// `owl:Class`
pub const OWL_CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
/// `owl:ObjectProperty`
pub const OWL_OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
/// `owl:DatatypeProperty`
pub const OWL_DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
/// `owl:Thing`
pub const OWL_THING: &str = "http://www.w3.org/2002/07/owl#Thing";
/// `xsd:string`
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
/// `xsd:integer`
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
/// `xsd:double`
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
/// `xsd:boolean`
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
/// `xsd:dateTime`
pub const XSD_DATETIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";

/// The core vocabulary pre-interned into a [`TermInterner`].
///
/// Schema extraction and change detection test predicates against these
/// ids in tight loops; resolving them once up front avoids per-triple
/// string comparisons.
#[derive(Copy, Clone, Debug)]
pub struct Vocab {
    /// `rdf:type`
    pub rdf_type: TermId,
    /// `rdf:Property`
    pub rdf_property: TermId,
    /// `rdfs:subClassOf`
    pub rdfs_subclassof: TermId,
    /// `rdfs:subPropertyOf`
    pub rdfs_subpropertyof: TermId,
    /// `rdfs:domain`
    pub rdfs_domain: TermId,
    /// `rdfs:range`
    pub rdfs_range: TermId,
    /// `rdfs:label`
    pub rdfs_label: TermId,
    /// `rdfs:comment`
    pub rdfs_comment: TermId,
    /// `rdfs:Class`
    pub rdfs_class: TermId,
    /// `owl:Class`
    pub owl_class: TermId,
    /// `owl:ObjectProperty`
    pub owl_object_property: TermId,
    /// `owl:DatatypeProperty`
    pub owl_datatype_property: TermId,
}

impl Vocab {
    /// Intern (or look up) the core vocabulary in `interner`.
    pub fn install(interner: &mut TermInterner) -> Vocab {
        let mut id = |iri: &str| interner.intern(Term::iri(iri));
        Vocab {
            rdf_type: id(RDF_TYPE),
            rdf_property: id(RDF_PROPERTY),
            rdfs_subclassof: id(RDFS_SUBCLASSOF),
            rdfs_subpropertyof: id(RDFS_SUBPROPERTYOF),
            rdfs_domain: id(RDFS_DOMAIN),
            rdfs_range: id(RDFS_RANGE),
            rdfs_label: id(RDFS_LABEL),
            rdfs_comment: id(RDFS_COMMENT),
            rdfs_class: id(RDFS_CLASS),
            owl_class: id(OWL_CLASS),
            owl_object_property: id(OWL_OBJECT_PROPERTY),
            owl_datatype_property: id(OWL_DATATYPE_PROPERTY),
        }
    }

    /// `true` if `id` is one of the installed schema-level predicates
    /// (`rdf:type`, subsumption, domain/range, annotation properties).
    pub fn is_schema_predicate(&self, id: TermId) -> bool {
        id == self.rdf_type
            || id == self.rdfs_subclassof
            || id == self.rdfs_subpropertyof
            || id == self.rdfs_domain
            || id == self.rdfs_range
            || id == self.rdfs_label
            || id == self.rdfs_comment
    }

    /// `true` if `id` denotes a class-declaring type
    /// (`rdfs:Class` / `owl:Class`).
    pub fn is_class_type(&self, id: TermId) -> bool {
        id == self.rdfs_class || id == self.owl_class
    }

    /// `true` if `id` denotes a property-declaring type
    /// (`rdf:Property` / `owl:ObjectProperty` / `owl:DatatypeProperty`).
    pub fn is_property_type(&self, id: TermId) -> bool {
        id == self.rdf_property
            || id == self.owl_object_property
            || id == self.owl_datatype_property
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent() {
        let mut it = TermInterner::new();
        let v1 = Vocab::install(&mut it);
        let before = it.len();
        let v2 = Vocab::install(&mut it);
        assert_eq!(it.len(), before, "second install must not grow interner");
        assert_eq!(v1.rdf_type, v2.rdf_type);
        assert_eq!(v1.rdfs_subclassof, v2.rdfs_subclassof);
    }

    #[test]
    fn classifiers_partition_vocabulary() {
        let mut it = TermInterner::new();
        let v = Vocab::install(&mut it);
        assert!(v.is_schema_predicate(v.rdf_type));
        assert!(v.is_schema_predicate(v.rdfs_domain));
        assert!(!v.is_schema_predicate(v.owl_class));
        assert!(v.is_class_type(v.rdfs_class));
        assert!(v.is_class_type(v.owl_class));
        assert!(!v.is_class_type(v.rdf_property));
        assert!(v.is_property_type(v.rdf_property));
        assert!(v.is_property_type(v.owl_object_property));
        assert!(!v.is_property_type(v.rdfs_class));
    }

    #[test]
    fn constants_are_wellformed_iris() {
        for iri in [
            RDF_TYPE,
            RDF_PROPERTY,
            RDFS_SUBCLASSOF,
            RDFS_SUBPROPERTYOF,
            RDFS_DOMAIN,
            RDFS_RANGE,
            RDFS_LABEL,
            RDFS_COMMENT,
            RDFS_CLASS,
            RDFS_LITERAL,
            OWL_CLASS,
            OWL_OBJECT_PROPERTY,
            OWL_DATATYPE_PROPERTY,
            OWL_THING,
            XSD_STRING,
            XSD_INTEGER,
            XSD_DOUBLE,
            XSD_BOOLEAN,
            XSD_DATETIME,
        ] {
            assert!(iri.starts_with("http://"), "{iri}");
            assert!(!iri.contains(' '));
        }
    }
}
