//! Indexed triple store.

use crate::term::TermId;
use crate::triple::{Triple, TriplePattern};
use std::collections::BTreeSet;
use std::ops::Bound;

type Key = (TermId, TermId, TermId);

/// An in-memory triple store with three covering indexes (SPO, POS, OSP).
///
/// Every access pattern with at least one bound position resolves to a
/// contiguous range scan over one of the indexes:
///
/// | bound      | index | range prefix |
/// |------------|-------|--------------|
/// | s / s,p    | SPO   | (s) / (s,p)  |
/// | p / p,o    | POS   | (p) / (p,o)  |
/// | o / o,s    | OSP   | (o) / (o,s)  |
/// | s,p,o      | SPO   | membership   |
///
/// The store is the snapshot representation used by the versioning layer;
/// ordered iteration (SPO order) makes snapshot diffing a linear merge.
#[derive(Default, Clone)]
pub struct TripleStore {
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a store from an iterator of triples (duplicates collapse).
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> Self {
        let mut store = TripleStore::new();
        store.extend(triples);
        store
    }

    /// Insert a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        let fresh = self.spo.insert((t.s, t.p, t.o));
        if fresh {
            self.pos.insert((t.p, t.o, t.s));
            self.osp.insert((t.o, t.s, t.p));
        }
        fresh
    }

    /// Remove a triple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Triple) -> bool {
        let had = self.spo.remove(&(t.s, t.p, t.o));
        if had {
            self.pos.remove(&(t.p, t.o, t.s));
            self.osp.remove(&(t.o, t.s, t.p));
        }
        had
    }

    /// Insert every triple from `iter`.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = Triple>) {
        for t in iter {
            self.insert(t);
        }
    }

    /// `true` if the exact triple is present.
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo.contains(&(t.s, t.p, t.o))
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// `true` if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterate all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(s, p, o)| Triple::new(s, p, o))
    }

    /// Iterate triples matching `pattern`, using the best covering index.
    pub fn match_pattern(&self, pattern: TriplePattern) -> Box<dyn Iterator<Item = Triple> + '_> {
        fn range(
            set: &BTreeSet<Key>,
            first: TermId,
            second: Option<TermId>,
        ) -> impl Iterator<Item = Key> + '_ {
            let (lo, hi) = match second {
                Some(second) => (
                    (first, second, TermId::MIN),
                    (first, second, TermId::MAX),
                ),
                None => (
                    (first, TermId::MIN, TermId::MIN),
                    (first, TermId::MAX, TermId::MAX),
                ),
            };
            set.range((Bound::Included(lo), Bound::Included(hi))).copied()
        }

        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                if self.contains(&t) {
                    Box::new(std::iter::once(t))
                } else {
                    Box::new(std::iter::empty())
                }
            }
            (Some(s), p, None) => {
                Box::new(range(&self.spo, s, p).map(|(s, p, o)| Triple::new(s, p, o)))
            }
            (None, Some(p), o) => {
                Box::new(range(&self.pos, p, o).map(|(p, o, s)| Triple::new(s, p, o)))
            }
            (s, None, Some(o)) => {
                Box::new(range(&self.osp, o, s).map(|(o, s, p)| Triple::new(s, p, o)))
            }
            (None, None, None) => Box::new(self.iter()),
        }
    }

    /// All objects `o` of triples `(s, p, o)`.
    pub fn objects_of(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        range2(&self.spo, s, p).map(|(_, _, o)| o)
    }

    /// All subjects `s` of triples `(s, p, o)`.
    pub fn subjects_of(&self, p: TermId, o: TermId) -> impl Iterator<Item = TermId> + '_ {
        range2(&self.pos, p, o).map(|(_, _, s)| s)
    }

    /// All triples whose predicate is `p`.
    pub fn with_predicate(&self, p: TermId) -> impl Iterator<Item = Triple> + '_ {
        range1(&self.pos, p).map(|(p, o, s)| Triple::new(s, p, o))
    }

    /// All triples whose subject is `s`.
    pub fn with_subject(&self, s: TermId) -> impl Iterator<Item = Triple> + '_ {
        range1(&self.spo, s).map(|(s, p, o)| Triple::new(s, p, o))
    }

    /// All triples whose object is `o`.
    pub fn with_object(&self, o: TermId) -> impl Iterator<Item = Triple> + '_ {
        range1(&self.osp, o).map(|(o, s, p)| Triple::new(s, p, o))
    }

    /// Triples mentioning `term` in any position, deduplicated, in SPO
    /// order. This realises the δ(n) restriction of ICDE'17 §II(a) when
    /// applied to delta stores.
    pub fn mentioning(&self, term: TermId) -> Vec<Triple> {
        let mut out: Vec<Triple> = self
            .with_subject(term)
            .chain(self.with_predicate(term))
            .chain(self.with_object(term))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of triples mentioning `term` in any position.
    pub fn mention_count(&self, term: TermId) -> usize {
        // Count each position then correct for triples where the term
        // occupies several positions (rare but possible, e.g. reflexive
        // statements).
        self.mentioning(term).len()
    }

    /// Distinct predicates, in ascending id order.
    pub fn distinct_predicates(&self) -> Vec<TermId> {
        distinct_firsts(&self.pos)
    }

    /// Distinct subjects, in ascending id order.
    pub fn distinct_subjects(&self) -> Vec<TermId> {
        distinct_firsts(&self.spo)
    }

    /// Distinct objects, in ascending id order.
    pub fn distinct_objects(&self) -> Vec<TermId> {
        distinct_firsts(&self.osp)
    }

    /// Triples present in `self` but not in `other` (a set difference in
    /// SPO order; the building block of low-level deltas).
    pub fn difference<'a>(&'a self, other: &'a TripleStore) -> impl Iterator<Item = Triple> + 'a {
        self.spo
            .difference(&other.spo)
            .map(|&(s, p, o)| Triple::new(s, p, o))
    }
}

impl std::fmt::Debug for TripleStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TripleStore")
            .field("len", &self.len())
            .finish()
    }
}

impl FromIterator<Triple> for TripleStore {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        TripleStore::from_triples(iter)
    }
}

impl PartialEq for TripleStore {
    fn eq(&self, other: &Self) -> bool {
        self.spo == other.spo
    }
}

impl Eq for TripleStore {}

fn range1(set: &BTreeSet<Key>, first: TermId) -> impl Iterator<Item = Key> + '_ {
    set.range((
        Bound::Included((first, TermId::MIN, TermId::MIN)),
        Bound::Included((first, TermId::MAX, TermId::MAX)),
    ))
    .copied()
}

fn range2(set: &BTreeSet<Key>, first: TermId, second: TermId) -> impl Iterator<Item = Key> + '_ {
    set.range((
        Bound::Included((first, second, TermId::MIN)),
        Bound::Included((first, second, TermId::MAX)),
    ))
    .copied()
}

fn distinct_firsts(set: &BTreeSet<Key>) -> Vec<TermId> {
    let mut out = Vec::new();
    let mut cursor = TermId::MIN;
    loop {
        let next = set
            .range((
                Bound::Included((cursor, TermId::MIN, TermId::MIN)),
                Bound::Unbounded,
            ))
            .next();
        match next {
            Some(&(first, _, _)) => {
                out.push(first);
                if first == TermId::MAX {
                    break;
                }
                cursor = TermId::from_u32(first.as_u32() + 1);
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> TermId {
        TermId::from_u32(n)
    }

    fn tr(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(t(s), t(p), t(o))
    }

    fn sample() -> TripleStore {
        TripleStore::from_triples([
            tr(1, 10, 2),
            tr(1, 10, 3),
            tr(1, 11, 2),
            tr(2, 10, 3),
            tr(3, 12, 1),
        ])
    }

    #[test]
    fn insert_is_idempotent_across_indexes() {
        let mut s = TripleStore::new();
        assert!(s.insert(tr(1, 2, 3)));
        assert!(!s.insert(tr(1, 2, 3)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.match_pattern(TriplePattern::with_predicate(t(2))).count(), 1);
        assert_eq!(s.match_pattern(TriplePattern::with_object(t(3))).count(), 1);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut s = sample();
        assert!(s.remove(&tr(1, 10, 2)));
        assert!(!s.remove(&tr(1, 10, 2)));
        assert!(!s.contains(&tr(1, 10, 2)));
        assert_eq!(s.match_pattern(TriplePattern::with_subject(t(1))).count(), 2);
        assert_eq!(s.match_pattern(TriplePattern::with_object(t(2))).count(), 1);
    }

    #[test]
    fn pattern_all_positions() {
        let s = sample();
        assert_eq!(s.match_pattern(TriplePattern::ANY).count(), 5);
        assert_eq!(s.match_pattern(TriplePattern::with_subject(t(1))).count(), 3);
        assert_eq!(s.match_pattern(TriplePattern::with_predicate(t(10))).count(), 3);
        assert_eq!(s.match_pattern(TriplePattern::with_object(t(3))).count(), 2);
    }

    #[test]
    fn pattern_two_bound() {
        let s = sample();
        let sp = TriplePattern::new(Some(t(1)), Some(t(10)), None);
        assert_eq!(s.match_pattern(sp).count(), 2);
        let po = TriplePattern::new(None, Some(t(10)), Some(t(3)));
        let got: Vec<_> = s.match_pattern(po).collect();
        assert_eq!(got, vec![tr(1, 10, 3), tr(2, 10, 3)]);
        let so = TriplePattern::new(Some(t(1)), None, Some(t(2)));
        assert_eq!(s.match_pattern(so).count(), 2);
    }

    #[test]
    fn pattern_fully_bound() {
        let s = sample();
        let hit = TriplePattern::new(Some(t(3)), Some(t(12)), Some(t(1)));
        assert_eq!(s.match_pattern(hit).count(), 1);
        let miss = TriplePattern::new(Some(t(3)), Some(t(12)), Some(t(2)));
        assert_eq!(s.match_pattern(miss).count(), 0);
    }

    #[test]
    fn pattern_results_satisfy_pattern() {
        let s = sample();
        for pat in [
            TriplePattern::with_subject(t(1)),
            TriplePattern::with_predicate(t(10)),
            TriplePattern::with_object(t(2)),
            TriplePattern::new(Some(t(1)), None, Some(t(3))),
        ] {
            for got in s.match_pattern(pat) {
                assert!(pat.matches(&got), "{got:?} should match {pat:?}");
            }
        }
    }

    #[test]
    fn objects_and_subjects_of() {
        let s = sample();
        let objs: Vec<_> = s.objects_of(t(1), t(10)).collect();
        assert_eq!(objs, vec![t(2), t(3)]);
        let subs: Vec<_> = s.subjects_of(t(10), t(3)).collect();
        assert_eq!(subs, vec![t(1), t(2)]);
    }

    #[test]
    fn mentioning_deduplicates_multi_position_terms() {
        // Term 1 appears as subject (three triples) and object (one).
        let s = sample();
        let m = s.mentioning(t(1));
        assert_eq!(m.len(), 4);
        assert_eq!(s.mention_count(t(1)), 4);
        // Reflexive statement counted once.
        let mut s2 = TripleStore::new();
        s2.insert(tr(5, 5, 5));
        assert_eq!(s2.mention_count(t(5)), 1);
    }

    #[test]
    fn distinct_terms_per_position() {
        let s = sample();
        assert_eq!(s.distinct_subjects(), vec![t(1), t(2), t(3)]);
        assert_eq!(s.distinct_predicates(), vec![t(10), t(11), t(12)]);
        assert_eq!(s.distinct_objects(), vec![t(1), t(2), t(3)]);
    }

    #[test]
    fn difference_is_asymmetric() {
        let a = sample();
        let mut b = sample();
        b.remove(&tr(1, 11, 2));
        b.insert(tr(9, 9, 9));
        let a_minus_b: Vec<_> = a.difference(&b).collect();
        assert_eq!(a_minus_b, vec![tr(1, 11, 2)]);
        let b_minus_a: Vec<_> = b.difference(&a).collect();
        assert_eq!(b_minus_a, vec![tr(9, 9, 9)]);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let forward = sample();
        let mut reversed: Vec<_> = forward.iter().collect();
        reversed.reverse();
        assert_eq!(forward, TripleStore::from_triples(reversed));
    }

    #[test]
    fn empty_store_behaviour() {
        let s = TripleStore::new();
        assert!(s.is_empty());
        assert_eq!(s.match_pattern(TriplePattern::ANY).count(), 0);
        assert_eq!(s.distinct_subjects(), Vec::<TermId>::new());
    }
}
