//! User-population generation: interest profiles, groups, and private
//! change feeds.
//!
//! Users pick a *topic* class by Zipf over the class list (popular
//! classes attract more users — the §III "humans who generate and consume
//! the data"), then spread interest over the topic's neighbourhood in the
//! subclass tree: full weight on the topic, decaying weight on its
//! parent/children. Planted topics give the relatedness experiments
//! (E5) measurable ground truth.

use crate::schema_gen::GeneratedKb;
use crate::zipf::Zipf;
use evorec_core::{Group, UserFeed, UserId, UserProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated user population.
#[derive(Clone, Copy, Debug)]
pub struct PopulationConfig {
    /// Number of users.
    pub users: usize,
    /// Zipf exponent over classes for topic selection.
    pub topic_zipf: f64,
    /// Interest decay per tree hop away from the topic.
    pub spread_decay: f64,
    /// Maximum tree hops interest spreads.
    pub spread_radius: usize,
    /// Fraction of users flagged sensitive (clinical workload).
    pub sensitive_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            users: 20,
            topic_zipf: 1.0,
            spread_decay: 0.5,
            spread_radius: 2,
            sensitive_fraction: 0.0,
            seed: 99,
        }
    }
}

/// A generated population with its ground truth.
pub struct Population {
    /// The user profiles.
    pub profiles: Vec<UserProfile>,
    /// Each user's planted topic (class index into `kb.classes`).
    pub topics: Vec<usize>,
}

/// Generate a population of interest profiles over `kb`.
pub fn generate_population(kb: &GeneratedKb, config: PopulationConfig) -> Population {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let topic_pick = Zipf::new(kb.classes.len(), config.topic_zipf);
    let mut profiles = Vec::with_capacity(config.users);
    let mut topics = Vec::with_capacity(config.users);
    for u in 0..config.users {
        let topic = topic_pick.sample(&mut rng);
        topics.push(topic);
        let mut profile = UserProfile::new(UserId(u as u32), format!("user-{u}"));
        if rng.gen_bool(config.sensitive_fraction.clamp(0.0, 1.0)) {
            profile.sensitive = true;
        }
        // Spread interest over the topic's tree neighbourhood by BFS.
        let mut frontier = vec![topic];
        let mut weight = 1.0;
        let mut visited = vec![topic];
        for _hop in 0..=config.spread_radius {
            for &class in &frontier {
                profile.nudge_interest(kb.classes[class], weight);
            }
            let mut next = Vec::new();
            for &class in &frontier {
                if let Some(parent) = kb.class_parent[class] {
                    if !visited.contains(&parent) {
                        visited.push(parent);
                        next.push(parent);
                    }
                }
                for child in kb.children_of(class) {
                    if !visited.contains(&child) {
                        visited.push(child);
                        next.push(child);
                    }
                }
            }
            frontier = next;
            weight *= config.spread_decay;
            if frontier.is_empty() {
                break;
            }
        }
        profiles.push(profile);
    }
    Population { profiles, topics }
}

/// Partition `population` into groups of `size`. With
/// `homogeneous = true`, users are grouped by topic proximity (sorted by
/// topic class); otherwise topics are interleaved so each group mixes
/// tastes — the hard case for §III(d) fairness.
pub fn generate_groups(population: &Population, size: usize, homogeneous: bool) -> Vec<Group> {
    assert!(size >= 1, "group size must be >= 1");
    let mut order: Vec<usize> = (0..population.profiles.len()).collect();
    if homogeneous {
        order.sort_by_key(|&u| population.topics[u]);
    } else {
        // Interleave by topic: sort by topic then round-robin deal.
        order.sort_by_key(|&u| population.topics[u]);
        let groups = population.profiles.len().div_ceil(size);
        let mut dealt: Vec<Vec<usize>> = vec![Vec::new(); groups.max(1)];
        for (ix, u) in order.iter().enumerate() {
            dealt[ix % groups.max(1)].push(*u);
        }
        return dealt
            .into_iter()
            .enumerate()
            .filter(|(_, members)| !members.is_empty())
            .map(|(g, members)| {
                Group::new(
                    format!("group-{g}"),
                    members
                        .into_iter()
                        .map(|u| population.profiles[u].id)
                        .collect(),
                )
            })
            .collect();
    }
    order
        .chunks(size)
        .enumerate()
        .map(|(g, chunk)| {
            Group::new(
                format!("group-{g}"),
                chunk.iter().map(|&u| population.profiles[u].id).collect(),
            )
        })
        .collect()
}

/// Generate private per-user change feeds: each user carries change mass
/// on `entries_per_user` classes sampled Zipf-near their topic (the
/// clinical-records stand-in for the §III(e) anonymity experiments).
pub fn generate_feeds(
    kb: &GeneratedKb,
    population: &Population,
    entries_per_user: usize,
    seed: u64,
) -> Vec<UserFeed> {
    let mut rng = StdRng::seed_from_u64(seed);
    population
        .profiles
        .iter()
        .zip(&population.topics)
        .map(|(profile, &topic)| {
            // Feed classes: the topic subtree plus random fill.
            let subtree = kb.subtree_of(topic);
            let entries: Vec<(evorec_kb::TermId, f64)> = (0..entries_per_user)
                .map(|_| {
                    let class = if rng.gen_bool(0.7) {
                        subtree[rng.gen_range(0..subtree.len())]
                    } else {
                        rng.gen_range(0..kb.classes.len())
                    };
                    (kb.classes[class], rng.gen_range(1..=5) as f64)
                })
                .collect();
            UserFeed::new(profile.id, entries)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::SchemaConfig;

    fn kb() -> GeneratedKb {
        GeneratedKb::generate(SchemaConfig {
            classes: 25,
            properties: 5,
            instances: 50,
            instance_zipf: 1.0,
            links_per_instance: 1.0,
            seed: 5,
        })
    }

    fn config(users: usize) -> PopulationConfig {
        PopulationConfig {
            users,
            seed: 123,
            ..Default::default()
        }
    }

    #[test]
    fn population_has_planted_topics() {
        let kb = kb();
        let pop = generate_population(&kb, config(10));
        assert_eq!(pop.profiles.len(), 10);
        assert_eq!(pop.topics.len(), 10);
        for (profile, &topic) in pop.profiles.iter().zip(&pop.topics) {
            // The topic class carries the maximal interest weight.
            let topic_term = kb.classes[topic];
            let max = pop
                .profiles
                .iter()
                .find(|p| p.id == profile.id)
                .unwrap()
                .top_interests(1);
            assert_eq!(max[0].0, topic_term, "topic dominates interests");
            assert!(profile.interest(topic_term) >= 1.0);
        }
    }

    #[test]
    fn interest_spreads_with_decay() {
        let kb = kb();
        let pop = generate_population(&kb, config(10));
        for (profile, &topic) in pop.profiles.iter().zip(&pop.topics) {
            if let Some(parent) = kb.class_parent[topic] {
                let pw = profile.interest(kb.classes[parent]);
                assert!(pw > 0.0, "parent gets spread weight");
                assert!(pw < profile.interest(kb.classes[topic]));
            }
        }
    }

    #[test]
    fn deterministic_population() {
        let kb = kb();
        let a = generate_population(&kb, config(8));
        let b = generate_population(&kb, config(8));
        assert_eq!(a.topics, b.topics);
        for (x, y) in a.profiles.iter().zip(&b.profiles) {
            assert_eq!(x.interest_mass(), y.interest_mass());
        }
    }

    #[test]
    fn sensitive_fraction_respected_statistically() {
        let kb = kb();
        let mut cfg = config(200);
        cfg.sensitive_fraction = 0.4;
        let pop = generate_population(&kb, cfg);
        let sensitive = pop.profiles.iter().filter(|p| p.sensitive).count();
        assert!((60..=140).contains(&sensitive), "got {sensitive}");
    }

    #[test]
    fn homogeneous_groups_chunk_by_topic() {
        let kb = kb();
        let pop = generate_population(&kb, config(12));
        let groups = generate_groups(&pop, 4, true);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() <= 4));
        let total: usize = groups.iter().map(Group::len).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn heterogeneous_groups_mix_topics() {
        let kb = kb();
        let mut cfg = config(12);
        cfg.topic_zipf = 0.3; // spread topics out
        let pop = generate_population(&kb, cfg);
        let groups = generate_groups(&pop, 4, false);
        let total: usize = groups.iter().map(Group::len).sum();
        assert_eq!(total, 12);
        // At least one group spans more than one topic (unless the
        // population degenerated to a single topic).
        let distinct_topics: std::collections::HashSet<_> = pop.topics.iter().collect();
        if distinct_topics.len() > 1 {
            let mixed = groups.iter().any(|g| {
                let topics: std::collections::HashSet<_> = g
                    .members
                    .iter()
                    .map(|&UserId(u)| pop.topics[u as usize])
                    .collect();
                topics.len() > 1
            });
            assert!(mixed);
        }
    }

    #[test]
    fn feeds_cover_all_users_with_positive_mass() {
        let kb = kb();
        let pop = generate_population(&kb, config(10));
        let feeds = generate_feeds(&kb, &pop, 5, 77);
        assert_eq!(feeds.len(), 10);
        for feed in &feeds {
            assert!(feed.total_mass() > 0.0);
            assert!(feed.mass_per_class.len() <= 5);
        }
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_size_rejected() {
        let kb = kb();
        let pop = generate_population(&kb, config(4));
        let _ = generate_groups(&pop, 0, true);
    }
}
