//! Replay workloads as event streams.
//!
//! Each preset of [`workload`](crate::workload) builds its evolution
//! history in batch (whole snapshots committed per scenario step). The
//! adapters here re-read that history as a sequence of triple-level
//! [`ChangeEvent`]s — removals before additions, each side in
//! deterministic triple order — so the streaming pipeline can be
//! exercised, benchmarked, and property-tested against the exact same
//! worlds the batch experiments use: streaming a workload through an
//! [`Ingestor`] seeded with its base snapshot must reproduce the same
//! snapshots, deltas, and context fingerprints as the batch build.

use crate::workload::Workload;
use evorec_kb::Triple;
use evorec_stream::{ChangeEvent, EpochCommit, EventLog, Ingestor, IngestorConfig};
use evorec_versioning::{VersionId, VersionedStore};
use std::sync::Arc;

/// The events of one evolution step `from → to`: every removed triple
/// (retractions first, ascending), then every added triple (ascending).
pub fn step_events(
    store: &VersionedStore,
    from: VersionId,
    to: VersionId,
    actor: impl Into<Arc<str>>,
) -> Vec<ChangeEvent> {
    let actor: Arc<str> = actor.into();
    let delta = store.delta(from, to);
    let mut removed: Vec<Triple> = delta.removed.iter().collect();
    removed.sort_unstable();
    let mut added: Vec<Triple> = delta.added.iter().collect();
    added.sort_unstable();
    removed
        .into_iter()
        .map(|t| ChangeEvent::retract(t, Arc::clone(&actor)))
        .chain(
            added
                .into_iter()
                .map(|t| ChangeEvent::assert(t, Arc::clone(&actor))),
        )
        .collect()
}

/// One event batch per evolution step of `workload`, oldest step first
/// (consecutive version pairs from the base to the head). Events are
/// attributed to the workload's name.
pub fn replay(workload: &Workload) -> Vec<Vec<ChangeEvent>> {
    let store = &workload.kb.store;
    let head = workload.head();
    let mut steps = Vec::new();
    let mut from = workload.base();
    while from < head {
        let to = VersionId::from_u32(from.as_u32() + 1);
        steps.push(step_events(store, from, to, workload.name));
        from = to;
    }
    steps
}

/// An [`Ingestor`] over a fresh history seeded with `workload`'s base
/// snapshot committed as V0 — term ids line up with the workload's
/// store (both intern the core vocabulary first and events carry the
/// workload's ids), so replaying [`replay`]'s batches (one
/// `commit_epoch` per batch) reproduces the workload's versions,
/// snapshot for snapshot and fingerprint for fingerprint.
pub fn seeded_ingestor(workload: &Workload, config: IngestorConfig) -> Ingestor {
    Ingestor::seeded(
        workload.kb.store.snapshot(workload.base()).clone(),
        workload.name,
        config,
    )
}

/// Replay `workload` through a fresh seeded ingestor, committing an
/// epoch at the end of every evolution step and additionally whenever
/// `config.max_batch` events are pending (mirroring the pipeline's
/// micro-batching — shrink `max_batch` to stretch a two-step workload
/// into a long epoch stream). Hands back the ingestor together with
/// every [`EpochCommit`], oldest first — the ready-made input for
/// anything consuming an epoch stream after the fact (window-advance
/// tests, fan-out benches). Batches that net to nothing commit no
/// epoch.
pub fn committed_epochs(
    workload: &Workload,
    config: IngestorConfig,
) -> (Ingestor, Vec<EpochCommit>) {
    let max_batch = config.max_batch.max(1);
    let mut ingestor = seeded_ingestor(workload, config);
    let mut commits = Vec::new();
    for batch in replay(workload) {
        for event in batch {
            ingestor.ingest(event);
            if ingestor.pending_events() >= max_batch {
                commits.extend(ingestor.commit_epoch());
            }
        }
        commits.extend(ingestor.commit_epoch());
    }
    (ingestor, commits)
}

/// Push every evolution step of `workload` into `log`, in order,
/// blocking under backpressure. Returns the number of events pushed.
///
/// # Panics
/// Panics if the log is closed while events remain.
pub fn stream_into(workload: &Workload, log: &EventLog) -> usize {
    let mut pushed = 0;
    for batch in replay(workload) {
        for event in batch {
            log.push(event).expect("log closed mid-replay");
            pushed += 1;
        }
    }
    pushed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::curated_kb;

    #[test]
    fn replay_covers_every_step_with_net_changes() {
        let w = curated_kb(40, 7);
        let steps = replay(&w);
        assert_eq!(steps.len(), w.outcomes.len());
        for (events, outcome) in steps.iter().zip(&w.outcomes) {
            let asserts = events.iter().filter(|e| e.is_assert()).count();
            let retracts = events.len() - asserts;
            assert_eq!(asserts, outcome.added);
            assert_eq!(retracts, outcome.removed);
            assert!(events.iter().all(|e| &*e.actor == w.name));
        }
    }

    #[test]
    fn streamed_replay_reproduces_batch_snapshots() {
        let w = curated_kb(40, 8);
        let mut ingestor = seeded_ingestor(&w, IngestorConfig::default());
        for batch in replay(&w) {
            ingestor.ingest_all(batch);
            ingestor.commit_epoch();
        }
        assert_eq!(
            ingestor.store().version_count(),
            w.kb.store.version_count()
        );
        let head = w.head();
        assert_eq!(ingestor.store().snapshot(head), w.kb.store.snapshot(head));
        assert_eq!(ingestor.stats().coalesced, 0, "deltas never self-cancel");
    }

    #[test]
    fn committed_epochs_returns_one_commit_per_net_step() {
        // The default max_batch (256) exceeds any step of this small
        // workload, so only the per-step flush commits.
        let w = curated_kb(30, 10);
        let (ingestor, commits) = committed_epochs(&w, IngestorConfig::default());
        assert_eq!(commits.len(), w.outcomes.len());
        assert_eq!(commits.last().unwrap().version, ingestor.head().unwrap());
        for pair in commits.windows(2) {
            assert!(pair[0].version < pair[1].version, "oldest first");
        }
    }

    #[test]
    fn committed_epochs_micro_batches_under_small_max_batch() {
        let w = curated_kb(30, 10);
        let events: usize = replay(&w).iter().map(Vec::len).sum();
        let (ingestor, commits) = committed_epochs(&w, IngestorConfig {
            max_batch: 8,
            ..Default::default()
        });
        assert!(
            commits.len() > w.outcomes.len(),
            "threshold commits stretch the stream: {} epochs",
            commits.len()
        );
        assert!(commits.len() <= events.div_ceil(8) + w.outcomes.len());
        // Same final state as the batch build regardless of chunking
        // (the streamed history has more, smaller versions).
        assert_eq!(
            ingestor.store().snapshot(ingestor.head().unwrap()),
            w.kb.store.snapshot(w.head())
        );
    }

    #[test]
    fn stream_into_delivers_everything() {
        let w = curated_kb(30, 9);
        let log = EventLog::bounded(100_000);
        let pushed = stream_into(&w, &log);
        assert_eq!(pushed as u64, log.stats().enqueued);
        assert_eq!(
            pushed,
            replay(&w).iter().map(Vec::len).sum::<usize>()
        );
    }
}
