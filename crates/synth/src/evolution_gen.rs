//! Evolution scenarios: parameterised change generators.
//!
//! Each scenario mutates the head snapshot of a [`GeneratedKb`] and
//! commits the result as a new version, returning the ground truth the
//! experiments score against (e.g. which classes were the planted
//! hotspot). Scenarios cover the change regimes the paper's measures are
//! meant to distinguish: spatially uniform churn, concentrated hotspots,
//! growth, drift between regions, topology-only refactors, and the E4
//! "few changes, big impact vs many changes, little impact" contrast.

use crate::schema_gen::GeneratedKb;
use evorec_kb::{TermId, Triple, TripleStore};
use evorec_versioning::VersionId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A parameterised evolution step.
#[derive(Clone, Debug)]
pub enum Scenario {
    /// Add/remove instance-level triples uniformly across classes.
    /// `rate` is the fraction of base instance triples churned.
    UniformChurn {
        /// Fraction of instance-level triples to churn.
        rate: f64,
    },
    /// Churn concentrated on a few focus classes (and their subtrees).
    Hotspot {
        /// How many hotspot classes to plant.
        focus_classes: usize,
        /// Fraction of instance-level triples to churn.
        rate: f64,
        /// Probability that an operation targets the hotspot.
        concentration: f64,
    },
    /// Pure growth: only additions, uniform across classes.
    Growth {
        /// New instances as a fraction of the current instance count.
        rate: f64,
    },
    /// Instances drain from one subtree and accrete in another.
    Drift {
        /// Fraction of the source subtree's instance typings to move.
        rate: f64,
    },
    /// Re-parent `moves` classes (topology change, few triples).
    SchemaRefactor {
        /// Number of classes to move.
        moves: usize,
    },
    /// The E4 contrast: move the best-connected class to a new parent
    /// (2 triples, large structural impact) AND spam one quiet leaf class
    /// with `spam_instances` new instances (many triples, local impact).
    CountVsImpact {
        /// Number of spam instances added to the quiet leaf.
        spam_instances: usize,
    },
}

/// What an evolution step did, with ground truth for evaluation.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The committed version.
    pub version: VersionId,
    /// Classes the scenario deliberately concentrated change on
    /// (empty for spatially uniform scenarios).
    pub focus_classes: Vec<TermId>,
    /// For [`Scenario::CountVsImpact`]: `(moved_hub, spammed_leaf)`.
    pub contrast: Option<(TermId, TermId)>,
    /// Triples added by the step.
    pub added: usize,
    /// Triples removed by the step.
    pub removed: usize,
}

impl GeneratedKb {
    /// Apply `scenario` to the head version and commit the result.
    pub fn evolve(&mut self, scenario: &Scenario, seed: u64) -> ScenarioOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let head = self.store.head().expect("generated KB has a base version");
        let mut snapshot = self.store.snapshot(head).clone();
        let before = snapshot.len();
        let vocab = *self.store.vocab();
        let rdf_type = vocab.rdf_type;

        let mut focus_classes = Vec::new();
        let mut contrast = None;

        match *scenario {
            Scenario::UniformChurn { rate } => {
                let candidates = instance_triples(&snapshot, self, rdf_type);
                let ops = (candidates.len() as f64 * rate).ceil() as usize;
                churn(self, &mut snapshot, &candidates, ops, None, 0.0, &mut rng);
            }
            Scenario::Hotspot {
                focus_classes: n_focus,
                rate,
                concentration,
            } => {
                let n_focus = n_focus.clamp(1, self.classes.len());
                // Deterministically pick distinct focus classes.
                let mut picked = Vec::new();
                while picked.len() < n_focus {
                    let c = rng.gen_range(0..self.classes.len());
                    if !picked.contains(&c) {
                        picked.push(c);
                    }
                }
                focus_classes = picked.iter().map(|&c| self.classes[c]).collect();
                let candidates = instance_triples(&snapshot, self, rdf_type);
                let ops = (candidates.len() as f64 * rate).ceil() as usize;
                churn(
                    self,
                    &mut snapshot,
                    &candidates,
                    ops,
                    Some(&picked),
                    concentration,
                    &mut rng,
                );
            }
            Scenario::Growth { rate } => {
                let new = (self.instances.len() as f64 * rate).ceil() as usize;
                for _ in 0..new {
                    add_instance(self, &mut snapshot, None, &mut rng);
                }
            }
            Scenario::Drift { rate } => {
                // Source: the subtree of the root's first child; sink: the
                // subtree of its last child (fall back to root when the
                // tree is degenerate).
                let kids = self.children_of(0);
                let (src, dst) = match (kids.first(), kids.last()) {
                    (Some(&a), Some(&b)) if a != b => (a, b),
                    _ => (0, 0),
                };
                let src_classes = self.subtree_of(src);
                let dst_classes = self.subtree_of(dst);
                focus_classes = vec![self.classes[src], self.classes[dst]];
                // Move typed instances: retype from a source class to a
                // sink class.
                let movable: Vec<(usize, usize)> = self
                    .instance_class
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| src_classes.contains(&c))
                    .map(|(i, &c)| (i, c))
                    .collect();
                let moves = (movable.len() as f64 * rate).ceil() as usize;
                for _ in 0..moves.min(movable.len()) {
                    let (inst_ix, old_class) = movable[rng.gen_range(0..movable.len())];
                    let new_class = dst_classes[rng.gen_range(0..dst_classes.len())];
                    let inst = self.instances[inst_ix];
                    snapshot.remove(&Triple::new(inst, rdf_type, self.classes[old_class]));
                    snapshot.insert(Triple::new(inst, rdf_type, self.classes[new_class]));
                    self.instance_class[inst_ix] = new_class;
                }
            }
            Scenario::SchemaRefactor { moves } => {
                for _ in 0..moves {
                    if let Some(class) = self.random_movable_class(&mut rng) {
                        focus_classes.push(self.classes[class]);
                        self.reparent(class, &mut snapshot, &mut rng);
                    }
                }
            }
            Scenario::CountVsImpact { spam_instances } => {
                // Hub: the class with the most subclass-tree children.
                let hub = (1..self.classes.len())
                    .max_by_key(|&c| self.children_of(c).len())
                    .unwrap_or(0);
                // Quiet leaf: a childless class distinct from the hub.
                let leaf = (1..self.classes.len())
                    .rev()
                    .find(|&c| self.children_of(c).is_empty() && c != hub)
                    .unwrap_or(self.classes.len() - 1);
                self.reparent(hub, &mut snapshot, &mut rng);
                for _ in 0..spam_instances {
                    add_instance(self, &mut snapshot, Some(leaf), &mut rng);
                }
                contrast = Some((self.classes[hub], self.classes[leaf]));
                focus_classes = vec![self.classes[hub], self.classes[leaf]];
            }
        }

        let after = snapshot.len();
        let head_snapshot = self.store.snapshot(head).clone();
        let added = snapshot.difference(&head_snapshot).count();
        let removed = head_snapshot.difference(&snapshot).count();
        let _ = (before, after);
        let version = self
            .store
            .commit_snapshot(format!("{scenario:?}"), snapshot);
        ScenarioOutcome {
            version,
            focus_classes,
            contrast,
            added,
            removed,
        }
    }

    /// A non-root class that can be re-parented without creating a cycle.
    fn random_movable_class(&self, rng: &mut StdRng) -> Option<usize> {
        if self.classes.len() < 3 {
            return None;
        }
        Some(rng.gen_range(1..self.classes.len()))
    }

    /// Re-parent `class` to a random non-descendant; updates both the
    /// snapshot and the ground-truth tree.
    fn reparent(&mut self, class: usize, snapshot: &mut TripleStore, rng: &mut StdRng) {
        let vocab = *self.store.vocab();
        let subtree = self.subtree_of(class);
        let candidates: Vec<usize> = (0..self.classes.len())
            .filter(|c| !subtree.contains(c))
            .collect();
        if candidates.is_empty() {
            return;
        }
        let new_parent = candidates[rng.gen_range(0..candidates.len())];
        if let Some(old_parent) = self.class_parent[class] {
            if old_parent == new_parent {
                return;
            }
            snapshot.remove(&Triple::new(
                self.classes[class],
                vocab.rdfs_subclassof,
                self.classes[old_parent],
            ));
        }
        snapshot.insert(Triple::new(
            self.classes[class],
            vocab.rdfs_subclassof,
            self.classes[new_parent],
        ));
        self.class_parent[class] = Some(new_parent);
    }
}

/// Instance-level triples currently in the snapshot (typings + links).
fn instance_triples(
    snapshot: &TripleStore,
    kb: &GeneratedKb,
    rdf_type: TermId,
) -> Vec<Triple> {
    let class_set: evorec_kb::FxHashSet<TermId> = kb.classes.iter().copied().collect();
    let prop_set: evorec_kb::FxHashSet<TermId> =
        kb.properties.iter().map(|&(p, _, _)| p).collect();
    snapshot
        .iter()
        .filter(|t| {
            (t.p == rdf_type && class_set.contains(&t.o)) || prop_set.contains(&t.p)
        })
        .collect()
}

/// Perform `ops` add/remove operations. With `focus` set, an operation
/// targets the focus classes with probability `concentration`.
fn churn(
    kb: &mut GeneratedKb,
    snapshot: &mut TripleStore,
    candidates: &[Triple],
    ops: usize,
    focus: Option<&[usize]>,
    concentration: f64,
    rng: &mut StdRng,
) {
    let rdf_type = kb.store.vocab().rdf_type;
    for _ in 0..ops {
        let target_class = match focus {
            Some(picked) if rng.gen_bool(concentration.clamp(0.0, 1.0)) => {
                Some(picked[rng.gen_range(0..picked.len())])
            }
            _ => None,
        };
        if rng.gen_bool(0.5) {
            add_instance(kb, snapshot, target_class, rng);
        } else {
            // Remove: prefer a candidate triple touching the target class.
            let victim = match target_class {
                Some(class) => {
                    let class_term = kb.classes[class];
                    candidates
                        .iter()
                        .filter(|t| t.mentions(class_term))
                        .nth(rng.gen_range(0..candidates.len().max(1)) % candidates.len().max(1))
                        .or_else(|| candidates.get(rng.gen_range(0..candidates.len().max(1))))
                }
                None if !candidates.is_empty() => {
                    candidates.get(rng.gen_range(0..candidates.len()))
                }
                None => None,
            };
            if let Some(t) = victim {
                snapshot.remove(t);
            } else {
                add_instance(kb, snapshot, target_class, rng);
            }
        }
        let _ = rdf_type;
    }
}

/// Mint a fresh instance typed to `class` (or a random class).
fn add_instance(
    kb: &mut GeneratedKb,
    snapshot: &mut TripleStore,
    class: Option<usize>,
    rng: &mut StdRng,
) {
    let class = class.unwrap_or_else(|| rng.gen_range(0..kb.classes.len()));
    let ix = kb.instances.len();
    let id = kb
        .store
        .intern_iri(format!("http://evorec.example/inst/i{ix}"));
    let rdf_type = kb.store.vocab().rdf_type;
    snapshot.insert(Triple::new(id, rdf_type, kb.classes[class]));
    kb.instances.push(id);
    kb.instance_class.push(class);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::SchemaConfig;
    use evorec_measures::{ClassChangeCount, EvolutionContext, EvolutionMeasure};

    fn kb() -> GeneratedKb {
        GeneratedKb::generate(SchemaConfig {
            classes: 40,
            properties: 10,
            instances: 200,
            instance_zipf: 0.8,
            links_per_instance: 1.5,
            seed: 11,
        })
    }

    #[test]
    fn uniform_churn_changes_things() {
        let mut kb = kb();
        let outcome = kb.evolve(&Scenario::UniformChurn { rate: 0.1 }, 1);
        assert!(outcome.added + outcome.removed > 0);
        assert!(outcome.focus_classes.is_empty());
        assert_eq!(kb.store.version_count(), 2);
    }

    #[test]
    fn hotspot_concentrates_changes_on_focus() {
        let mut kb = kb();
        let outcome = kb.evolve(
            &Scenario::Hotspot {
                focus_classes: 2,
                rate: 0.2,
                concentration: 0.95,
            },
            2,
        );
        assert_eq!(outcome.focus_classes.len(), 2);
        // The planted hotspot must out-score the median class under the
        // direct change-count measure.
        let ctx = EvolutionContext::build(&kb.store, kb.base_version, outcome.version);
        let report = ClassChangeCount.compute(&ctx);
        let focus_best = outcome
            .focus_classes
            .iter()
            .filter_map(|&c| report.rank_of(c))
            .min()
            .expect("focus classes are ranked");
        assert!(
            focus_best < kb.classes.len() / 4,
            "hotspot rank {focus_best} should sit in the top quartile"
        );
    }

    #[test]
    fn growth_only_adds() {
        let mut kb = kb();
        let outcome = kb.evolve(&Scenario::Growth { rate: 0.2 }, 3);
        assert!(outcome.added >= (200.0_f64 * 0.2).ceil() as usize);
        assert_eq!(outcome.removed, 0);
    }

    #[test]
    fn drift_moves_typings_between_subtrees() {
        let mut kb = kb();
        let outcome = kb.evolve(&Scenario::Drift { rate: 0.5 }, 4);
        assert_eq!(outcome.focus_classes.len(), 2);
        assert!(outcome.added > 0, "sink gains typings");
        assert!(outcome.removed > 0, "source loses typings");
    }

    #[test]
    fn refactor_touches_few_triples() {
        let mut kb = kb();
        let outcome = kb.evolve(&Scenario::SchemaRefactor { moves: 3 }, 5);
        assert!(outcome.added <= 3 && outcome.removed <= 3);
        assert!(!outcome.focus_classes.is_empty());
    }

    #[test]
    fn count_vs_impact_plants_the_contrast() {
        let mut kb = kb();
        let outcome = kb.evolve(&Scenario::CountVsImpact { spam_instances: 50 }, 6);
        let (hub, leaf) = outcome.contrast.expect("contrast ground truth");
        assert_ne!(hub, leaf);
        // The leaf dominates raw counting…
        let ctx = EvolutionContext::build(&kb.store, kb.base_version, outcome.version);
        let counting = ClassChangeCount.compute(&ctx);
        assert!(
            counting.rank_of(leaf).unwrap() < counting.rank_of(hub).unwrap(),
            "leaf spam must dominate the counting measure"
        );
    }

    #[test]
    fn evolution_is_deterministic_per_seed() {
        let mut a = kb();
        let mut b = kb();
        let oa = a.evolve(&Scenario::UniformChurn { rate: 0.1 }, 9);
        let ob = b.evolve(&Scenario::UniformChurn { rate: 0.1 }, 9);
        assert_eq!(
            a.store.snapshot(oa.version),
            b.store.snapshot(ob.version)
        );
    }

    #[test]
    fn ground_truth_tree_stays_consistent_after_refactor() {
        let mut kb = kb();
        kb.evolve(&Scenario::SchemaRefactor { moves: 5 }, 10);
        // Parent pointers must match the subclass triples in the head.
        let head = kb.store.head().unwrap();
        let vocab = *kb.store.vocab();
        let snapshot = kb.store.snapshot(head);
        for (ix, &parent) in kb.class_parent.iter().enumerate() {
            if let Some(p) = parent {
                assert!(
                    snapshot.contains(&Triple::new(
                        kb.classes[ix],
                        vocab.rdfs_subclassof,
                        kb.classes[p]
                    )),
                    "tree/snapshot divergence at class {ix}"
                );
            }
        }
    }

    #[test]
    fn chained_evolutions_accumulate_versions() {
        let mut kb = kb();
        kb.evolve(&Scenario::Growth { rate: 0.1 }, 1);
        kb.evolve(&Scenario::UniformChurn { rate: 0.05 }, 2);
        kb.evolve(&Scenario::SchemaRefactor { moves: 1 }, 3);
        assert_eq!(kb.store.version_count(), 4);
    }
}
