//! Zipf-distributed sampling.
//!
//! Real knowledge bases are heavily skewed: a few classes hold most
//! instances, a few topics attract most user interest. The workload
//! generators sample from Zipf(n, s) — rank `r` drawn with probability
//! proportional to `1/r^s` — via a precomputed cumulative table and
//! binary search (`rand` 0.8 ships no Zipf distribution).

use rand::Rng;

/// A Zipf(n, s) sampler over ranks `0..n` (rank 0 is the most likely).
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform; larger is more skewed).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and >= 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always `false`: [`Zipf::new`] rejects `n == 0`, so a constructed
    /// sampler has at least one rank.
    pub fn is_empty(&self) -> bool {
        false // invariant: n > 0 enforced at construction
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        self.rank_for(rng.gen_range(0.0..total))
    }

    /// The rank whose half-open cumulative interval `[cum[r−1], cum[r])`
    /// contains `needle`. Rank `r`'s interval excludes its own upper
    /// bound, so a needle landing exactly on `cum[r]` belongs to rank
    /// `r + 1`; the final clamp only guards against a needle at (or
    /// beyond) the total weight, which [`Zipf::sample`]'s exclusive
    /// range never produces but float callers might.
    fn rank_for(&self, needle: f64) -> usize {
        self.cumulative
            .partition_point(|&w| w <= needle)
            .min(self.cumulative.len() - 1)
    }

    /// Probability of rank `r`.
    pub fn probability(&self, rank: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        (self.cumulative[rank] - lo) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[1] > counts[25]);
        // Rank 0 should claim a substantial share (analytically ~22%).
        assert!(counts[0] as f64 / 20_000.0 > 0.15);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let share = c as f64 / 40_000.0;
            assert!((share - 0.25).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let zipf = Zipf::new(17, 0.8);
        let sum: f64 = (0..17).map(|r| zipf.probability(r)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(zipf.probability(0) > zipf.probability(16));
    }

    #[test]
    fn single_rank_always_zero() {
        let zipf = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let zipf = Zipf::new(20, 1.0);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let sa: Vec<usize> = (0..100).map(|_| zipf.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..100).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn never_empty_by_construction() {
        assert!(!Zipf::new(1, 1.0).is_empty());
        assert!(!Zipf::new(100, 0.0).is_empty());
        assert_eq!(Zipf::new(1, 1.0).len(), 1);
    }

    #[test]
    fn exact_boundary_needles_map_to_the_next_rank() {
        // s = 0 gives cumulative weights exactly 1.0, 2.0, 3.0, 4.0 —
        // representable floats, so boundary hits are exact.
        let zipf = Zipf::new(4, 0.0);
        // Interior of each interval.
        assert_eq!(zipf.rank_for(0.0), 0);
        assert_eq!(zipf.rank_for(0.5), 0);
        assert_eq!(zipf.rank_for(1.5), 1);
        assert_eq!(zipf.rank_for(3.5), 3);
        // Exact boundary: [cum[r−1], cum[r]) excludes the upper bound,
        // so landing on cum[r] starts rank r+1.
        assert_eq!(zipf.rank_for(1.0), 1);
        assert_eq!(zipf.rank_for(2.0), 2);
        assert_eq!(zipf.rank_for(3.0), 3);
        // The total weight itself is outside sample()'s exclusive range;
        // the defensive clamp keeps even that in-bounds.
        assert_eq!(zipf.rank_for(4.0), 3);
        assert_eq!(zipf.rank_for(99.0), 3);
    }

    #[test]
    fn boundary_hit_on_single_rank_sampler() {
        let zipf = Zipf::new(1, 2.0);
        assert_eq!(zipf.rank_for(0.0), 0);
        assert_eq!(zipf.rank_for(1.0), 0);
    }
}
