//! Synthetic knowledge-base generation.
//!
//! Stands in for the DBpedia/Freebase/YAGO dumps the paper motivates
//! with (see DESIGN.md §2 for the substitution argument): a subclass
//! *tree* grown by preferential attachment (scale-free-ish degrees, like
//! real ontologies), cross-hierarchy object properties with declared
//! domains/ranges, Zipf-skewed instance extents, and instance-level
//! property links.

use crate::zipf::Zipf;
use evorec_kb::{TermId, Triple, TripleStore};
use evorec_versioning::{VersionId, VersionedStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters of a generated knowledge base.
#[derive(Clone, Copy, Debug)]
pub struct SchemaConfig {
    /// Number of classes (≥ 1; class 0 is the root).
    pub classes: usize,
    /// Number of object properties.
    pub properties: usize,
    /// Number of instances.
    pub instances: usize,
    /// Zipf exponent skewing instances across classes.
    pub instance_zipf: f64,
    /// Expected instance-level links per instance.
    pub links_per_instance: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for SchemaConfig {
    fn default() -> Self {
        SchemaConfig {
            classes: 100,
            properties: 20,
            instances: 500,
            instance_zipf: 1.0,
            links_per_instance: 2.0,
            seed: 42,
        }
    }
}

/// A generated knowledge base: the versioned store (with the base
/// snapshot committed as V0) plus the ground-truth structure the
/// experiments need.
pub struct GeneratedKb {
    /// The versioned store; V0 holds the base snapshot.
    pub store: VersionedStore,
    /// All classes; index 0 is the tree root.
    pub classes: Vec<TermId>,
    /// Parent of each class in the subclass tree (`None` for the root).
    pub class_parent: Vec<Option<usize>>,
    /// All properties, with their (domain, range) class indexes.
    pub properties: Vec<(TermId, usize, usize)>,
    /// All instances.
    pub instances: Vec<TermId>,
    /// Class index of each instance.
    pub instance_class: Vec<usize>,
    /// The configuration that produced this KB.
    pub config: SchemaConfig,
    /// The id of the base version.
    pub base_version: VersionId,
}

impl GeneratedKb {
    /// Generate a knowledge base per `config`.
    pub fn generate(config: SchemaConfig) -> GeneratedKb {
        assert!(config.classes >= 1, "need at least a root class");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = VersionedStore::new();
        let vocab = *store.vocab();
        let mut snapshot = TripleStore::new();

        // Classes: preferential-attachment tree.
        let mut classes = Vec::with_capacity(config.classes);
        let mut class_parent: Vec<Option<usize>> = Vec::with_capacity(config.classes);
        let mut attach_weight: Vec<usize> = Vec::with_capacity(config.classes);
        for ix in 0..config.classes {
            let id = store.intern_iri(format!("http://evorec.example/class/C{ix}"));
            classes.push(id);
            snapshot.insert(Triple::new(id, vocab.rdf_type, vocab.rdfs_class));
            if ix == 0 {
                class_parent.push(None);
                attach_weight.push(1);
            } else {
                // Weight ∝ 1 + current child count: rich get richer.
                let total: usize = attach_weight.iter().sum();
                let mut needle = rng.gen_range(0..total);
                let mut parent = 0usize;
                for (cand, &w) in attach_weight.iter().enumerate() {
                    if needle < w {
                        parent = cand;
                        break;
                    }
                    needle -= w;
                }
                class_parent.push(Some(parent));
                attach_weight[parent] += 1;
                attach_weight.push(1);
                snapshot.insert(Triple::new(id, vocab.rdfs_subclassof, classes[parent]));
            }
        }

        // Properties with random domain/range.
        let mut properties = Vec::with_capacity(config.properties);
        for ix in 0..config.properties {
            let id = store.intern_iri(format!("http://evorec.example/prop/p{ix}"));
            let domain = rng.gen_range(0..config.classes);
            let range = rng.gen_range(0..config.classes);
            snapshot.insert(Triple::new(id, vocab.rdf_type, vocab.owl_object_property));
            snapshot.insert(Triple::new(id, vocab.rdfs_domain, classes[domain]));
            snapshot.insert(Triple::new(id, vocab.rdfs_range, classes[range]));
            properties.push((id, domain, range));
        }

        // Instances, Zipf-skewed across classes.
        let class_pick = Zipf::new(config.classes, config.instance_zipf);
        let mut instances = Vec::with_capacity(config.instances);
        let mut instance_class = Vec::with_capacity(config.instances);
        let mut instances_of_class: Vec<Vec<usize>> = vec![Vec::new(); config.classes];
        for ix in 0..config.instances {
            let id = store.intern_iri(format!("http://evorec.example/inst/i{ix}"));
            let class = class_pick.sample(&mut rng);
            snapshot.insert(Triple::new(id, vocab.rdf_type, classes[class]));
            instances_of_class[class].push(ix);
            instances.push(id);
            instance_class.push(class);
        }

        // Instance links: subject drawn from the property's domain
        // subtree population when possible, object from the range's.
        if !properties.is_empty() && !instances.is_empty() {
            let link_count = (config.instances as f64 * config.links_per_instance) as usize;
            for _ in 0..link_count {
                let (prop, domain, range) = properties[rng.gen_range(0..properties.len())];
                let subject = pick_instance(&instances_of_class, domain, &mut rng)
                    .unwrap_or_else(|| rng.gen_range(0..instances.len()));
                let object = pick_instance(&instances_of_class, range, &mut rng)
                    .unwrap_or_else(|| rng.gen_range(0..instances.len()));
                snapshot.insert(Triple::new(instances[subject], prop, instances[object]));
            }
        }

        let base_version = store.commit_snapshot("base", snapshot);
        GeneratedKb {
            store,
            classes,
            class_parent,
            properties,
            instances,
            instance_class,
            config,
            base_version,
        }
    }

    /// The subclass-tree children of class index `ix`.
    pub fn children_of(&self, ix: usize) -> Vec<usize> {
        self.class_parent
            .iter()
            .enumerate()
            .filter_map(|(c, &p)| (p == Some(ix)).then_some(c))
            .collect()
    }

    /// Class indexes of `ix`'s subtree (including `ix`), BFS order.
    pub fn subtree_of(&self, ix: usize) -> Vec<usize> {
        let mut out = vec![ix];
        let mut cursor = 0;
        while cursor < out.len() {
            let node = out[cursor];
            cursor += 1;
            out.extend(self.children_of(node));
        }
        out
    }

    /// The parent map `class term → parent term` used by the anonymiser.
    pub fn parent_terms(&self) -> evorec_kb::FxHashMap<TermId, TermId> {
        self.class_parent
            .iter()
            .enumerate()
            .filter_map(|(c, &p)| p.map(|p| (self.classes[c], self.classes[p])))
            .collect()
    }

    /// Number of triples in the base snapshot.
    pub fn base_triples(&self) -> usize {
        self.store.snapshot(self.base_version).len()
    }
}

fn pick_instance(
    instances_of_class: &[Vec<usize>],
    class: usize,
    rng: &mut StdRng,
) -> Option<usize> {
    let pool = &instances_of_class[class];
    if pool.is_empty() {
        None
    } else {
        Some(pool[rng.gen_range(0..pool.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SchemaConfig {
        SchemaConfig {
            classes: 30,
            properties: 8,
            instances: 100,
            instance_zipf: 1.0,
            links_per_instance: 1.5,
            seed: 7,
        }
    }

    #[test]
    fn generates_requested_shape() {
        let kb = GeneratedKb::generate(small());
        assert_eq!(kb.classes.len(), 30);
        assert_eq!(kb.properties.len(), 8);
        assert_eq!(kb.instances.len(), 100);
        assert_eq!(kb.store.version_count(), 1);
        assert!(kb.base_triples() > 130, "classes + instances + links");
    }

    #[test]
    fn tree_is_rooted_and_acyclic() {
        let kb = GeneratedKb::generate(small());
        assert_eq!(kb.class_parent[0], None);
        for (ix, &parent) in kb.class_parent.iter().enumerate().skip(1) {
            let p = parent.expect("non-root classes have parents");
            assert!(p < ix, "parents precede children, so no cycles");
        }
    }

    #[test]
    fn schema_view_agrees_with_ground_truth() {
        let kb = GeneratedKb::generate(small());
        let view = kb.store.schema_view(kb.base_version);
        for &class in &kb.classes {
            assert!(view.is_class(class));
        }
        for &(prop, _, _) in &kb.properties {
            assert!(view.is_property(prop));
        }
        // Instance extents match the recorded assignment.
        let total: usize = kb
            .classes
            .iter()
            .map(|&c| view.instance_count(c))
            .sum();
        assert_eq!(total, kb.instances.len());
    }

    #[test]
    fn zipf_concentrates_instances() {
        let mut config = small();
        config.instances = 400;
        config.instance_zipf = 1.3;
        let kb = GeneratedKb::generate(config);
        let view = kb.store.schema_view(kb.base_version);
        let mut counts: Vec<usize> = kb
            .classes
            .iter()
            .map(|&c| view.instance_count(c))
            .collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top3: usize = counts.iter().take(3).sum();
        assert!(
            top3 as f64 > 0.35 * 400.0,
            "head classes should dominate: {counts:?}"
        );
    }

    #[test]
    fn determinism_under_same_seed() {
        let a = GeneratedKb::generate(small());
        let b = GeneratedKb::generate(small());
        assert_eq!(
            a.store.snapshot(a.base_version),
            b.store.snapshot(b.base_version)
        );
        let mut diff_seed = small();
        diff_seed.seed = 8;
        let c = GeneratedKb::generate(diff_seed);
        assert_ne!(
            a.store.snapshot(a.base_version),
            c.store.snapshot(c.base_version)
        );
    }

    #[test]
    fn subtree_and_children_consistent() {
        let kb = GeneratedKb::generate(small());
        let sub = kb.subtree_of(0);
        assert_eq!(sub.len(), 30, "root subtree spans every class");
        for child in kb.children_of(0) {
            assert!(sub.contains(&child));
            assert_eq!(kb.class_parent[child], Some(0));
        }
    }

    #[test]
    fn parent_terms_covers_all_non_roots() {
        let kb = GeneratedKb::generate(small());
        let parents = kb.parent_terms();
        assert_eq!(parents.len(), 29);
        assert!(!parents.contains_key(&kb.classes[0]));
    }

    #[test]
    fn minimal_config_works() {
        let kb = GeneratedKb::generate(SchemaConfig {
            classes: 1,
            properties: 0,
            instances: 0,
            instance_zipf: 0.0,
            links_per_instance: 0.0,
            seed: 1,
        });
        assert_eq!(kb.classes.len(), 1);
        assert_eq!(kb.base_triples(), 1, "just the root class declaration");
    }
}
