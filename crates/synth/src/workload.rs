//! Named end-to-end workloads.
//!
//! Each workload bundles a generated knowledge base, an evolution
//! history, and a user population into the configurations the
//! experiments and examples consume. The four presets mirror the data
//! sources the paper's introduction motivates: curated knowledge bases,
//! social feeds, road-sensor streams, and (sensitive) clinical records.

pub mod streamed;

use crate::evolution_gen::{Scenario, ScenarioOutcome};
use crate::profile_gen::{
    generate_feeds, generate_population, Population, PopulationConfig,
};
use crate::schema_gen::{GeneratedKb, SchemaConfig};
use evorec_core::UserFeed;
use evorec_versioning::VersionId;

/// A ready-to-run experimental world.
pub struct Workload {
    /// Workload name (for report tables).
    pub name: &'static str,
    /// The generated, evolved knowledge base.
    pub kb: GeneratedKb,
    /// Evolution steps applied, oldest first.
    pub outcomes: Vec<ScenarioOutcome>,
    /// The user population.
    pub population: Population,
    /// Private per-user change feeds (clinical workload only; empty
    /// otherwise).
    pub feeds: Vec<UserFeed>,
}

impl Workload {
    /// The base version (V0).
    pub fn base(&self) -> VersionId {
        self.kb.base_version
    }

    /// The most recent version.
    pub fn head(&self) -> VersionId {
        self.kb.store.head().expect("workloads commit versions")
    }

    /// Scale factor: approximate class count of the workload.
    pub fn classes(&self) -> usize {
        self.kb.classes.len()
    }
}

/// A curated knowledge base (DBpedia-style): moderate hierarchy, mixed
/// uniform churn plus a planted hotspot, curator-style users.
pub fn curated_kb(classes: usize, seed: u64) -> Workload {
    let mut kb = GeneratedKb::generate(SchemaConfig {
        classes,
        properties: (classes / 5).max(2),
        instances: classes * 5,
        instance_zipf: 1.0,
        links_per_instance: 2.0,
        seed,
    });
    let outcomes = vec![
        kb.evolve(&Scenario::UniformChurn { rate: 0.05 }, seed ^ 1),
        kb.evolve(
            &Scenario::Hotspot {
                focus_classes: 3,
                rate: 0.15,
                concentration: 0.9,
            },
            seed ^ 2,
        ),
    ];
    let population = generate_population(
        &kb,
        PopulationConfig {
            users: 16,
            seed: seed ^ 3,
            ..Default::default()
        },
    );
    Workload {
        name: "curated-kb",
        kb,
        outcomes,
        population,
        feeds: Vec::new(),
    }
}

/// A social-feed world: rapid growth plus drift between communities,
/// many users with strongly skewed topics.
pub fn social_feed(classes: usize, seed: u64) -> Workload {
    let mut kb = GeneratedKb::generate(SchemaConfig {
        classes,
        properties: (classes / 4).max(2),
        instances: classes * 8,
        instance_zipf: 1.3,
        links_per_instance: 3.0,
        seed,
    });
    let outcomes = vec![
        kb.evolve(&Scenario::Growth { rate: 0.25 }, seed ^ 1),
        kb.evolve(&Scenario::Drift { rate: 0.3 }, seed ^ 2),
    ];
    let population = generate_population(
        &kb,
        PopulationConfig {
            users: 32,
            topic_zipf: 1.4,
            seed: seed ^ 3,
            ..Default::default()
        },
    );
    Workload {
        name: "social-feed",
        kb,
        outcomes,
        population,
        feeds: Vec::new(),
    }
}

/// A road-sensor stream: flat-ish schema, heavy uniform churn (sensors
/// come and go), plus a schema refactor when the road network is
/// re-modelled.
pub fn sensor_stream(classes: usize, seed: u64) -> Workload {
    let mut kb = GeneratedKb::generate(SchemaConfig {
        classes,
        properties: (classes / 6).max(1),
        instances: classes * 10,
        instance_zipf: 0.5,
        links_per_instance: 1.0,
        seed,
    });
    let outcomes = vec![
        kb.evolve(&Scenario::UniformChurn { rate: 0.3 }, seed ^ 1),
        kb.evolve(&Scenario::SchemaRefactor { moves: classes / 10 + 1 }, seed ^ 2),
    ];
    let population = generate_population(
        &kb,
        PopulationConfig {
            users: 8,
            topic_zipf: 0.5,
            seed: seed ^ 3,
            ..Default::default()
        },
    );
    Workload {
        name: "sensor-stream",
        kb,
        outcomes,
        population,
        feeds: Vec::new(),
    }
}

/// The clinical-records scenario of §III(e): a condition hierarchy,
/// hotspot churn, an entirely sensitive population, and private per-user
/// change feeds for the anonymiser.
pub fn clinical(classes: usize, seed: u64) -> Workload {
    let mut kb = GeneratedKb::generate(SchemaConfig {
        classes,
        properties: (classes / 8).max(1),
        instances: classes * 6,
        instance_zipf: 1.1,
        links_per_instance: 1.5,
        seed,
    });
    let outcomes = vec![kb.evolve(
        &Scenario::Hotspot {
            focus_classes: 2,
            rate: 0.2,
            concentration: 0.8,
        },
        seed ^ 1,
    )];
    let population = generate_population(
        &kb,
        PopulationConfig {
            users: 48,
            topic_zipf: 1.0,
            sensitive_fraction: 1.0,
            seed: seed ^ 3,
            ..Default::default()
        },
    );
    let feeds = generate_feeds(&kb, &population, 6, seed ^ 4);
    Workload {
        name: "clinical",
        kb,
        outcomes,
        population,
        feeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curated_kb_builds_two_steps() {
        let w = curated_kb(60, 1);
        assert_eq!(w.name, "curated-kb");
        assert_eq!(w.kb.store.version_count(), 3);
        assert_eq!(w.outcomes.len(), 2);
        assert!(w.head() > w.base());
        assert_eq!(w.classes(), 60);
        assert!(w.feeds.is_empty());
    }

    #[test]
    fn social_feed_grows() {
        let w = social_feed(40, 2);
        assert!(w.outcomes[0].added > 0);
        assert_eq!(w.outcomes[0].removed, 0, "growth never removes");
        assert_eq!(w.population.profiles.len(), 32);
    }

    #[test]
    fn sensor_stream_includes_refactor() {
        let w = sensor_stream(50, 3);
        assert_eq!(w.outcomes.len(), 2);
        assert!(!w.outcomes[1].focus_classes.is_empty(), "refactor lists moves");
    }

    #[test]
    fn clinical_population_is_sensitive_with_feeds() {
        let w = clinical(40, 4);
        assert!(w.population.profiles.iter().all(|p| p.sensitive));
        assert_eq!(w.feeds.len(), 48);
        assert!(w.feeds.iter().all(|f| f.total_mass() > 0.0));
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = curated_kb(30, 9);
        let b = curated_kb(30, 9);
        assert_eq!(
            a.kb.store.snapshot(a.head()),
            b.kb.store.snapshot(b.head())
        );
    }
}
