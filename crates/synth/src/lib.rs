//! # evorec-synth — synthetic workload generation
//!
//! Deterministic stand-ins for the evolving knowledge bases (DBpedia,
//! Freebase, YAGO) and human populations the paper motivates with; see
//! DESIGN.md §2 for the substitution argument. Provides:
//!
//! - [`GeneratedKb`] / [`SchemaConfig`] — preferential-attachment class
//!   trees, domain/range-typed properties, Zipf-skewed instance extents;
//! - [`Scenario`] — evolution steps (uniform churn, hotspots, growth,
//!   drift, schema refactors, the E4 count-vs-impact contrast), each
//!   returning its ground truth;
//! - [`generate_population`] / [`generate_groups`] /
//!   [`generate_feeds`] — planted-topic user profiles, homogeneous /
//!   heterogeneous groups, private change feeds;
//! - [`workload`] — named end-to-end presets (`curated-kb`,
//!   `social-feed`, `sensor-stream`, `clinical`);
//! - [`replay_sessions`] — session-replay evaluation of the online
//!   adaptation loop against a static-profile baseline;
//! - [`Zipf`] — the rank sampler underneath it all.
//!
//! Every generator is fully deterministic given its seed.

#![warn(missing_docs)]

mod evolution_gen;
mod profile_gen;
pub mod replay;
mod schema_gen;
pub mod workload;
mod zipf;

pub use evolution_gen::{Scenario, ScenarioOutcome};
pub use replay::{replay_sessions, ReplayConfig, ReplayReport, ReplayRound};
pub use profile_gen::{
    generate_feeds, generate_groups, generate_population, Population, PopulationConfig,
};
pub use schema_gen::{GeneratedKb, SchemaConfig};
pub use workload::Workload;
pub use zipf::Zipf;
