//! Session-replay evaluation: does closing the loop online pay?
//!
//! Replays [`SessionTrace`](evorec_core::SessionTrace)-style workloads
//! through the full online adaptation stack — serve from a live
//! window, react via each user's planted-topic oracle, stream the
//! reactions back through the [`AdaptiveRecommender`] — and reports
//! per-round engagement against a *static-profile baseline* that serves
//! the same rounds without ever updating a profile. The difference
//! ([`ReplayReport::lift`]) is the measurable value of online
//! adaptation on that workload.
//!
//! Both paths are fully deterministic: same workload, same config, same
//! numbers.

use crate::workload::Workload;
use evorec_adapt::{
    AdaptiveOptions, AdaptiveRecommender, ExplorationPolicy, FeedbackEvent,
    ProfileStoreOptions, Reaction, ThompsonBeta,
};
use evorec_core::{
    FeedbackLoop, Item, RecommenderConfig, ReportCache, UserId, UserProfile,
};
use evorec_kb::{FxHashSet, TermId};
use evorec_measures::MeasureRegistry;
use evorec_windows::{WindowDef, WindowManager, WindowManagerOptions, WindowSpec, WindowedRecommender};
use std::sync::Arc;

/// Shape of a session replay.
#[derive(Clone)]
pub struct ReplayConfig {
    /// Serve-react rounds per user.
    pub rounds: usize,
    /// Items per serving.
    pub top_k: usize,
    /// Users drawn from the workload's population (clamped to its
    /// size).
    pub users: usize,
    /// The exploration policy of the adaptive path.
    pub policy: Arc<dyn ExplorationPolicy>,
    /// Exploration blend weight.
    pub exploration_weight: f64,
    /// Per-epoch interest decay of the adaptive path (`1.0` disables).
    pub decay: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            rounds: 6,
            top_k: 5,
            users: 12,
            policy: Arc::new(ThompsonBeta::new(17)),
            exploration_weight: 0.3,
            decay: 1.0,
        }
    }
}

/// One round's aggregate engagement across every replayed user.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ReplayRound {
    /// Round index (0-based).
    pub round: usize,
    /// Items served this round, all users.
    pub shown: usize,
    /// Items engaged with (accepted or dwelled on).
    pub engaged: usize,
    /// `engaged / shown` (0 when nothing was shown).
    pub rate: f64,
}

/// The outcome of replaying one workload both ways.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// The replayed workload's name.
    pub workload: &'static str,
    /// Users replayed.
    pub users: usize,
    /// Per-round engagement of the adaptive path.
    pub adaptive: Vec<ReplayRound>,
    /// Per-round engagement of the static-profile baseline.
    pub baseline: Vec<ReplayRound>,
}

impl ReplayReport {
    fn mean(rounds: &[ReplayRound]) -> f64 {
        if rounds.is_empty() {
            return 0.0;
        }
        rounds.iter().map(|r| r.rate).sum::<f64>() / rounds.len() as f64
    }

    /// Mean engagement of the adaptive path over all rounds.
    pub fn adaptive_mean(&self) -> f64 {
        ReplayReport::mean(&self.adaptive)
    }

    /// Mean engagement of the static baseline over all rounds.
    pub fn baseline_mean(&self) -> f64 {
        ReplayReport::mean(&self.baseline)
    }

    /// Mean engagement lift of adapting online (adaptive − baseline).
    pub fn lift(&self) -> f64 {
        self.adaptive_mean() - self.baseline_mean()
    }

    /// Final-round engagement lift — where the learned profiles have
    /// had the whole session to converge.
    pub fn final_lift(&self) -> f64 {
        let last = |rounds: &[ReplayRound]| rounds.last().map_or(0.0, |r| r.rate);
        last(&self.adaptive) - last(&self.baseline)
    }
}

/// One user's planted ground truth: the oracle reacts from the topic
/// subtree the population generator planted, not from the profile the
/// recommender sees (which both paths start cold).
struct OracleUser {
    id: UserId,
    topic: TermId,
    region: FxHashSet<TermId>,
}

impl OracleUser {
    fn react(&self, item: &Item, round: usize, slot: usize) -> Reaction {
        if item.focus == self.topic {
            Reaction::Accept
        } else if self.region.contains(&item.focus) {
            Reaction::Dwell
        } else if (round + slot).is_multiple_of(2) {
            Reaction::Reject
        } else {
            Reaction::Dismiss
        }
    }
}

fn oracle_users(world: &Workload, users: usize) -> Vec<OracleUser> {
    world
        .population
        .profiles
        .iter()
        .zip(&world.population.topics)
        .take(users)
        .map(|(profile, &topic)| {
            let region: FxHashSet<TermId> = world
                .kb
                .subtree_of(topic)
                .into_iter()
                .map(|ix| world.kb.classes[ix])
                .collect();
            OracleUser {
                id: profile.id,
                topic: world.kb.classes[topic],
                region,
            }
        })
        .collect()
}

/// A landmark window over the workload's full history, serving through
/// a shared report cache.
fn windowed(world: &Workload, top_k: usize) -> Arc<WindowedRecommender> {
    let registry = Arc::new(MeasureRegistry::standard());
    let cache = Arc::new(ReportCache::new());
    let manager = Arc::new(WindowManager::new(
        &world.kb.store,
        world.base(),
        vec![WindowDef::new("all", WindowSpec::Landmark)],
        WindowManagerOptions {
            serving: Some((registry, Arc::clone(&cache))),
            ..Default::default()
        },
    ));
    Arc::new(WindowedRecommender::new(
        Arc::clone(&manager),
        MeasureRegistry::standard(),
        RecommenderConfig {
            top_k,
            // Allow repeats: convergence (not novelty exhaustion) is
            // what the replay measures, mirroring experiment E11.
            novelty_weight: 0.0,
            ..Default::default()
        },
    ))
}

/// Replay `world` for `config.rounds` serve-react-update rounds, both
/// adaptively and against the static-profile baseline, and report
/// per-round engagement. Every user starts *cold* (an empty profile) on
/// both paths; only the adaptive path folds reactions back in.
pub fn replay_sessions(world: &Workload, config: &ReplayConfig) -> ReplayReport {
    let oracle = oracle_users(world, config.users);
    let served = windowed(world, config.top_k);

    // -- Static baseline: frozen cold profiles, same serving stack.
    // Frozen profiles over a fixed context serve identically every
    // round (and engagement counts only accept/dwell, which the
    // round-parity tail of the oracle never produces), so one serving
    // pass per user stands in for every round.
    let frozen: Vec<UserProfile> = oracle
        .iter()
        .map(|user| UserProfile::new(user.id, user.id.to_string()))
        .collect();
    let mut shown = 0;
    let mut engaged = 0;
    for (user, profile) in oracle.iter().zip(&frozen) {
        let Some(rec) = served.recommend("all", profile) else {
            continue;
        };
        shown += rec.items.len();
        for (slot, scored) in rec.items.iter().enumerate() {
            if user.react(&scored.item, 0, slot).is_positive() {
                engaged += 1;
            }
        }
    }
    let baseline: Vec<ReplayRound> = (0..config.rounds)
        .map(|round| round_stats(round, shown, engaged))
        .collect();

    // -- Adaptive path: same cold start, reactions streamed back.
    let adaptive_recommender = AdaptiveRecommender::new(
        Arc::clone(&served),
        frozen,
        AdaptiveOptions {
            policy: Arc::clone(&config.policy),
            exploration_weight: config.exploration_weight,
            store: ProfileStoreOptions {
                feedback: FeedbackLoop::default(),
                decay: config.decay,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut adaptive = Vec::with_capacity(config.rounds);
    for round in 0..config.rounds {
        let mut shown = 0;
        let mut engaged = 0;
        for user in &oracle {
            let Some(rec) = adaptive_recommender.serve("all", user.id) else {
                continue;
            };
            shown += rec.items.len();
            for (slot, scored) in rec.items.iter().enumerate() {
                let reaction = user.react(&scored.item, round, slot);
                if reaction.is_positive() {
                    engaged += 1;
                }
                adaptive_recommender
                    .observe(
                        FeedbackEvent::new(user.id, scored.item.clone(), reaction)
                            .in_session(round as u64)
                            .from_window("all"),
                    )
                    .expect("feedback log open during replay");
            }
            // The serve-observe-update loop's barrier: each serving
            // sees every earlier reaction folded in (the shared bandit
            // ledger would otherwise depend on worker timing, and the
            // replay's whole point is reproducible numbers).
            adaptive_recommender.sync();
        }
        // The epoch clock ticks once per round.
        adaptive_recommender.advance_epoch();
        adaptive.push(round_stats(round, shown, engaged));
    }
    adaptive_recommender.shutdown();

    ReplayReport {
        workload: world.name,
        users: oracle.len(),
        adaptive,
        baseline,
    }
}

fn round_stats(round: usize, shown: usize, engaged: usize) -> ReplayRound {
    ReplayRound {
        round,
        shown,
        engaged,
        rate: if shown > 0 {
            engaged as f64 / shown as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::curated_kb;

    #[test]
    fn replay_is_deterministic_and_shaped() {
        let world = curated_kb(40, 31);
        let config = ReplayConfig {
            rounds: 3,
            users: 4,
            ..Default::default()
        };
        let a = replay_sessions(&world, &config);
        let b = replay_sessions(&world, &config);
        assert_eq!(a.adaptive, b.adaptive, "replays reproduce exactly");
        assert_eq!(a.baseline, b.baseline);
        assert_eq!(a.adaptive.len(), 3);
        assert_eq!(a.baseline.len(), 3);
        assert_eq!(a.users, 4);
        for round in a.adaptive.iter().chain(&a.baseline) {
            assert!(round.engaged <= round.shown);
            assert!((0.0..=1.0).contains(&round.rate));
        }
        // The baseline never learns: every round serves identically.
        for pair in a.baseline.windows(2) {
            assert_eq!(pair[0].rate, pair[1].rate, "static profiles are static");
        }
    }

    #[test]
    fn zero_rounds_is_empty() {
        let world = curated_kb(30, 32);
        let report = replay_sessions(&world, &ReplayConfig {
            rounds: 0,
            users: 2,
            ..Default::default()
        });
        assert!(report.adaptive.is_empty());
        assert!(report.baseline.is_empty());
        assert_eq!(report.lift(), 0.0);
        assert_eq!(report.final_lift(), 0.0);
    }
}
