//! The bounded, multi-producer log feeding stream consumers.
//!
//! A classic bounded MPSC queue built on `sched::sync::{Mutex, Condvar}`
//! (plain `std` primitives normally; deterministic scheduling points
//! under the `cfg(evorec_sched)` race harness — see `crates/shims/sched`):
//! producers [`push`](BoundedLog::push) and *block* when the log is full
//! (backpressure — a slow consumer throttles its sources instead of the
//! log growing without bound), the consumer drains micro-batches with
//! [`pop_batch`](BoundedLog::pop_batch). Closing the log wakes everyone:
//! pushes start failing, pops drain what is left and then return empty.
//!
//! The queue is generic over its payload: [`EventLog`] (over
//! [`ChangeEvent`]) feeds the ingestor; the online adaptation subsystem
//! reuses the same [`BoundedLog`] for its curator-feedback stream.

use crate::event::ChangeEvent;
use sched::sync::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;

/// Error returned by [`BoundedLog::push`] on a closed log; carries the
/// rejected payload back to the producer.
#[derive(Debug)]
pub struct LogClosed<T>(pub T);

impl<T> std::fmt::Display for LogClosed<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("log is closed")
    }
}

impl<T: std::fmt::Debug> std::error::Error for LogClosed<T> {}

/// Error returned by [`BoundedLog::try_push`]; carries the rejected
/// payload.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The log is at capacity; retry later or use the blocking
    /// [`BoundedLog::push`].
    Full(T),
    /// The log is closed; the payload can never be delivered.
    Closed(T),
}

impl<T> std::fmt::Display for TryPushError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TryPushError::Full(_) => "log is full",
            TryPushError::Closed(_) => "log is closed",
        })
    }
}

impl<T: std::fmt::Debug> std::error::Error for TryPushError<T> {}

/// Cumulative counters of a [`BoundedLog`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Events accepted into the log.
    pub enqueued: u64,
    /// Events handed to the consumer.
    pub dequeued: u64,
    /// Largest queue depth observed.
    pub high_water: usize,
    /// Times a producer blocked on a full log (backpressure events).
    pub producer_waits: u64,
    /// Times the consumer blocked on an empty log.
    pub consumer_waits: u64,
}

struct LogState<T> {
    queue: VecDeque<T>,
    closed: bool,
    stats: LogStats,
}

/// A bounded, thread-safe, multi-producer single-consumer queue.
pub struct BoundedLog<T> {
    state: Mutex<LogState<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

/// The change-event log feeding the ingestor.
pub type EventLog = BoundedLog<ChangeEvent>;

impl<T> BoundedLog<T> {
    /// A log holding at most `capacity` undelivered entries (clamped to
    /// at least 1).
    pub fn bounded(capacity: usize) -> BoundedLog<T> {
        BoundedLog {
            state: Mutex::new(LogState {
                queue: VecDeque::new(),
                closed: false,
                stats: LogStats::default(),
            }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, LogState<T>> {
        self.state.lock()
    }

    /// Append an entry, blocking while the log is full (backpressure).
    /// Fails only on a closed log, handing the entry back.
    pub fn push(&self, event: T) -> Result<(), LogClosed<T>> {
        let mut state = self.lock();
        while state.queue.len() >= self.capacity && !state.closed {
            state.stats.producer_waits += 1;
            state = self.not_full.wait(state);
        }
        if state.closed {
            return Err(LogClosed(event));
        }
        state.queue.push_back(event);
        state.stats.enqueued += 1;
        state.stats.high_water = state.stats.high_water.max(state.queue.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Append an entry without blocking; fails on a full or closed log,
    /// handing the entry back either way.
    pub fn try_push(&self, event: T) -> Result<(), TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(event));
        }
        if state.queue.len() >= self.capacity {
            return Err(TryPushError::Full(event));
        }
        state.queue.push_back(event);
        state.stats.enqueued += 1;
        state.stats.high_water = state.stats.high_water.max(state.queue.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Remove up to `max` entries (at least one), blocking while the log
    /// is empty and open. Returns an empty batch only once the log is
    /// closed *and* drained — the consumer's termination signal.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut state = self.lock();
        while state.queue.is_empty() && !state.closed {
            state.stats.consumer_waits += 1;
            state = self.not_empty.wait(state);
        }
        let take = state.queue.len().min(max);
        let batch: Vec<T> = state.queue.drain(..take).collect();
        state.stats.dequeued += batch.len() as u64;
        drop(state);
        if !batch.is_empty() {
            self.not_full.notify_all();
        }
        batch
    }

    /// Remove up to `max` entries without blocking (empty when none are
    /// queued).
    pub fn try_pop_batch(&self, max: usize) -> Vec<T> {
        let mut state = self.lock();
        let take = state.queue.len().min(max);
        let batch: Vec<T> = state.queue.drain(..take).collect();
        state.stats.dequeued += batch.len() as u64;
        drop(state);
        if !batch.is_empty() {
            self.not_full.notify_all();
        }
        batch
    }

    /// Close the log: subsequent pushes fail, pops drain the remainder.
    /// Wakes every blocked producer and consumer. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// `true` once [`close`](BoundedLog::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Number of undelivered entries.
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// `true` when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.lock().queue.is_empty()
    }

    /// The maximum number of undelivered entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative counters.
    pub fn stats(&self) -> LogStats {
        self.lock().stats
    }
}

impl<T: Send> evorec_obs::MetricsSource for BoundedLog<T> {
    /// Pull-model metrics: counters are sampled from [`LogStats`] at
    /// snapshot time, so registering a log with a
    /// [`MetricsRegistry`](evorec_obs::MetricsRegistry) adds no work to
    /// the push/pop hot path.
    fn collect(&self, out: &mut Vec<evorec_obs::Sample>) {
        let stats = self.stats();
        out.push(evorec_obs::Sample::counter(
            "evorec_stream_log_enqueued_total",
            stats.enqueued,
        ));
        out.push(evorec_obs::Sample::counter(
            "evorec_stream_log_dequeued_total",
            stats.dequeued,
        ));
        out.push(evorec_obs::Sample::counter(
            "evorec_stream_log_producer_waits_total",
            stats.producer_waits,
        ));
        out.push(evorec_obs::Sample::counter(
            "evorec_stream_log_consumer_waits_total",
            stats.consumer_waits,
        ));
        out.push(evorec_obs::Sample::gauge(
            "evorec_stream_log_high_water",
            stats.high_water as u64,
        ));
        out.push(evorec_obs::Sample::gauge(
            "evorec_stream_log_depth",
            self.len() as u64,
        ));
        out.push(evorec_obs::Sample::gauge(
            "evorec_stream_log_capacity",
            self.capacity as u64,
        ));
    }
}

impl<T> std::fmt::Debug for BoundedLog<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("BoundedLog")
            .field("capacity", &self.capacity)
            .field("queued", &state.queue.len())
            .field("closed", &state.closed)
            .field("stats", &state.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::{TermId, Triple};
    use std::sync::Arc;

    fn ev(n: u32) -> ChangeEvent {
        let t = TermId::from_u32(n);
        ChangeEvent::assert(Triple::new(t, t, t), "test")
    }

    #[test]
    fn push_pop_roundtrip_in_order() {
        let log = EventLog::bounded(8);
        for n in 0..5 {
            log.push(ev(n)).unwrap();
        }
        assert_eq!(log.len(), 5);
        let batch = log.pop_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], ev(0));
        assert_eq!(batch[2], ev(2));
        assert_eq!(log.pop_batch(10), vec![ev(3), ev(4)]);
        let stats = log.stats();
        assert_eq!(stats.enqueued, 5);
        assert_eq!(stats.dequeued, 5);
        assert_eq!(stats.high_water, 5);
    }

    #[test]
    fn try_push_reports_full_and_closed() {
        let log = EventLog::bounded(1);
        log.try_push(ev(1)).unwrap();
        match log.try_push(ev(2)) {
            Err(TryPushError::Full(e)) => assert_eq!(e, ev(2)),
            other => panic!("expected Full, got {other:?}"),
        }
        log.close();
        match log.try_push(ev(3)) {
            Err(TryPushError::Closed(e)) => assert_eq!(e, ev(3)),
            other => panic!("expected Closed, got {other:?}"),
        }
        // The queued event is still drainable after close.
        assert_eq!(log.pop_batch(4), vec![ev(1)]);
        assert!(log.pop_batch(4).is_empty(), "closed + drained = empty");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        assert_eq!(EventLog::bounded(0).capacity(), 1);
    }

    #[test]
    fn blocked_producer_resumes_when_consumer_drains() {
        let log = Arc::new(EventLog::bounded(2));
        log.push(ev(0)).unwrap();
        log.push(ev(1)).unwrap();
        let producer = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                // Blocks until the consumer below makes room.
                log.push(ev(2)).unwrap();
            })
        };
        // Wait until the producer is observably blocked (no sleeps —
        // the stats counter ticks before the condvar wait), then
        // drain; otherwise a fast drain could make room before the
        // producer ever has to wait.
        while log.stats().producer_waits == 0 {
            std::thread::yield_now();
        }
        let mut drained = Vec::new();
        while drained.len() < 3 {
            drained.extend(log.pop_batch(1));
        }
        producer.join().unwrap();
        assert_eq!(drained, vec![ev(0), ev(1), ev(2)]);
        assert!(log.stats().producer_waits >= 1, "backpressure engaged");
    }

    #[test]
    fn close_unblocks_waiting_producer_with_error() {
        let log = Arc::new(EventLog::bounded(1));
        log.push(ev(0)).unwrap();
        let producer = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.push(ev(1)))
        };
        // Wait until the producer is observably blocked (no sleeps —
        // the stats counter ticks before the condvar wait), then close
        // without draining.
        while log.stats().producer_waits == 0 {
            std::thread::yield_now();
        }
        log.close();
        let result = producer.join().unwrap();
        assert!(result.is_err(), "push on closed log fails");
        assert_eq!(log.len(), 1, "only the first event made it in");
    }

    #[test]
    fn close_unblocks_waiting_consumer() {
        let log = Arc::new(EventLog::bounded(4));
        let consumer = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.pop_batch(4))
        };
        // Wait until the consumer is observably parked, then close.
        while log.stats().consumer_waits == 0 {
            std::thread::yield_now();
        }
        log.close();
        assert!(consumer.join().unwrap().is_empty());
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let log = Arc::new(EventLog::bounded(4));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for n in 0..50 {
                        log.push(ev(p * 100 + n)).unwrap();
                    }
                })
            })
            .collect();
        let mut seen = Vec::new();
        while seen.len() < 200 {
            seen.extend(log.pop_batch(16));
        }
        for p in producers {
            p.join().unwrap();
        }
        seen.sort_unstable_by_key(|e| e.triple.s);
        let expected: Vec<u32> = (0..4).flat_map(|p| (0..50).map(move |n| p * 100 + n)).collect();
        let got: Vec<u32> = seen.iter().map(|e| e.triple.s.as_u32()).collect();
        assert_eq!(got, {
            let mut e = expected;
            e.sort_unstable();
            e
        });
    }
}
