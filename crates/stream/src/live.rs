//! The epoch-swapped live context: lock-light publication of freshly
//! built [`EvolutionContext`]s to any number of readers.
//!
//! Readers call [`LiveContext::current`], which clones an `Arc` under a
//! briefly held read lock — they never wait on a context rebuild,
//! because rebuilds happen entirely *before* [`LiveContext::publish`]
//! swaps the pointer. When a serving pair (measure registry + report
//! cache) is attached, each publish also pre-warms the catalogue into
//! the cache — [`MeasureCost::Heavy`] measures are the point; counting
//! measures ride along through incremental hooks that re-score only
//! the O(|δ|) extension-touched terms — and
//! then invalidates the superseded fingerprint's entries, optionally on
//! a background thread so the ingest loop never stalls on a
//! betweenness pass.
//!
//! [`MeasureCost::Heavy`]: evorec_measures::MeasureCost::Heavy

use evorec_core::{LineageId, ReportCache};
use evorec_measures::{EvolutionContext, MeasureRegistry, MeasureReport};
use evorec_versioning::LowLevelDelta;
use sched::sync::atomic::{AtomicU64, Ordering};
use sched::sync::{Mutex, RwLock};
use sched::thread::JoinHandle;
use std::sync::Arc;

/// A serving pair attached to a [`LiveContext`]: publishes pre-warm
/// this registry's reports into this cache.
#[derive(Clone)]
pub struct ServingHandles {
    /// The catalogue to pre-warm.
    pub registry: Arc<MeasureRegistry>,
    /// The cache to warm into (and invalidate superseded entries from).
    pub cache: Arc<ReportCache>,
}

/// An atomically swapped handle to the latest published
/// [`EvolutionContext`].
// lint: lock-order publish_lock < current
// lint: lock-order publish_lock < warm_worker
pub struct LiveContext {
    current: RwLock<Arc<EvolutionContext>>,
    /// Publication counter: readers pair an Acquire load of this with
    /// the swapped pointer, so it must never be bumped with `Relaxed`.
    // lint: publishes
    epoch: AtomicU64,
    serving: Option<ServingHandles>,
    /// When set, epoch-swap invalidation is scoped to this lineage:
    /// the superseded fingerprint's entries are dropped only if no
    /// other lineage of the shared cache still claims them.
    lineage: Option<LineageId>,
    background_warm: bool,
    /// Serialises whole publishes (join previous warm → swap → spawn
    /// next warm): concurrent `publish` calls would otherwise race on
    /// `warm_worker`, detaching a live warm thread and letting a stale
    /// epoch's warm/invalidate pass run after a newer one. Readers
    /// never touch this lock.
    publish_lock: Mutex<()>,
    warm_worker: Mutex<Option<JoinHandle<()>>>,
}

impl LiveContext {
    /// A handle initially publishing `initial`, with no serving pair.
    pub fn new(initial: Arc<EvolutionContext>) -> LiveContext {
        LiveContext {
            current: RwLock::new(initial),
            epoch: AtomicU64::new(0),
            serving: None,
            lineage: None,
            background_warm: false,
            publish_lock: Mutex::new(()),
            warm_worker: Mutex::new(None),
        }
    }

    /// Attach a serving pair: every publish pre-warms `registry`'s
    /// reports for the fresh context into `cache` and invalidates the
    /// superseded fingerprint. Warming runs inline by default; see
    /// [`background_warm`](LiveContext::background_warm).
    pub fn with_serving(
        initial: Arc<EvolutionContext>,
        registry: Arc<MeasureRegistry>,
        cache: Arc<ReportCache>,
    ) -> LiveContext {
        LiveContext {
            current: RwLock::new(initial),
            epoch: AtomicU64::new(0),
            serving: Some(ServingHandles { registry, cache }),
            lineage: None,
            background_warm: false,
            publish_lock: Mutex::new(()),
            warm_worker: Mutex::new(None),
        }
    }

    /// Scope this handle's epoch-swap invalidation to `lineage` (a
    /// lineage of the serving cache, see
    /// [`ReportCache::register_lineage`]): superseded entries are
    /// evicted only when no *other* lineage still claims their
    /// fingerprint, so several live windows can share one cache without
    /// one window's swap evicting what another still serves. The
    /// initial context's fingerprint is claimed immediately.
    pub fn with_lineage(mut self, lineage: LineageId) -> LiveContext {
        if let Some(serving) = &self.serving {
            serving
                .cache
                .claim_lineage(lineage, self.current().fingerprint());
        }
        self.lineage = Some(lineage);
        self
    }

    /// Run the pre-warm pass on a background thread instead of inline,
    /// so [`publish`](LiveContext::publish) returns as soon as the
    /// pointer is swapped. At most one warm thread is in flight: the
    /// next publish joins it first, keeping cache traffic ordered.
    pub fn background_warm(mut self, on: bool) -> LiveContext {
        self.background_warm = on;
        self
    }

    /// The latest published context. Never blocks on a rebuild or a
    /// warm pass — only on the pointer swap itself, which is two
    /// `Arc` moves under a write lock.
    pub fn current(&self) -> Arc<EvolutionContext> {
        self.current.read().clone()
    }

    /// How many times a context has been published.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish `next` as the live context.
    ///
    /// `extension` is the delta between the previous context's head and
    /// `next`'s head, when the publisher knows it (the streaming
    /// pipeline always does): it lets measures with incremental hooks
    /// advance their previous cached reports in O(|extension|) instead
    /// of recomputing.
    pub fn publish(&self, next: Arc<EvolutionContext>, extension: Option<Arc<LowLevelDelta>>) {
        // One publish at a time: join the previous warm pass, swap,
        // then start (or run) this epoch's warm pass, so warm and
        // invalidation traffic hits the cache in epoch order.
        let _serialised = self.publish_lock.lock();
        self.join_warm();
        let previous = {
            let mut guard = self.current.write();
            std::mem::replace(&mut *guard, Arc::clone(&next))
        };
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let Some(serving) = self.serving.clone() else {
            return;
        };
        let lineage = self.lineage;
        let task =
            move || warm_and_invalidate(&serving, &previous, &next, extension.as_deref(), lineage);
        if self.background_warm {
            *self.warm_worker.lock() = Some(sched::thread::spawn(task));
        } else {
            task();
        }
    }

    /// Block until any in-flight background warm pass has finished
    /// (no-op when warming runs inline). Benches and tests use this to
    /// observe a deterministic cache state.
    pub fn wait_for_warm(&self) {
        self.join_warm();
    }

    fn join_warm(&self) {
        let handle = self.warm_worker.lock().take();
        if let Some(handle) = handle {
            if let Err(panic) = handle.join() {
                // Surface the warm thread's own panic instead of
                // minting a second, less informative one here.
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl evorec_obs::MetricsSource for LiveContext {
    /// Pull-model metrics: the epoch counter and the live window's
    /// span, sampled at snapshot time.
    fn collect(&self, out: &mut Vec<evorec_obs::Sample>) {
        out.push(evorec_obs::Sample::counter(
            "evorec_stream_epochs_total",
            self.epoch(),
        ));
        let ctx = self.current();
        out.push(evorec_obs::Sample::gauge(
            "evorec_stream_live_origin_version",
            u64::from(ctx.from.as_u32()),
        ));
        out.push(evorec_obs::Sample::gauge(
            "evorec_stream_live_head_version",
            u64::from(ctx.to.as_u32()),
        ));
    }
}

impl Drop for LiveContext {
    fn drop(&mut self) {
        self.join_warm();
    }
}

/// Compute (or incrementally advance) every report for `next` into the
/// cache, then drop the superseded fingerprint's entries — globally, or
/// scoped to `lineage` when one is attached (the superseded entries
/// survive while any other lineage of the shared cache still claims
/// them).
fn warm_and_invalidate(
    serving: &ServingHandles,
    previous: &EvolutionContext,
    next: &EvolutionContext,
    extension: Option<&LowLevelDelta>,
    lineage: Option<LineageId>,
) {
    let old_fingerprint = previous.fingerprint();
    let new_fingerprint = next.fingerprint();
    if old_fingerprint == new_fingerprint {
        // Republishing the same step: entries are already warm.
        return;
    }
    // The incremental hooks' contract requires the previous window to
    // share the new one's origin; a publish that moves the origin
    // (e.g. a rolling window) must recompute from scratch.
    let extension = extension.filter(|_| previous.from == next.from);
    // Grab the previous epoch's reports *before* invalidating them —
    // they are the inputs of the incremental hooks.
    let previous_reports: Vec<Option<Arc<MeasureReport>>> = serving
        .registry
        .all()
        .iter()
        .map(|m| serving.cache.get(&m.id(), old_fingerprint))
        .collect();
    for (measure, prev) in serving.registry.all().iter().zip(previous_reports) {
        let report = prev
            .as_deref()
            .zip(extension)
            .and_then(|(p, ext)| measure.update(p, next, ext))
            .unwrap_or_else(|| measure.compute(next));
        serving.cache.insert(new_fingerprint, report);
    }
    match lineage {
        Some(lineage) => {
            serving
                .cache
                .publish_lineage(lineage, old_fingerprint, new_fingerprint);
        }
        None => {
            serving.cache.invalidate_fingerprint(old_fingerprint);
        }
    }
}

impl std::fmt::Debug for LiveContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveContext")
            .field("epoch", &self.epoch())
            .field("fingerprint", &self.current().fingerprint())
            .field("serving", &self.serving.is_some())
            .field("lineage", &self.lineage)
            .field("background_warm", &self.background_warm)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::{Triple, TripleStore};
    use evorec_versioning::VersionedStore;

    /// A three-version store for publish sequences.
    fn store() -> VersionedStore {
        let mut vs = VersionedStore::new();
        let a = vs.intern_iri("http://x/A");
        let b = vs.intern_iri("http://x/B");
        let c = vs.intern_iri("http://x/C");
        let i = vs.intern_iri("http://x/i");
        let v = *vs.vocab();
        let mut s = TripleStore::new();
        s.insert(Triple::new(a, v.rdfs_subclassof, b));
        vs.commit_snapshot("v0", s.clone());
        s.insert(Triple::new(c, v.rdfs_subclassof, b));
        vs.commit_snapshot("v1", s.clone());
        s.insert(Triple::new(i, v.rdf_type, c));
        vs.commit_snapshot("v2", s);
        vs
    }

    fn v(n: u32) -> evorec_versioning::VersionId {
        evorec_versioning::VersionId::from_u32(n)
    }

    #[test]
    fn current_returns_latest_published() {
        let vs = store();
        let first = Arc::new(EvolutionContext::build(&vs, v(0), v(1)));
        let live = LiveContext::new(Arc::clone(&first));
        assert_eq!(live.epoch(), 0);
        assert!(Arc::ptr_eq(&live.current(), &first));
        let second = Arc::new(EvolutionContext::build(&vs, v(0), v(2)));
        live.publish(Arc::clone(&second), None);
        assert_eq!(live.epoch(), 1);
        assert!(Arc::ptr_eq(&live.current(), &second));
    }

    #[test]
    fn publish_prewarms_and_invalidates() {
        let vs = store();
        let registry = Arc::new(MeasureRegistry::standard());
        let cache = Arc::new(ReportCache::new());
        let first = Arc::new(EvolutionContext::build(&vs, v(0), v(1)));
        let live = LiveContext::with_serving(
            Arc::clone(&first),
            Arc::clone(&registry),
            Arc::clone(&cache),
        );
        // Warm the first epoch the ordinary way.
        let _ = cache.reports_for(&registry, &first);
        assert_eq!(cache.len(), registry.len());

        let second = Arc::new(EvolutionContext::build(&vs, v(0), v(2)));
        let extension = vs.delta(v(1), v(2));
        live.publish(Arc::clone(&second), Some(extension));
        // Old fingerprint's entries replaced by the new epoch's.
        assert_eq!(cache.len(), registry.len());
        assert!(cache.stats().invalidations >= registry.len() as u64);
        // Every new-epoch report is already present and correct.
        cache.reset_stats();
        let warm = cache.reports_for(&registry, &second);
        assert_eq!(cache.stats().misses, 0, "publish pre-warmed everything");
        for (report, measure) in warm.iter().zip(registry.all()) {
            let fresh = measure.compute(&second);
            assert_eq!(report.scores(), fresh.scores(), "{}", report.measure);
        }
    }

    #[test]
    fn background_warm_converges_after_wait() {
        let vs = store();
        let registry = Arc::new(MeasureRegistry::standard());
        let cache = Arc::new(ReportCache::new());
        let first = Arc::new(EvolutionContext::build(&vs, v(0), v(1)));
        let live = LiveContext::with_serving(
            Arc::clone(&first),
            Arc::clone(&registry),
            Arc::clone(&cache),
        )
        .background_warm(true);
        let second = Arc::new(EvolutionContext::build(&vs, v(0), v(2)));
        live.publish(Arc::clone(&second), Some(vs.delta(v(1), v(2))));
        // The swap is immediately visible even while warming runs.
        assert!(Arc::ptr_eq(&live.current(), &second));
        live.wait_for_warm();
        cache.reset_stats();
        let _ = cache.reports_for(&registry, &second);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn republishing_same_step_keeps_entries() {
        let vs = store();
        let registry = Arc::new(MeasureRegistry::standard());
        let cache = Arc::new(ReportCache::new());
        let ctx = Arc::new(EvolutionContext::build(&vs, v(0), v(1)));
        let live = LiveContext::with_serving(
            Arc::clone(&ctx),
            Arc::clone(&registry),
            Arc::clone(&cache),
        );
        let _ = cache.reports_for(&registry, &ctx);
        let rebuilt = Arc::new(EvolutionContext::build(&vs, v(0), v(1)));
        live.publish(rebuilt, None);
        assert_eq!(cache.stats().invalidations, 0);
        assert_eq!(cache.len(), registry.len());
    }

    #[test]
    fn origin_change_bypasses_incremental_hooks() {
        // The previous window v0→v1 does NOT share the new window's
        // origin (v1→v2): even though an (irrelevant) extension is
        // supplied, the warm pass must recompute from scratch — using
        // the hooks here would cache wrong scores silently.
        let vs = store();
        let registry = Arc::new(MeasureRegistry::standard());
        let cache = Arc::new(ReportCache::new());
        let first = Arc::new(EvolutionContext::build(&vs, v(0), v(1)));
        let live = LiveContext::with_serving(
            Arc::clone(&first),
            Arc::clone(&registry),
            Arc::clone(&cache),
        );
        let _ = cache.reports_for(&registry, &first);
        let rolled = Arc::new(EvolutionContext::build(&vs, v(1), v(2)));
        live.publish(Arc::clone(&rolled), Some(vs.delta(v(1), v(2))));
        let warm = cache.reports_for(&registry, &rolled);
        for (report, measure) in warm.iter().zip(registry.all()) {
            let fresh = measure.compute(&rolled);
            assert_eq!(report.scores(), fresh.scores(), "{}", report.measure);
        }
    }

    #[test]
    fn lineage_scoped_publish_spares_other_windows_entries() {
        let vs = store();
        let registry = Arc::new(MeasureRegistry::standard());
        let cache = Arc::new(ReportCache::new());
        let shared = Arc::new(EvolutionContext::build(&vs, v(0), v(1)));
        // Two windows serving the *same* step from one cache.
        let a = LiveContext::with_serving(
            Arc::clone(&shared),
            Arc::clone(&registry),
            Arc::clone(&cache),
        )
        .with_lineage(cache.register_lineage("a"));
        let b = LiveContext::with_serving(
            Arc::clone(&shared),
            Arc::clone(&registry),
            Arc::clone(&cache),
        )
        .with_lineage(cache.register_lineage("b"));
        let _ = cache.reports_for(&registry, &shared);
        assert_eq!(cache.len(), registry.len());

        // A swaps away: B still claims the shared fingerprint, so its
        // entries stay resident alongside the fresh epoch's.
        let next = Arc::new(EvolutionContext::build(&vs, v(0), v(2)));
        a.publish(Arc::clone(&next), Some(vs.delta(v(1), v(2))));
        assert_eq!(cache.len(), 2 * registry.len(), "old step retained");
        cache.reset_stats();
        let _ = cache.reports_for(&registry, &shared);
        assert_eq!(cache.stats().misses, 0, "B's step still warm");

        // B swaps too: nobody claims the old step, entries drop.
        b.publish(Arc::clone(&next), Some(vs.delta(v(1), v(2))));
        assert_eq!(cache.len(), registry.len());
        let stats = cache.stats();
        assert_eq!(stats.lineages.len(), 2);
        assert!(stats.lineages[1].invalidations >= registry.len() as u64);
    }

    #[test]
    fn concurrent_publishes_serialise_without_losing_warm_threads() {
        let vs = store();
        let registry = Arc::new(MeasureRegistry::standard());
        let cache = Arc::new(ReportCache::new());
        let a = Arc::new(EvolutionContext::build(&vs, v(0), v(1)));
        let b = Arc::new(EvolutionContext::build(&vs, v(0), v(2)));
        let live = Arc::new(
            LiveContext::with_serving(
                Arc::clone(&a),
                Arc::clone(&registry),
                Arc::clone(&cache),
            )
            .background_warm(true),
        );
        let publishers: Vec<_> = (0..4)
            .map(|i| {
                let live = Arc::clone(&live);
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                std::thread::spawn(move || {
                    for round in 0..10 {
                        let next = if (i + round) % 2 == 0 { &a } else { &b };
                        live.publish(Arc::clone(next), None);
                    }
                })
            })
            .collect();
        for p in publishers {
            p.join().unwrap();
        }
        live.wait_for_warm();
        assert_eq!(live.epoch(), 40);
        // After the last warm pass only the live epoch's entries (or
        // none, if the final publish republished the resident step and
        // skipped work) remain — never both epochs' entries, which is
        // what a lost warm thread running out of order would leave.
        let resident = cache.len();
        assert!(
            resident == 0 || resident == registry.len(),
            "resident {resident}: stale epoch survived invalidation"
        );
    }

    #[test]
    fn readers_never_observe_a_torn_context_during_publishes() {
        let vs = store();
        let a = Arc::new(EvolutionContext::build(&vs, v(0), v(1)));
        let b = Arc::new(EvolutionContext::build(&vs, v(0), v(2)));
        let expected = [a.fingerprint(), b.fingerprint()];
        let live = Arc::new(LiveContext::new(Arc::clone(&a)));
        let publisher = {
            let live = Arc::clone(&live);
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                for i in 0..500 {
                    let next = if i % 2 == 0 { &b } else { &a };
                    live.publish(Arc::clone(next), None);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let live = Arc::clone(&live);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        let ctx = live.current();
                        assert!(expected.contains(&ctx.fingerprint()));
                    }
                })
            })
            .collect();
        publisher.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(live.epoch(), 500);
    }
}
