//! Triple-level change events: the unit of streaming ingestion.

use evorec_kb::Triple;
use std::sync::Arc;

/// The direction of a change event.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ChangeOp {
    /// Make the triple present in the next version.
    Assert,
    /// Make the triple absent from the next version.
    Retract,
}

impl std::fmt::Display for ChangeOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ChangeOp::Assert => "+",
            ChangeOp::Retract => "-",
        })
    }
}

/// One triple-level change observed at the edge of the system, tagged
/// with who emitted it so epoch commits can capture provenance
/// (§III(b): *who created this data item, by whom was it modified*).
///
/// Events carry their actor as a shared `Arc<str>` — a producer
/// emitting millions of events clones a pointer, not a string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChangeEvent {
    /// Assert or retract.
    pub op: ChangeOp,
    /// The triple being changed.
    pub triple: Triple,
    /// Who emitted the event (curator, pipeline, sensor feed…).
    pub actor: Arc<str>,
}

impl ChangeEvent {
    /// An assertion event.
    pub fn assert(triple: Triple, actor: impl Into<Arc<str>>) -> ChangeEvent {
        ChangeEvent {
            op: ChangeOp::Assert,
            triple,
            actor: actor.into(),
        }
    }

    /// A retraction event.
    pub fn retract(triple: Triple, actor: impl Into<Arc<str>>) -> ChangeEvent {
        ChangeEvent {
            op: ChangeOp::Retract,
            triple,
            actor: actor.into(),
        }
    }

    /// `true` for [`ChangeOp::Assert`].
    pub fn is_assert(&self) -> bool {
        self.op == ChangeOp::Assert
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::TermId;

    fn tr(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(
            TermId::from_u32(s),
            TermId::from_u32(p),
            TermId::from_u32(o),
        )
    }

    #[test]
    fn constructors_tag_direction() {
        let a = ChangeEvent::assert(tr(1, 2, 3), "alice");
        let r = ChangeEvent::retract(tr(1, 2, 3), "bob");
        assert!(a.is_assert());
        assert!(!r.is_assert());
        assert_eq!(a.op.to_string(), "+");
        assert_eq!(r.op.to_string(), "-");
        assert_eq!(&*a.actor, "alice");
    }

    #[test]
    fn actor_is_shared_not_copied() {
        let actor: Arc<str> = Arc::from("sensor-17");
        let a = ChangeEvent::assert(tr(1, 2, 3), Arc::clone(&actor));
        let b = ChangeEvent::retract(tr(3, 2, 1), Arc::clone(&actor));
        assert!(Arc::ptr_eq(&a.actor, &b.actor));
    }
}
