//! The ingestor: micro-batches change events into committed epochs.
//!
//! Events accumulate in a pending overlay keyed by triple, where the
//! *last* event for a triple wins (sequential semantics: assert → retract
//! nets to "absent"). [`Ingestor::commit_epoch`] normalises the overlay
//! against the head snapshot into a [`LowLevelDelta`] that equals what
//! [`LowLevelDelta::compute`] would return between the two snapshots —
//! so the version history, its memoised delta cache, and every context
//! fingerprint are indistinguishable from a batch-built history — then
//! commits it as the next version and documents the commit in a
//! [`ProvenanceLedger`].

use crate::event::{ChangeEvent, ChangeOp};
use evorec_kb::{FxHashMap, FxHashSet, Triple, TripleStore};
use evorec_versioning::{
    Justification, LowLevelDelta, ProvenanceLedger, RecordId, VersionId, VersionedStore,
};
use std::sync::Arc;

/// Tunables of an [`Ingestor`].
#[derive(Clone, Debug)]
pub struct IngestorConfig {
    /// Target events per epoch; [`StreamPipeline`](crate::StreamPipeline)
    /// commits once this many are pending (a drained event log also
    /// triggers a commit, so quiet streams still make progress).
    pub max_batch: usize,
    /// Prefix of generated version labels (`"<prefix>-<n>"`).
    pub label_prefix: String,
    /// Justification recorded for epoch commits.
    pub justification: Justification,
}

impl Default for IngestorConfig {
    fn default() -> Self {
        IngestorConfig {
            max_batch: 256,
            label_prefix: "epoch".into(),
            justification: Justification::Observation,
        }
    }
}

/// Cumulative counters of an [`Ingestor`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Events folded into the pending overlay.
    pub events: u64,
    /// Events that overwrote an earlier pending event for the same
    /// triple (coalescing; includes assert/retract cancellations).
    pub coalesced: u64,
    /// Pending entries dropped at commit because they matched the head
    /// snapshot (asserting a present triple, retracting an absent one).
    pub no_ops: u64,
    /// Epochs committed.
    pub epochs: u64,
}

impl evorec_obs::MetricsSource for IngestStats {
    /// `IngestStats` is a `Copy` point-in-time snapshot (the live
    /// [`Ingestor`] is owned by the pipeline's worker thread), so
    /// register one *after* shutdown to fold the final ingest counters
    /// into a unified snapshot.
    fn collect(&self, out: &mut Vec<evorec_obs::Sample>) {
        out.push(evorec_obs::Sample::counter(
            "evorec_stream_ingest_events_total",
            self.events,
        ));
        out.push(evorec_obs::Sample::counter(
            "evorec_stream_ingest_coalesced_total",
            self.coalesced,
        ));
        out.push(evorec_obs::Sample::counter(
            "evorec_stream_ingest_no_ops_total",
            self.no_ops,
        ));
        out.push(evorec_obs::Sample::counter(
            "evorec_stream_ingest_epochs_total",
            self.epochs,
        ));
    }
}

/// The result of one epoch commit.
#[derive(Clone, Debug)]
pub struct EpochCommit {
    /// The committed version.
    pub version: VersionId,
    /// The normalised delta the epoch applied — exactly the delta
    /// between the previous head and `version`.
    pub delta: Arc<LowLevelDelta>,
    /// Events folded into this epoch (before coalescing).
    pub events: usize,
    /// The provenance record documenting the commit.
    pub record: RecordId,
}

/// Turns a stream of [`ChangeEvent`]s into committed versions of a
/// [`VersionedStore`], with provenance capture.
pub struct Ingestor {
    store: VersionedStore,
    ledger: ProvenanceLedger,
    config: IngestorConfig,
    /// Desired final presence per touched triple (last event wins).
    pending: FxHashMap<Triple, bool>,
    pending_events: usize,
    /// Distinct actors of the pending batch, in first-seen order (the
    /// set mirrors the vec for O(1) dedup on many-producer streams).
    pending_actors: Vec<Arc<str>>,
    pending_actor_set: FxHashSet<Arc<str>>,
    stats: IngestStats,
}

impl Ingestor {
    /// An ingestor over an empty history: the first epoch commit
    /// creates V0 from nothing.
    pub fn new(config: IngestorConfig) -> Ingestor {
        Ingestor::from_store(VersionedStore::new(), config)
    }

    /// Adopt an existing history; epochs extend its head.
    pub fn from_store(store: VersionedStore, config: IngestorConfig) -> Ingestor {
        Ingestor {
            store,
            ledger: ProvenanceLedger::new(),
            config,
            pending: FxHashMap::default(),
            pending_events: 0,
            pending_actors: Vec::new(),
            pending_actor_set: FxHashSet::default(),
            stats: IngestStats::default(),
        }
    }

    /// A fresh history seeded with `base` committed as V0 (documented
    /// in the ledger as a seed import by `actor`).
    pub fn seeded(base: TripleStore, actor: &str, config: IngestorConfig) -> Ingestor {
        let mut ingestor = Ingestor::new(config);
        let delta = LowLevelDelta::from_parts(base.iter(), []);
        let version = ingestor.store.commit_delta("seed", &delta);
        ingestor.ledger.record_commit(
            actor,
            "seed-import",
            None,
            version,
            &delta,
            Justification::BeliefAdoption,
            "base snapshot adopted at stream start",
        );
        ingestor
    }

    /// Fold one event into the pending overlay (nothing is committed
    /// until [`commit_epoch`](Ingestor::commit_epoch)).
    pub fn ingest(&mut self, event: ChangeEvent) {
        let present = event.op == ChangeOp::Assert;
        if self.pending.insert(event.triple, present).is_some() {
            self.stats.coalesced += 1;
        }
        if self.pending_actor_set.insert(Arc::clone(&event.actor)) {
            self.pending_actors.push(event.actor);
        }
        self.pending_events += 1;
        self.stats.events += 1;
    }

    /// Fold a batch of events, in order.
    pub fn ingest_all(&mut self, events: impl IntoIterator<Item = ChangeEvent>) {
        for event in events {
            self.ingest(event);
        }
    }

    /// Number of events pending (before coalescing).
    pub fn pending_events(&self) -> usize {
        self.pending_events
    }

    /// The delta the next [`commit_epoch`](Ingestor::commit_epoch)
    /// would apply: the pending overlay normalised against the head
    /// snapshot (pending no-ops excluded).
    pub fn pending_delta(&self) -> LowLevelDelta {
        let (delta, _) = self.normalised_pending();
        delta
    }

    /// Split the overlay into (normalised delta, no-op count) against
    /// the current head.
    fn normalised_pending(&self) -> (LowLevelDelta, u64) {
        let empty = TripleStore::new();
        let head = match self.store.head() {
            Some(h) => self.store.snapshot(h),
            None => &empty,
        };
        let mut added = TripleStore::new();
        let mut removed = TripleStore::new();
        let mut no_ops = 0;
        for (&triple, &present) in self.pending.iter() {
            match (present, head.contains(&triple)) {
                (true, false) => {
                    added.insert(triple);
                }
                (false, true) => {
                    removed.insert(triple);
                }
                _ => no_ops += 1,
            }
        }
        (LowLevelDelta { added, removed }, no_ops)
    }

    /// Commit the pending overlay as the next version, record its
    /// provenance, and clear the overlay. Returns `None` — committing
    /// nothing — when the overlay is empty or nets to a no-op against
    /// the head (the overlay is still cleared and counted).
    pub fn commit_epoch(&mut self) -> Option<EpochCommit> {
        if self.pending.is_empty() {
            return None;
        }
        let (delta, no_ops) = self.normalised_pending();
        self.stats.no_ops += no_ops;
        let events = self.pending_events;
        let actors = std::mem::take(&mut self.pending_actors);
        self.pending_actor_set.clear();
        self.pending.clear();
        self.pending_events = 0;
        if delta.is_empty() {
            return None;
        }
        let previous = self.store.head();
        let label = format!("{}-{}", self.config.label_prefix, self.stats.epochs);
        let delta = Arc::new(delta);
        let version = self.store.commit_delta(label, &delta);
        let actor = match actors.len() {
            0 => "unknown".to_string(),
            1 => actors[0].to_string(),
            n => format!("{} (+{} more)", actors[0], n - 1),
        };
        let record = self.ledger.record_commit(
            actor,
            "stream-epoch",
            previous,
            version,
            &delta,
            self.config.justification,
            format!("micro-batch of {events} events"),
        );
        self.stats.epochs += 1;
        Some(EpochCommit {
            version,
            delta,
            events,
            record,
        })
    }

    /// The versioned store the epochs commit into.
    pub fn store(&self) -> &VersionedStore {
        &self.store
    }

    /// Advance the store's logical commit clock without committing —
    /// a quiet stream ageing its history (see
    /// [`VersionedStore::advance_clock`]). Time-anchored serving
    /// windows narrow over the gap; epoch-counted ones are unaffected.
    pub fn advance_clock(&mut self, ticks: u64) {
        self.store.advance_clock(ticks);
    }

    /// The provenance ledger documenting every epoch.
    pub fn ledger(&self) -> &ProvenanceLedger {
        &self.ledger
    }

    /// The most recently committed version.
    pub fn head(&self) -> Option<VersionId> {
        self.store.head()
    }

    /// The active configuration.
    pub fn config(&self) -> &IngestorConfig {
        &self.config
    }

    /// Cumulative counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Tear down into the history and ledger.
    pub fn into_parts(self) -> (VersionedStore, ProvenanceLedger) {
        (self.store, self.ledger)
    }
}

impl std::fmt::Debug for Ingestor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ingestor")
            .field("head", &self.store.head())
            .field("pending_events", &self.pending_events)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evorec_kb::TermId;

    fn tr(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(
            TermId::from_u32(s),
            TermId::from_u32(p),
            TermId::from_u32(o),
        )
    }

    #[test]
    fn first_epoch_creates_v0() {
        let mut ing = Ingestor::new(IngestorConfig::default());
        ing.ingest(ChangeEvent::assert(tr(1, 2, 3), "a"));
        ing.ingest(ChangeEvent::assert(tr(4, 5, 6), "a"));
        let commit = ing.commit_epoch().expect("non-empty epoch");
        assert_eq!(commit.version.index(), 0);
        assert_eq!(commit.events, 2);
        assert_eq!(ing.store().snapshot(commit.version).len(), 2);
        assert_eq!(ing.stats().epochs, 1);
    }

    #[test]
    fn last_event_wins_per_triple() {
        let mut ing = Ingestor::new(IngestorConfig::default());
        // assert → retract nets to absent…
        ing.ingest(ChangeEvent::assert(tr(1, 2, 3), "a"));
        ing.ingest(ChangeEvent::retract(tr(1, 2, 3), "a"));
        // …retract → assert nets to present.
        ing.ingest(ChangeEvent::retract(tr(4, 5, 6), "a"));
        ing.ingest(ChangeEvent::assert(tr(4, 5, 6), "a"));
        assert_eq!(ing.stats().coalesced, 2);
        let commit = ing.commit_epoch().expect("one real addition");
        let snap = ing.store().snapshot(commit.version);
        assert!(!snap.contains(&tr(1, 2, 3)));
        assert!(snap.contains(&tr(4, 5, 6)));
    }

    #[test]
    fn retract_after_redundant_assert_removes() {
        // Sequential semantics that naïve set-coalescing gets wrong:
        // head contains t, events are assert(t) (redundant) then
        // retract(t) — the final state must NOT contain t.
        let mut ing = Ingestor::new(IngestorConfig::default());
        ing.ingest(ChangeEvent::assert(tr(1, 2, 3), "a"));
        ing.commit_epoch().unwrap();
        ing.ingest(ChangeEvent::assert(tr(1, 2, 3), "a"));
        ing.ingest(ChangeEvent::retract(tr(1, 2, 3), "a"));
        let commit = ing.commit_epoch().expect("net removal");
        assert!(!ing.store().snapshot(commit.version).contains(&tr(1, 2, 3)));
        assert_eq!(commit.delta.removed_count(), 1);
        assert_eq!(commit.delta.added_count(), 0);
    }

    #[test]
    fn committed_delta_is_normalised_against_head() {
        let mut ing = Ingestor::new(IngestorConfig::default());
        ing.ingest(ChangeEvent::assert(tr(1, 2, 3), "a"));
        ing.commit_epoch().unwrap();
        // Redundant assert + real addition + phantom retraction.
        ing.ingest(ChangeEvent::assert(tr(1, 2, 3), "a"));
        ing.ingest(ChangeEvent::assert(tr(4, 5, 6), "a"));
        ing.ingest(ChangeEvent::retract(tr(7, 8, 9), "a"));
        let commit = ing.commit_epoch().expect("one real change");
        assert_eq!(commit.delta.added_count(), 1);
        assert_eq!(commit.delta.removed_count(), 0);
        assert_eq!(ing.stats().no_ops, 2);
        // The seeded delta cache agrees with a fresh recomputation.
        let v0 = VersionId::from_u32(0);
        let recomputed = LowLevelDelta::compute(
            ing.store().snapshot(v0),
            ing.store().snapshot(commit.version),
        );
        assert_eq!(commit.delta.as_ref(), &recomputed);
    }

    #[test]
    fn all_no_op_epoch_commits_nothing() {
        let mut ing = Ingestor::new(IngestorConfig::default());
        ing.ingest(ChangeEvent::assert(tr(1, 2, 3), "a"));
        ing.commit_epoch().unwrap();
        ing.ingest(ChangeEvent::assert(tr(1, 2, 3), "a"));
        ing.ingest(ChangeEvent::retract(tr(9, 9, 9), "a"));
        assert!(ing.commit_epoch().is_none());
        assert_eq!(ing.store().version_count(), 1);
        assert_eq!(ing.pending_events(), 0, "overlay cleared regardless");
        // Empty overlay: also None, and nothing counted.
        assert!(ing.commit_epoch().is_none());
    }

    #[test]
    fn seeded_ingestor_starts_from_base() {
        let base = TripleStore::from_triples([tr(1, 2, 3), tr(4, 5, 6)]);
        let mut ing = Ingestor::seeded(base, "loader", IngestorConfig::default());
        assert_eq!(ing.store().version_count(), 1);
        assert_eq!(ing.store().snapshot(VersionId::from_u32(0)).len(), 2);
        assert_eq!(ing.ledger().records().len(), 1);
        ing.ingest(ChangeEvent::retract(tr(1, 2, 3), "curator"));
        let commit = ing.commit_epoch().unwrap();
        assert_eq!(ing.store().snapshot(commit.version).len(), 1);
    }

    #[test]
    fn provenance_names_actors_and_counts() {
        let mut ing = Ingestor::new(IngestorConfig::default());
        ing.ingest(ChangeEvent::assert(tr(1, 2, 3), "alice"));
        ing.ingest(ChangeEvent::assert(tr(4, 5, 6), "bob"));
        ing.ingest(ChangeEvent::assert(tr(7, 8, 9), "alice"));
        let commit = ing.commit_epoch().unwrap();
        let records = ing.ledger().history_of_version(commit.version);
        assert_eq!(records.len(), 1);
        let record = records[0];
        assert_eq!(record.actor, "alice (+1 more)");
        assert_eq!(record.added_count, 3);
        assert_eq!(record.activity, "stream-epoch");
        assert!(record.note.contains("3 events"));
    }

    #[test]
    fn pending_delta_previews_without_committing() {
        let mut ing = Ingestor::new(IngestorConfig::default());
        ing.ingest(ChangeEvent::assert(tr(1, 2, 3), "a"));
        let preview = ing.pending_delta();
        assert_eq!(preview.added_count(), 1);
        assert_eq!(ing.store().version_count(), 0, "nothing committed");
        assert_eq!(ing.pending_events(), 1);
    }
}
