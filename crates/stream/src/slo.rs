//! Default service-level objectives for the streaming subsystem.
//!
//! The load-bearing failure mode here is *backpressure saturation*: a
//! [`BoundedLog`](crate::BoundedLog) holding near its capacity means
//! producers are about to block (by design — boundedness is the
//! invariant), so sustained high occupancy is the operator's earliest
//! signal that the consumer side is underprovisioned. The constants
//! below name the exported series and the occupancy fractions the
//! telemetry health engine alarms on; `evorec-telemetry` turns them
//! into its standard rule set.

/// Series key of the queue-depth gauge exported by
/// [`BoundedLog`](crate::BoundedLog)'s `MetricsSource` impl.
pub const QUEUE_DEPTH_SERIES: &str = "evorec_stream_log_depth";

/// Series key of the matching capacity gauge.
pub const QUEUE_CAPACITY_SERIES: &str = "evorec_stream_log_capacity";

/// Series key of the pipeline's committed-epoch counter (the
/// upstream side of the epoch-lag staleness objective).
pub const EPOCHS_SERIES: &str = "evorec_stream_epochs_total";

/// depth/capacity occupancy above which the stream is **degraded**:
/// producers are not blocking yet, but one burst away from it.
pub const SATURATION_DEGRADED: f64 = 0.75;

/// depth/capacity occupancy above which the stream is **critical**:
/// effectively full, producers are blocking or about to.
pub const SATURATION_CRITICAL: f64 = 0.95;
